"""repro.analysis — program analyses over the repro IR.

- :class:`CFG` — control-flow-graph snapshot with traversal orders
- :class:`DominatorTree` / :func:`compute_dominance_frontiers`
- :class:`Liveness` — per-block live value sets
- :class:`LoopInfo` — natural loops and nesting depth
- :class:`AliasAnalysis` — points-to, may/must alias, storage classes
- :class:`AntiDepAnalysis` — memory antidependences with the paper's
  semantic/artificial and clobber/non-clobber classification, plus the
  hitting-set candidate cut sets of §4.2.1
- :class:`AnalysisManager` — invalidation-aware per-function cache of the
  above; :class:`NullAnalysisManager` disables caching for bit-identity
  comparisons (see ``docs/performance.md``)
"""

from repro.analysis.alias import (
    AliasAnalysis,
    MAY_ALIAS,
    MemoryObject,
    MUST_ALIAS,
    NO_ALIAS,
    STORAGE_LOCAL_STACK,
    STORAGE_MEMORY,
)
from repro.analysis.antideps import (
    AntiDep,
    AntiDepAnalysis,
    BlockReachability,
    DominanceOracle,
    InstructionIndex,
    Point,
    path_exists,
    summarize_antideps,
)
from repro.analysis.cfg import CFG, remove_unreachable_blocks
from repro.analysis.dominators import DominatorTree, compute_dominance_frontiers
from repro.analysis.liveness import Liveness
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.manager import (
    ALL_ANALYSES,
    AnalysisManager,
    CFG_ANALYSES,
    NullAnalysisManager,
    StaleAnalysisError,
)

__all__ = [
    "ALL_ANALYSES",
    "AliasAnalysis",
    "AnalysisManager",
    "AntiDep",
    "AntiDepAnalysis",
    "BlockReachability",
    "CFG",
    "CFG_ANALYSES",
    "DominanceOracle",
    "DominatorTree",
    "InstructionIndex",
    "Liveness",
    "Loop",
    "LoopInfo",
    "MAY_ALIAS",
    "MUST_ALIAS",
    "MemoryObject",
    "NO_ALIAS",
    "NullAnalysisManager",
    "Point",
    "StaleAnalysisError",
    "STORAGE_LOCAL_STACK",
    "STORAGE_MEMORY",
    "compute_dominance_frontiers",
    "path_exists",
    "remove_unreachable_blocks",
    "summarize_antideps",
]
