"""repro.analysis — program analyses over the repro IR.

- :class:`CFG` — control-flow-graph snapshot with traversal orders
- :class:`BitCFG` / :mod:`repro.analysis.bitset` — packed big-int bitset
  kernels shared by the dataflow analyses (see ``docs/kernels.md``)
- :class:`DominatorTree` / :func:`compute_dominance_frontiers`
- :class:`Liveness` — per-block live value sets
- :class:`LoopInfo` — natural loops and nesting depth
- :class:`AliasAnalysis` — points-to, may/must alias, storage classes
- :class:`AntiDepAnalysis` — memory antidependences with the paper's
  semantic/artificial and clobber/non-clobber classification, plus the
  hitting-set candidate cut sets of §4.2.1
- :class:`AnalysisManager` — invalidation-aware per-function cache of the
  above; :class:`NullAnalysisManager` disables caching for bit-identity
  comparisons (see ``docs/performance.md``)
- :mod:`repro.analysis.reference` — the pre-bitset implementations, kept
  as oracles for the kernel equivalence suite (never imported by the
  compiler)

**Tier summary** (AnalysisManager invalidation contract): ``cfg``,
``domtree``, ``frontiers``, ``loops``, ``reachability``, ``bitcfg`` are
pure functions of the block graph (CFG tier); ``liveness`` also reads
instructions (instruction tier).  Alias and antidependence analyses are
uncached and rebuilt per construction run.
"""

from repro.analysis.alias import (
    AliasAnalysis,
    MAY_ALIAS,
    MemoryObject,
    MUST_ALIAS,
    NO_ALIAS,
    STORAGE_LOCAL_STACK,
    STORAGE_MEMORY,
)
from repro.analysis.antideps import (
    AntiDep,
    AntiDepAnalysis,
    BlockReachability,
    DominanceOracle,
    InstructionIndex,
    Point,
    path_exists,
    summarize_antideps,
)
from repro.analysis.bitset import (
    BitCFG,
    closure_rows,
    dominance_frontier_masks,
    iter_bits,
    pack_bits,
)
from repro.analysis.cfg import CFG, remove_unreachable_blocks
from repro.analysis.dominators import DominatorTree, compute_dominance_frontiers
from repro.analysis.liveness import Liveness
from repro.analysis.loops import Loop, LoopInfo
from repro.analysis.manager import (
    ALL_ANALYSES,
    AnalysisManager,
    CFG_ANALYSES,
    NullAnalysisManager,
    StaleAnalysisError,
)

__all__ = [
    "ALL_ANALYSES",
    "AliasAnalysis",
    "AnalysisManager",
    "AntiDep",
    "AntiDepAnalysis",
    "BitCFG",
    "BlockReachability",
    "CFG",
    "CFG_ANALYSES",
    "DominanceOracle",
    "DominatorTree",
    "InstructionIndex",
    "Liveness",
    "Loop",
    "LoopInfo",
    "MAY_ALIAS",
    "MUST_ALIAS",
    "MemoryObject",
    "NO_ALIAS",
    "NullAnalysisManager",
    "Point",
    "StaleAnalysisError",
    "STORAGE_LOCAL_STACK",
    "STORAGE_MEMORY",
    "closure_rows",
    "compute_dominance_frontiers",
    "dominance_frontier_masks",
    "iter_bits",
    "pack_bits",
    "path_exists",
    "remove_unreachable_blocks",
    "summarize_antideps",
]
