"""Pre-rewrite reference implementations of the dataflow analyses.

**Inputs/outputs:** identical to their production counterparts;
**tier:** never cached — these exist only as oracles.

When the per-block Python analyses were moved onto the packed-bitset
kernels (:mod:`repro.analysis.bitset`), the original implementations
were preserved here verbatim so the equivalence contract stays
executable: ``tests/test_bitset_kernels.py`` runs both sides over the
fuzz-generator corpus plus hand-built edge-case CFGs (single block,
unreachable blocks, irreducible loops) and asserts the results match
bit for bit.  Nothing in the compiler imports this module; if a kernel
and its reference ever disagree, the kernel is wrong.

Doctest — the reference liveness solver on a straight line:

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @f(%a: int) -> int {
... entry:
...   %x = add %a, 1
...   ret %x
... }
... ''')
>>> func = mod.function_by_name("f")
>>> live_in, live_out = reference_liveness(func)
>>> sorted(v.name for v in live_in[func.entry])
['a']
>>> live_out[func.entry]
set()
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Argument, Value


def _is_tracked(value: Value) -> bool:
    return isinstance(value, (Instruction, Argument))


def reference_liveness(
    func: Function,
) -> Tuple[Dict[BasicBlock, Set[Value]], Dict[BasicBlock, Set[Value]]]:
    """The original per-block set-based liveness solver.

    Returns ``(live_in, live_out)`` dicts over reachable blocks.
    """
    cfg = CFG(func)
    blocks = cfg.reachable_blocks
    use_sets: Dict[BasicBlock, Set[Value]] = {}
    def_sets: Dict[BasicBlock, Set[Value]] = {}
    live_in: Dict[BasicBlock, Set[Value]] = {}
    live_out: Dict[BasicBlock, Set[Value]] = {}

    def phi_uses_on_edge(pred: BasicBlock, succ: BasicBlock) -> Set[Value]:
        uses: Set[Value] = set()
        for phi in succ.phis():
            value = phi.incoming_for(pred)
            if _is_tracked(value):
                uses.add(value)
        return uses

    for block in blocks:
        uses: Set[Value] = set()
        defs: Set[Value] = set()
        for inst in block.instructions:
            if isinstance(inst, Phi):
                defs.add(inst)
                continue
            for op in inst.operands:
                if _is_tracked(op) and op not in defs:
                    uses.add(op)
            if inst.type.is_value_type:
                defs.add(inst)
        use_sets[block] = uses
        def_sets[block] = defs
        live_in[block] = set()
        live_out[block] = set()

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out: Set[Value] = set()
            for succ in cfg.succs(block):
                if succ not in live_in:
                    continue
                out |= live_in[succ]
                out |= phi_uses_on_edge(block, succ)
            new_in = use_sets[block] | (out - def_sets[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block] = out
                live_in[block] = new_in
                changed = True
    return live_in, live_out


def reference_frontiers(domtree) -> Dict[BasicBlock, set]:
    """The original Cooper et al. two-finger dominance-frontier walk."""
    cfg = domtree.cfg
    frontiers: Dict[BasicBlock, set] = {
        block: set() for block in cfg.reachable_blocks
    }
    for block in cfg.reachable_blocks:
        preds = [p for p in cfg.preds(block) if domtree.is_reachable(p)]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner is not domtree.idom.get(block) and runner is not None:
                frontiers[runner].add(block)
                runner = domtree.idom.get(runner)
    return frontiers


def reference_reaches(cfg: CFG, a: BasicBlock, b: BasicBlock) -> bool:
    """The original one-DFS-per-source block reachability (≥1 edge)."""
    seen: Set[BasicBlock] = set()
    stack = list(cfg.succs(a))
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(cfg.succs(node))
    return b in seen


def reference_dominates(domtree, a: BasicBlock, b: BasicBlock) -> bool:
    """The original idom-chain walking dominance query."""
    if a is b:
        return True
    if a not in domtree.depth or b not in domtree.depth:
        return False
    node: Optional[BasicBlock] = b
    while node is not None and domtree.depth.get(node, 0) > domtree.depth[a]:
        node = domtree.idom.get(node)
    return node is a
