"""Natural loop detection and loop-nesting depth.

The region-construction heuristic (paper §4.3) prefers cuts at the
*outermost* loop-nesting depth, and the self-dependent-φ rules (§4.2.2)
need per-loop membership and "paths through the body" queries; both are
served by this module.

Loops are discovered from back edges ``(tail → header)`` where the header
dominates the tail; the loop body is collected by the usual backward walk
from the tail. Loops sharing a header are merged (one natural loop per
header), and nesting is reconstructed by body inclusion.  Back-edge
detection uses the dominator-mask bit test of
:meth:`~repro.analysis.dominators.DominatorTree.dominates`, so discovery
is one mask probe per CFG edge.

**Inputs:** a :class:`~repro.ir.function.Function` plus (optionally) a
cached :class:`~repro.analysis.dominators.DominatorTree`.  **Outputs:**
the loop forest with per-block membership and nesting depth.  **Tier:**
``loops`` is in the CFG tier of the
:class:`~repro.analysis.manager.AnalysisManager` — a pure function of
the block graph.

Doctest — one self-loop:

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @l(%n: int) -> int {
... entry:
...   jmp loop
... loop:
...   %i = phi int [0, entry], [%i2, loop]
...   %i2 = add %i, 1
...   %done = icmp ge %i2, %n
...   br %done, out, loop
... out:
...   ret %i2
... }
... ''')
>>> func = mod.function_by_name("l")
>>> li = LoopInfo(func)
>>> [(loop.header.name, loop.depth) for loop in li.loops]
[('loop', 1)]
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.ir.block import BasicBlock
from repro.ir.function import Function


class Loop:
    """A natural loop: header block plus body set (header included)."""

    def __init__(self, header: BasicBlock) -> None:
        self.header = header
        self.blocks: Set[BasicBlock] = {header}
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        #: tails of the back edges that define this loop
        self.latches: List[BasicBlock] = []

    @property
    def depth(self) -> int:
        """Nesting depth; outermost loops have depth 1."""
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exits(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges leaving the loop as (inside_block, outside_block) pairs."""
        edges = []
        for block in self.blocks:
            for succ in block.successors:
                if succ not in self.blocks:
                    edges.append((block, succ))
        return edges

    def __repr__(self) -> str:
        return f"<Loop header={self.header.name} blocks={len(self.blocks)} depth={self.depth}>"


class LoopInfo:
    """All natural loops of a function plus per-block depth queries."""

    def __init__(self, func: Function, domtree: Optional[DominatorTree] = None) -> None:
        self.func = func
        self.domtree = domtree or DominatorTree.compute(func)
        self.cfg = self.domtree.cfg
        self.loops: List[Loop] = []
        self._loop_of_header: Dict[BasicBlock, Loop] = {}
        self._discover()
        self._nest()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _discover(self) -> None:
        # dominates(succ, block) inlined to one bit probe: every block on
        # this walk is reachable, so the guard checks in the method are
        # dead weight here.
        masks = self.domtree.dominator_masks()
        index = self.cfg.rpo_index
        successors = self.cfg.successors
        for block in self.cfg.reachable_blocks:
            mask = masks[block]
            for succ in successors[block]:
                if (mask >> index(succ)) & 1:
                    # back edge block -> succ; succ is a loop header
                    loop = self._loop_of_header.get(succ)
                    if loop is None:
                        loop = Loop(succ)
                        self._loop_of_header[succ] = loop
                        self.loops.append(loop)
                    loop.latches.append(block)
                    self._collect_body(loop, block)

    def _collect_body(self, loop: Loop, tail: BasicBlock) -> None:
        predecessors = self.cfg.predecessors
        is_reachable = self.cfg.is_reachable
        blocks = loop.blocks
        stack = [tail]
        while stack:
            node = stack.pop()
            if node in blocks:
                continue
            blocks.add(node)
            for pred in predecessors[node]:
                if is_reachable(pred):
                    stack.append(pred)

    def _nest(self) -> None:
        # Sort by body size ascending; a loop's parent is the smallest loop
        # strictly containing its header that isn't itself.
        by_size = sorted(self.loops, key=lambda lp: len(lp.blocks))
        for i, loop in enumerate(by_size):
            for bigger in by_size[i + 1:]:
                if loop.header in bigger.blocks and bigger is not loop:
                    loop.parent = bigger
                    bigger.children.append(loop)
                    break

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def innermost_loop_of(self, block: BasicBlock) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.loops:
            if block in loop.blocks:
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def loop_with_header(self, header: BasicBlock) -> Optional[Loop]:
        return self._loop_of_header.get(header)

    def depth_of(self, block: BasicBlock) -> int:
        """Loop-nesting depth of ``block``; 0 outside all loops."""
        loop = self.innermost_loop_of(block)
        return loop.depth if loop is not None else 0

    @property
    def top_level_loops(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.parent is None]
