"""Basic alias analysis over the repro IR.

Mirrors the role of LLVM's ``basicaa`` in the paper (§5: "We gather memory
antidependence information using LLVM's basic alias analysis
infrastructure"). The analysis is flow-insensitive and intraprocedural:

- every ``alloca`` is a distinct *stack object*;
- every global variable is a distinct *global object*;
- every ``malloc`` call site is a distinct *heap object*;
- pointer arguments and pointers loaded from memory are *unknown objects*.

Pointers are resolved to ``(object, offset)`` by walking ``gep`` chains;
offsets become unknown when an index is not a compile-time constant.

Storage classification (paper Table 2): non-escaping stack objects are
*pseudoregister-like* local stack memory (artificial clobber territory);
everything else is "memory" — heap, globals, and non-local stack — the
domain of semantic clobber antidependences.

**Inputs:** a :class:`~repro.ir.function.Function`.  **Outputs:**
``alias(p1, p2)`` / ``storage_class(ptr)`` / ``resolve(ptr)`` queries.
**Tier:** not cached by the
:class:`~repro.analysis.manager.AnalysisManager` — the antidependence
pass constructs one per run; escape analysis is a single sweep over the
instruction stream and ``resolve`` memoizes per pointer identity.

Doctest — two fields of one alloca:

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @f() -> int {
... entry:
...   %buf = alloca 4
...   %p0 = gep %buf, 0
...   %p1 = gep %buf, 1
...   %v = load int, %p0
...   ret %v
... }
... ''')
>>> aa = AliasAnalysis(mod.function_by_name("f"))
>>> blocks = mod.function_by_name("f").entry.instructions
>>> p0, p1 = blocks[1], blocks[2]
>>> aa.alias(p0, p1)
'no'
>>> aa.alias(p0, p0)
'must'
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Alloca, Call, Gep, Instruction, Load, Phi, Select, Store
from repro.ir.values import Argument, Constant, GlobalVariable, Undef, Value

# Alias query results.
NO_ALIAS = "no"
MAY_ALIAS = "may"
MUST_ALIAS = "must"

# Escape-sweep dispatch: exact instruction class → role in the escape
# analysis (the IR has no instruction subclasses, so one dict probe
# replaces an isinstance chain on the all-instructions hot sweep).
_K_ALLOCA, _K_GEP, _K_CALL, _K_STORE, _K_MERGE = 0, 1, 2, 3, 4
_ESCAPE_KIND = {
    Alloca: _K_ALLOCA,
    Gep: _K_GEP,
    Call: _K_CALL,
    Store: _K_STORE,
    Phi: _K_MERGE,
    Select: _K_MERGE,
}

# Storage classes (paper Table 2).
STORAGE_LOCAL_STACK = "local-stack"  # compiler-controlled (artificial clobbers)
STORAGE_MEMORY = "memory"            # heap/global/non-local stack (semantic)


class MemoryObject:
    """An abstract memory object the analysis can name."""

    KIND_STACK = "stack"
    KIND_GLOBAL = "global"
    KIND_HEAP = "heap"
    KIND_UNKNOWN = "unknown"

    def __init__(self, kind: str, origin: Value, label: str) -> None:
        self.kind = kind
        self.origin = origin
        self.label = label

    def __repr__(self) -> str:
        return f"<MemoryObject {self.kind}:{self.label}>"


class AliasAnalysis:
    """Flow-insensitive points-to + alias + storage-class queries.

    ``trust_argument_noalias`` applies a restrict-style promise: distinct
    pointer *arguments* never alias each other (paper §8: "better
    programmer aliasing information ... may allow the construction of much
    larger idempotent regions"; its Fig. 1 footnote assumes exactly this
    for ``list`` / ``other_list``).
    """

    def __init__(self, func: Function, trust_argument_noalias: bool = False) -> None:
        self.func = func
        self.trust_argument_noalias = trust_argument_noalias
        self._objects: Dict[int, MemoryObject] = {}
        self._resolved: Dict[int, Tuple[MemoryObject, Optional[int]]] = {}
        self._escaped_allocas = self._compute_escapes()

    # ------------------------------------------------------------------
    # Escape analysis for allocas
    # ------------------------------------------------------------------
    def _compute_escapes(self) -> set:
        """Allocas whose address may leave the function (or be stored)."""
        escaped = set()
        # Transitively: a pointer derived from an alloca escapes if passed to
        # a call, stored as a *value*, or merged through a φ/select (we keep
        # it simple and treat φ/select merging as escaping too).  One sweep
        # over the instruction stream partitions it; the fixpoint then only
        # revisits the (few) geps, not every instruction.
        derived: Dict[Value, Alloca] = {}
        geps: list = []
        sinks: list = []
        kind_of = _ESCAPE_KIND.get
        for block in self.func.blocks:
            for inst in block.instructions:
                kind = kind_of(inst.__class__)
                if kind is None:
                    continue
                if kind == _K_ALLOCA:
                    derived[inst] = inst
                elif kind == _K_GEP:
                    geps.append(inst)
                else:
                    sinks.append((kind, inst))
        if not derived:
            return escaped  # nothing can escape a function with no allocas
        changed = True
        while changed:
            changed = False
            for gep in geps:
                if gep not in derived and gep.base in derived:
                    derived[gep] = derived[gep.base]
                    changed = True
        for kind, inst in sinks:
            if kind == _K_CALL:
                for arg in inst.args:
                    if arg in derived:
                        escaped.add(derived[arg])
            elif kind == _K_STORE:
                if inst.value in derived:  # address stored into memory
                    escaped.add(derived[inst.value])
            else:  # Phi / Select
                for op in inst.operands:
                    if op in derived:
                        escaped.add(derived[op])
        return escaped

    def alloca_escapes(self, alloca: Alloca) -> bool:
        return alloca in self._escaped_allocas

    # ------------------------------------------------------------------
    # Points-to resolution
    # ------------------------------------------------------------------
    def _object_for(self, base: Value) -> MemoryObject:
        key = id(base)
        obj = self._objects.get(key)
        if obj is not None:
            return obj
        if isinstance(base, Alloca):
            obj = MemoryObject(MemoryObject.KIND_STACK, base, base.name)
        elif isinstance(base, GlobalVariable):
            obj = MemoryObject(MemoryObject.KIND_GLOBAL, base, base.name)
        elif isinstance(base, Call) and base.callee == "malloc":
            obj = MemoryObject(MemoryObject.KIND_HEAP, base, base.name or "heap")
        else:
            label = getattr(base, "name", "") or type(base).__name__
            obj = MemoryObject(MemoryObject.KIND_UNKNOWN, base, label)
        self._objects[key] = obj
        return obj

    def resolve(self, ptr: Value) -> Tuple[MemoryObject, Optional[int]]:
        """Resolve ``ptr`` to (object, word offset); offset None if unknown.

        Memoized per pointer identity — antidependence analysis queries
        each load/store pointer O(reads · writes) times.
        """
        cached = self._resolved.get(id(ptr))
        if cached is not None:
            return cached
        offset = 0
        known = True
        node = ptr
        while isinstance(node, Gep):
            index = node.index
            if isinstance(index, Constant):
                offset += int(index.value)
            else:
                known = False
            node = node.base
        obj = self._object_for(node)
        result = (obj, offset if known else None)
        self._resolved[id(ptr)] = result
        return result

    # ------------------------------------------------------------------
    # Alias queries
    # ------------------------------------------------------------------
    def alias(self, p1: Value, p2: Value) -> str:
        """May/must/no-alias classification of two pointer values."""
        if p1 is p2:
            return MUST_ALIAS
        obj1, off1 = self.resolve(p1)
        obj2, off2 = self.resolve(p2)

        if obj1 is obj2:
            if off1 is not None and off2 is not None:
                return MUST_ALIAS if off1 == off2 else NO_ALIAS
            return MAY_ALIAS

        concrete = (MemoryObject.KIND_STACK, MemoryObject.KIND_GLOBAL, MemoryObject.KIND_HEAP)
        if obj1.kind in concrete and obj2.kind in concrete:
            return NO_ALIAS  # distinct named objects never overlap

        # Unknown pointers cannot reach a non-escaping alloca.
        for known, unknown in ((obj1, obj2), (obj2, obj1)):
            if known.kind == MemoryObject.KIND_STACK and unknown.kind == MemoryObject.KIND_UNKNOWN:
                if not self.alloca_escapes(known.origin):
                    return NO_ALIAS

        # Restrict-style promise: two different pointer arguments are
        # assumed to address disjoint objects.
        if (
            self.trust_argument_noalias
            and isinstance(obj1.origin, Argument)
            and isinstance(obj2.origin, Argument)
            and obj1.origin is not obj2.origin
        ):
            return NO_ALIAS
        return MAY_ALIAS

    # ------------------------------------------------------------------
    # Storage classification (paper Table 2)
    # ------------------------------------------------------------------
    def storage_class(self, ptr: Value) -> str:
        """Classify the storage a pointer addresses.

        ``STORAGE_LOCAL_STACK`` — provably a non-escaping local alloca:
        compiler-controlled, so WARs on it are *artificial* clobber
        antidependences. Anything else is ``STORAGE_MEMORY`` and WARs on it
        are *semantic* clobber antidependences.
        """
        obj, _ = self.resolve(ptr)
        if obj.kind == MemoryObject.KIND_STACK and not self.alloca_escapes(obj.origin):
            return STORAGE_LOCAL_STACK
        return STORAGE_MEMORY
