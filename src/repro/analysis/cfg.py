"""Control-flow-graph snapshot and traversal utilities.

:class:`BasicBlock.predecessors` is O(blocks) per query; analyses take a
:class:`CFG` snapshot once and then enjoy O(1) edge queries and cached
traversal orders. A snapshot is invalidated by CFG surgery — recompute it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.ir.block import BasicBlock
from repro.ir.function import Function


class CFG:
    """Immutable snapshot of a function's control flow graph."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.blocks: List[BasicBlock] = list(func.blocks)
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in self.blocks
        }
        for block in self.blocks:
            succs = block.successors
            self.successors[block] = succs
            for succ in succs:
                self.predecessors[succ].append(block)
        self._rpo: List[BasicBlock] = self._compute_rpo()
        self._rpo_index: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self._rpo)
        }

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------
    def _compute_rpo(self) -> List[BasicBlock]:
        if not self.blocks:
            return []
        order: List[BasicBlock] = []
        visited: Set[BasicBlock] = set()

        # Iterative post-order DFS; recursion would overflow on long chains.
        stack = [(self.func.entry, iter(self.successors[self.func.entry]))]
        visited.add(self.func.entry)
        while stack:
            block, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in visited:
                    visited.add(succ)
                    stack.append((succ, iter(self.successors[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()
        order.reverse()
        return order

    @property
    def reverse_post_order(self) -> List[BasicBlock]:
        """Blocks in reverse post-order (entry first, unreachable excluded)."""
        return list(self._rpo)

    @property
    def post_order(self) -> List[BasicBlock]:
        return list(reversed(self._rpo))

    def rpo_index(self, block: BasicBlock) -> int:
        return self._rpo_index[block]

    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self._rpo_index

    @property
    def reachable_blocks(self) -> List[BasicBlock]:
        return list(self._rpo)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def preds(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self.predecessors[block])

    def succs(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self.successors[block])

    def edges(self) -> Iterable:
        for block in self.blocks:
            for succ in self.successors[block]:
                yield (block, succ)


def remove_unreachable_blocks(func: Function, am=None) -> int:
    """Delete blocks not reachable from the entry; returns how many died.

    ``am`` (an :class:`repro.analysis.manager.AnalysisManager`) supplies a
    cached CFG snapshot when available.  Preserves the CFG tier iff the
    return value is 0; the caller owns the invalidation call.
    """
    cfg = am.cfg(func) if am is not None else CFG(func)
    dead = [block for block in func.blocks if not cfg.is_reachable(block)]
    if not dead:
        return 0
    dead_set = set(dead)
    # Patch φ-nodes in surviving blocks that mention dead predecessors.
    for block in func.blocks:
        if block in dead_set:
            continue
        for phi in list(block.phis()):
            for pred in [p for p in phi.incoming_blocks if p in dead_set]:
                phi.remove_incoming(pred)
    from repro.ir.values import Undef

    for block in dead:
        for inst in list(block.instructions):
            # Any remaining uses live in reachable code only via φ edges we
            # already removed; replace defensively with undef.
            if inst.is_used and inst.type.is_value_type:
                inst.replace_all_uses_with(Undef(inst.type))
            inst.drop_operands()
        func.remove_block(block)
    return len(dead)
