"""Control-flow-graph snapshot and traversal utilities.

:class:`BasicBlock.predecessors` is O(blocks) per query; analyses take a
:class:`CFG` snapshot once and then enjoy O(1) edge queries and cached
traversal orders. A snapshot is invalidated by CFG surgery — recompute it.

**Inputs:** a :class:`~repro.ir.function.Function`.  **Outputs:**
successor/predecessor edge maps, reverse post-order, reachability.
**Tier:** ``cfg`` is the base of the CFG tier in the
:class:`~repro.analysis.manager.AnalysisManager` — every other CFG-tier
analysis (domtree, frontiers, loops, reachability, bitcfg) is derived
from this snapshot, and preserving any of them requires preserving
``cfg`` itself.

Doctest — RPO of a diamond starts at entry and ends at the join:

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @d(%c: int) -> int {
... entry:
...   %t = icmp gt %c, 0
...   br %t, l, r
... l:
...   jmp j
... r:
...   jmp j
... j:
...   ret %c
... }
... ''')
>>> cfg = CFG(mod.function_by_name("d"))
>>> [b.name for b in cfg.reverse_post_order][0]
'entry'
>>> [b.name for b in cfg.reverse_post_order][-1]
'j'
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.ir.block import BasicBlock
from repro.ir.function import Function


class CFG:
    """Immutable snapshot of a function's control flow graph."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.blocks: List[BasicBlock] = list(func.blocks)
        self.successors: Dict[BasicBlock, List[BasicBlock]] = {}
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in self.blocks
        }
        for block in self.blocks:
            succs = block.successors
            self.successors[block] = succs
            for succ in succs:
                self.predecessors[succ].append(block)
        self._rpo: List[BasicBlock] = self._compute_rpo()
        self._rpo_index: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self._rpo)
        }

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------
    def _compute_rpo(self) -> List[BasicBlock]:
        if not self.blocks:
            return []
        order: List[BasicBlock] = []
        successors = self.successors

        # Iterative post-order DFS; recursion would overflow on long
        # chains.  Each frame is [block, next-successor-index] — the same
        # first-unvisited-successor traversal as the iterator-based
        # formulation (so the order is identical), without allocating an
        # iterator per block.
        entry = self.func.entry
        visited: Set[BasicBlock] = {entry}
        stack: List[list] = [[entry, 0]]
        while stack:
            top = stack[-1]
            succs = successors[top[0]]
            i = top[1]
            n = len(succs)
            while i < n and succs[i] in visited:
                i += 1
            if i < n:
                child = succs[i]
                top[1] = i + 1
                visited.add(child)
                stack.append([child, 0])
            else:
                order.append(top[0])
                stack.pop()
        order.reverse()
        return order

    @property
    def reverse_post_order(self) -> List[BasicBlock]:
        """Blocks in reverse post-order (entry first, unreachable excluded)."""
        return list(self._rpo)

    @property
    def post_order(self) -> List[BasicBlock]:
        return list(reversed(self._rpo))

    def rpo_index(self, block: BasicBlock) -> int:
        return self._rpo_index[block]

    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self._rpo_index

    @property
    def reachable_blocks(self) -> List[BasicBlock]:
        return list(self._rpo)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def preds(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self.predecessors[block])

    def succs(self, block: BasicBlock) -> List[BasicBlock]:
        return list(self.successors[block])

    def edges(self) -> Iterable:
        for block in self.blocks:
            for succ in self.successors[block]:
                yield (block, succ)

    def structural_checksum(self) -> int:
        """Checksum of the snapshot's block graph.

        Equal to :func:`repro.ir.verifier.cfg_checksum` of the function
        *at snapshot time* (asserted in ``tests/test_analysis_manager``),
        computed from the already-built adjacency instead of re-walking
        every terminator.
        """
        return hash(
            tuple(
                (block.name, tuple(s.name for s in self.successors[block]))
                for block in self.blocks
            )
        )


def remove_unreachable_blocks(func: Function, am=None) -> int:
    """Delete blocks not reachable from the entry; returns how many died.

    ``am`` (an :class:`repro.analysis.manager.AnalysisManager`) supplies a
    cached CFG snapshot when available.  Preserves the CFG tier iff the
    return value is 0; the caller owns the invalidation call.
    """
    cfg = am.cfg(func) if am is not None else CFG(func)
    dead = [block for block in func.blocks if not cfg.is_reachable(block)]
    if not dead:
        return 0
    dead_set = set(dead)
    # Patch φ-nodes in surviving blocks that mention dead predecessors.
    for block in func.blocks:
        if block in dead_set:
            continue
        for phi in list(block.phis()):
            for pred in [p for p in phi.incoming_blocks if p in dead_set]:
                phi.remove_incoming(pred)
    from repro.ir.values import Undef

    for block in dead:
        for inst in list(block.instructions):
            # Any remaining uses live in reachable code only via φ edges we
            # already removed; replace defensively with undef.
            if inst.is_used and inst.type.is_value_type:
                inst.replace_all_uses_with(Undef(inst.type))
            inst.drop_operands()
        func.remove_block(block)
    return len(dead)
