"""Invalidation-aware per-function cache of graph analyses.

Every transform pass and every region-construction phase needs some of
``CFG`` / ``DominatorTree`` / dominance frontiers / ``LoopInfo`` /
``Liveness``.  Recomputing them from scratch at each consumer dominated
the compiler's profile; the :class:`AnalysisManager` computes each
analysis at most once per function and serves the snapshot until a
mutation invalidates it.

The contract mirrors LLVM's pass/analysis split:

- **Consumers** ask the manager (``am.cfg(func)``, ``am.domtree(func)``,
  ``am.frontiers(func)``, ``am.loops(func)``, ``am.liveness(func)``)
  instead of constructing analyses directly.
- **Mutators** must call :meth:`invalidate` after changing a function,
  declaring what survives via ``preserve=...``:

  - inserting/removing/rewriting *instructions* while keeping every
    block and terminator intact preserves the CFG tier
    (``preserve=CFG_ANALYSES``) — the CFG snapshot, dominator tree,
    frontiers, and loop nest are all functions of the block graph only;
  - any edit to block structure or terminators (splitting blocks,
    threading jumps, unrolling, inlining) preserves nothing
    (``preserve=()``,  the default);
  - ``Liveness`` depends on instructions *and* the CFG, so it only
    survives a pure no-op.

A pass that mutates the block graph and fails to invalidate produces
analyses over a stale graph — silent miscompilation.  Two safety nets
exist: ``AnalysisManager(debug=True)`` re-checksums the block graph
(:func:`repro.ir.verifier.cfg_checksum`) on every CFG-tier cache hit
and raises :class:`StaleAnalysisError` on drift (tests run this mode;
see ``tests/test_analysis_manager.py``), and :meth:`check` performs the
same assertion on demand.

Cache traffic is observable: ``analysis.cache.{hits,misses}`` counters,
labeled by analysis kind, feed ``repro stats``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro import obs
from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree, compute_dominance_frontiers
from repro.analysis.liveness import Liveness
from repro.analysis.loops import LoopInfo
from repro.ir.function import Function

#: The analyses that are pure functions of the block graph: valid as
#: long as no block or terminator changes, whatever happens to other
#: instructions.
CFG_ANALYSES: FrozenSet[str] = frozenset(
    {"cfg", "domtree", "frontiers", "loops", "reachability"}
)

#: Every analysis kind the manager caches.
ALL_ANALYSES: FrozenSet[str] = CFG_ANALYSES | {"liveness"}


class StaleAnalysisError(AssertionError):
    """A cached CFG-tier analysis was served for a mutated block graph.

    Raised only in ``debug=True`` mode (or by :meth:`AnalysisManager.check`);
    it always indicates a pass that changed control flow without calling
    :meth:`AnalysisManager.invalidate`.
    """


class AnalysisManager:
    """Per-function cache for the standard graph analyses."""

    def __init__(self, debug: bool = False) -> None:
        self.debug = debug
        self._cache: Dict[Function, Dict[str, object]] = {}
        self._checksums: Dict[Function, int] = {}

    # ------------------------------------------------------------------
    # Cache core
    # ------------------------------------------------------------------
    def _get(self, func: Function, kind: str, build: Callable[[], object]) -> object:
        entry = self._cache.setdefault(func, {})
        cached = entry.get(kind)
        if cached is not None:
            if self.debug and kind in CFG_ANALYSES:
                self.check(func)
            obs.counter("analysis.cache.hits").inc(kind=kind)
            return cached
        obs.counter("analysis.cache.misses").inc(kind=kind)
        value = build()
        entry[kind] = value
        if kind == "cfg":
            from repro.ir.verifier import cfg_checksum

            self._checksums[func] = cfg_checksum(func)
        return value

    def check(self, func: Function) -> None:
        """Assert cached CFG-tier analyses still match ``func``'s graph."""
        expected = self._checksums.get(func)
        if expected is None:
            return
        from repro.ir.verifier import cfg_checksum

        actual = cfg_checksum(func)
        if actual != expected:
            raise StaleAnalysisError(
                f"@{func.name}: block graph changed under cached analyses "
                f"(checksum {expected:#x} -> {actual:#x}) — a pass mutated "
                f"the CFG without calling AnalysisManager.invalidate()"
            )

    def invalidate(self, func: Function, preserve: Iterable[str] = ()) -> None:
        """Drop cached analyses of ``func`` except those in ``preserve``.

        ``preserve=CFG_ANALYSES`` is the declaration for instruction-only
        mutations; the default preserves nothing.  Preserving a derived
        analysis without its base (e.g. ``loops`` without ``cfg``) is a
        contract violation and raises ``ValueError``.
        """
        keep = frozenset(preserve)
        unknown = keep - ALL_ANALYSES
        if unknown:
            raise ValueError(f"unknown analyses: {sorted(unknown)}")
        if keep & CFG_ANALYSES and "cfg" not in keep:
            raise ValueError(
                "preserving a CFG-derived analysis requires preserving 'cfg' "
                f"as well (got {sorted(keep)})"
            )
        entry = self._cache.get(func)
        if entry is None:
            return
        for kind in list(entry):
            if kind not in keep:
                del entry[kind]
        if "cfg" not in keep:
            self._checksums.pop(func, None)

    def invalidate_all(self) -> None:
        """Forget every function (e.g. after module-level surgery)."""
        self._cache.clear()
        self._checksums.clear()

    def retained(self) -> int:
        """How many functions currently have cached analyses.

        Long-lived holders (the ``repro serve`` workers share one
        manager across requests) use this to bound retention: past a
        limit they call :meth:`invalidate_all` so the cache — keyed by
        :class:`~repro.ir.function.Function` identity — cannot pin an
        unbounded number of dead modules in memory.
        """
        return len(self._cache)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def cfg(self, func: Function) -> CFG:
        return self._get(func, "cfg", lambda: CFG(func))

    def domtree(self, func: Function) -> DominatorTree:
        return self._get(
            func, "domtree",
            lambda: DominatorTree.compute_from_cfg(self.cfg(func)),
        )

    def frontiers(self, func: Function) -> Dict:
        return self._get(
            func, "frontiers",
            lambda: compute_dominance_frontiers(self.domtree(func)),
        )

    def loops(self, func: Function) -> LoopInfo:
        return self._get(
            func, "loops", lambda: LoopInfo(func, self.domtree(func))
        )

    def reachability(self, func: Function):
        from repro.analysis.antideps import BlockReachability

        return self._get(
            func, "reachability", lambda: BlockReachability(self.cfg(func))
        )

    def liveness(self, func: Function) -> Liveness:
        return self._get(func, "liveness", lambda: Liveness(func))


class NullAnalysisManager(AnalysisManager):
    """A manager that never caches: every request computes fresh.

    Used by the ``repro bench`` cached-vs-fresh comparison and by the
    bit-identity tests; results must be indistinguishable from the
    caching manager's.
    """

    def _get(self, func: Function, kind: str, build: Callable[[], object]) -> object:
        obs.counter("analysis.cache.misses").inc(kind=kind)
        return build()

    def invalidate(self, func: Function, preserve: Iterable[str] = ()) -> None:
        pass

    def check(self, func: Function) -> None:
        pass
