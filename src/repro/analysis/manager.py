"""Invalidation-aware per-function cache of graph analyses.

Every transform pass and every region-construction phase needs some of
``CFG`` / ``DominatorTree`` / dominance frontiers / ``LoopInfo`` /
``Liveness``.  Recomputing them from scratch at each consumer dominated
the compiler's profile; the :class:`AnalysisManager` computes each
analysis at most once per function and serves the snapshot until a
mutation invalidates it.

The contract mirrors LLVM's pass/analysis split:

- **Consumers** ask the manager (``am.cfg(func)``, ``am.domtree(func)``,
  ``am.frontiers(func)``, ``am.loops(func)``, ``am.liveness(func)``)
  instead of constructing analyses directly.
- **Mutators** must call :meth:`invalidate` after changing a function,
  declaring what survives via ``preserve=...``:

  - inserting/removing/rewriting *instructions* while keeping every
    block and terminator intact preserves the CFG tier
    (``preserve=CFG_ANALYSES``) — the CFG snapshot, dominator tree,
    frontiers, and loop nest are all functions of the block graph only;
  - any edit to block structure or terminators (splitting blocks,
    threading jumps, unrolling, inlining) preserves nothing
    (``preserve=()``,  the default);
  - ``Liveness`` depends on instructions *and* the CFG, so it only
    survives a pure no-op.

A pass that mutates the block graph and fails to invalidate produces
analyses over a stale graph — silent miscompilation.  Two safety nets
exist: ``AnalysisManager(debug=True)`` re-checksums the block graph
(:func:`repro.ir.verifier.cfg_checksum`) on every CFG-tier cache hit
and raises :class:`StaleAnalysisError` on drift (tests run this mode;
see ``tests/test_analysis_manager.py``), and :meth:`check` performs the
same assertion on demand.

Cache traffic is observable: ``analysis.cache.{hits,misses}`` counters,
labeled by analysis kind, feed ``repro stats``.

**Inputs:** :class:`~repro.ir.function.Function` objects (cache key is
function identity).  **Outputs:** cached analysis snapshots, one method
per kind.  **Tier:** the manager *defines* the tiers — ``cfg``,
``domtree``, ``frontiers``, ``loops``, ``reachability``, and ``bitcfg``
(the packed-bitset CFG view of :mod:`repro.analysis.bitset`) form the
CFG tier; ``liveness`` is in the instruction tier.

Doctest — a second request hits the cache (same object back):

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @f(%a: int) -> int {
... entry:
...   ret %a
... }
... ''')
>>> func = mod.function_by_name("f")
>>> am = AnalysisManager()
>>> am.cfg(func) is am.cfg(func)
True
>>> am.bitcfg(func).cfg is am.cfg(func)
True
>>> am.invalidate(func)
>>> sorted(CFG_ANALYSES)
['bitcfg', 'cfg', 'domtree', 'frontiers', 'loops', 'reachability']
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro import obs
from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree, compute_dominance_frontiers
from repro.analysis.liveness import Liveness
from repro.analysis.loops import LoopInfo
from repro.ir.function import Function

#: The analyses that are pure functions of the block graph: valid as
#: long as no block or terminator changes, whatever happens to other
#: instructions.
CFG_ANALYSES: FrozenSet[str] = frozenset(
    {"cfg", "domtree", "frontiers", "loops", "reachability", "bitcfg"}
)

#: Every analysis kind the manager caches.
ALL_ANALYSES: FrozenSet[str] = CFG_ANALYSES | {"liveness"}


class StaleAnalysisError(AssertionError):
    """A cached CFG-tier analysis was served for a mutated block graph.

    Raised only in ``debug=True`` mode (or by :meth:`AnalysisManager.check`);
    it always indicates a pass that changed control flow without calling
    :meth:`AnalysisManager.invalidate`.
    """


class AnalysisManager:
    """Per-function cache for the standard graph analyses."""

    def __init__(self, debug: bool = False) -> None:
        self.debug = debug
        self._cache: Dict[Function, Dict[str, object]] = {}
        self._checksums: Dict[Function, int] = {}
        # (observer, hits, misses) — the counter objects are re-resolved
        # whenever the active observer changes, so the per-lookup cost is
        # one identity check instead of a registry walk per _get call.
        self._counters: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Cache core
    # ------------------------------------------------------------------
    def _hit_miss_counters(self):
        observer = obs.get_observer()
        cached = self._counters
        if cached is None or cached[0] is not observer:
            cached = self._counters = (
                observer,
                observer.counter("analysis.cache.hits"),
                observer.counter("analysis.cache.misses"),
            )
        return cached

    def _get(self, func: Function, kind: str, build: Callable[[], object]) -> object:
        entry = self._cache.setdefault(func, {})
        cached = entry.get(kind)
        if cached is not None:
            if self.debug and kind in CFG_ANALYSES:
                self.check(func)
            self._hit_miss_counters()[1].inc(kind=kind)
            return cached
        self._hit_miss_counters()[2].inc(kind=kind)
        value = build()
        entry[kind] = value
        if kind == "cfg":
            # Identical to verifier.cfg_checksum(func) right now, but read
            # off the snapshot the build just produced.
            self._checksums[func] = value.structural_checksum()
        return value

    def check(self, func: Function) -> None:
        """Assert cached CFG-tier analyses still match ``func``'s graph."""
        expected = self._checksums.get(func)
        if expected is None:
            return
        from repro.ir.verifier import cfg_checksum

        actual = cfg_checksum(func)
        if actual != expected:
            raise StaleAnalysisError(
                f"@{func.name}: block graph changed under cached analyses "
                f"(checksum {expected:#x} -> {actual:#x}) — a pass mutated "
                f"the CFG without calling AnalysisManager.invalidate()"
            )

    def invalidate(self, func: Function, preserve: Iterable[str] = ()) -> None:
        """Drop cached analyses of ``func`` except those in ``preserve``.

        ``preserve=CFG_ANALYSES`` is the declaration for instruction-only
        mutations; the default preserves nothing.  Preserving a derived
        analysis without its base (e.g. ``loops`` without ``cfg``) is a
        contract violation and raises ``ValueError``.
        """
        keep = frozenset(preserve)
        unknown = keep - ALL_ANALYSES
        if unknown:
            raise ValueError(f"unknown analyses: {sorted(unknown)}")
        if keep & CFG_ANALYSES and "cfg" not in keep:
            raise ValueError(
                "preserving a CFG-derived analysis requires preserving 'cfg' "
                f"as well (got {sorted(keep)})"
            )
        entry = self._cache.get(func)
        if entry is None:
            return
        for kind in list(entry):
            if kind not in keep:
                del entry[kind]
        if "cfg" not in keep:
            self._checksums.pop(func, None)

    def invalidate_all(self) -> None:
        """Forget every function (e.g. after module-level surgery)."""
        self._cache.clear()
        self._checksums.clear()

    def retained(self) -> int:
        """How many functions currently have cached analyses.

        Long-lived holders (the ``repro serve`` workers share one
        manager across requests) use this to bound retention: past a
        limit they call :meth:`invalidate_all` so the cache — keyed by
        :class:`~repro.ir.function.Function` identity — cannot pin an
        unbounded number of dead modules in memory.
        """
        return len(self._cache)

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def cfg(self, func: Function) -> CFG:
        return self._get(func, "cfg", lambda: CFG(func))

    def domtree(self, func: Function) -> DominatorTree:
        return self._get(
            func, "domtree",
            lambda: DominatorTree.compute_from_cfg(self.cfg(func)),
        )

    def frontiers(self, func: Function) -> Dict:
        return self._get(
            func, "frontiers",
            lambda: compute_dominance_frontiers(self.domtree(func)),
        )

    def loops(self, func: Function) -> LoopInfo:
        return self._get(
            func, "loops", lambda: LoopInfo(func, self.domtree(func))
        )

    def bitcfg(self, func: Function):
        from repro.analysis.bitset import BitCFG

        return self._get(func, "bitcfg", lambda: BitCFG(self.cfg(func)))

    def reachability(self, func: Function):
        from repro.analysis.antideps import BlockReachability

        return self._get(
            func, "reachability",
            lambda: BlockReachability(self.cfg(func), self.bitcfg(func)),
        )

    def liveness(self, func: Function) -> Liveness:
        return self._get(func, "liveness", lambda: Liveness(func))


class NullAnalysisManager(AnalysisManager):
    """A manager that never caches: every request computes fresh.

    Used by the ``repro bench`` cached-vs-fresh comparison and by the
    bit-identity tests; results must be indistinguishable from the
    caching manager's.
    """

    def _get(self, func: Function, kind: str, build: Callable[[], object]) -> object:
        self._hit_miss_counters()[2].inc(kind=kind)
        return build()

    def invalidate(self, func: Function, preserve: Iterable[str] = ()) -> None:
        pass

    def check(self, func: Function) -> None:
        pass
