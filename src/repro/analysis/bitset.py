"""Packed-bitset dataflow kernels over a CFG snapshot.

**Inputs:** a :class:`~repro.analysis.cfg.CFG` snapshot (and, for the
dominance kernels, a :class:`~repro.analysis.dominators.DominatorTree`
built from it).  **Outputs:** per-block sets encoded as Python big-ints
— bit ``i`` stands for the block with bit index ``i`` — plus helpers to
materialize them back into ordinary ``set`` objects.  **Tier:** the
:class:`BitCFG` view is cached in the CFG tier of the
:class:`~repro.analysis.manager.AnalysisManager` (``am.bitcfg(func)``);
everything derived from instructions as well (liveness, boundary
segments) is rebuilt by its consumer.

Python's arbitrary-precision integers make a natural bitset machine:
one machine word covers 64 blocks (or values), and a whole-CFG transfer
function becomes a handful of ``|``/``&``/``&~`` big-int operations
executed in C instead of a per-element Python loop.  The kernels here
are the shared substrate for liveness, reachability, dominance
frontiers, and the antidependence candidate-cut algebra; their
equivalence against the pre-rewrite per-block implementations is
asserted bit-for-bit by ``tests/test_bitset_kernels.py`` (see
``docs/kernels.md`` for the encoding and the testing strategy).

Doctest — the bit round-trip contract:

>>> mask = pack_bits([0, 2, 5])
>>> bin(mask)
'0b100101'
>>> list(iter_bits(mask))
[0, 2, 5]
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.analysis.cfg import CFG
from repro.ir.block import BasicBlock

__all__ = [
    "BitCFG",
    "closure_rows",
    "dominance_frontier_masks",
    "iter_bits",
    "pack_bits",
]


def pack_bits(indices) -> int:
    """OR the given bit indices into one big-int mask."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit indices of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def closure_rows(
    succ_bits: Sequence[Sequence[int]],
    order: Sequence[int],
    expand_mask: Optional[int] = None,
) -> List[int]:
    """Transitive-closure rows: ``rows[i]`` = nodes reachable from ``i``
    via at least one edge.

    ``succ_bits[i]`` lists the successor bit indices of node ``i``;
    ``order`` is the sweep order (successors-first converges fastest —
    pass a post order).  With ``expand_mask``, only nodes whose bit is
    set in it propagate their row onward — edges *out of* a masked-off
    node still contribute the direct successor bit, but nothing beyond
    it.  That restriction is what the boundary-free verifier kernel uses
    (a block containing a boundary is a barrier, not a hole).

    Round-robin iteration over big-int rows: each pass is one ``|`` per
    edge, and the pass count is bounded by the depth of cyclic nesting
    (two passes for reducible CFGs), so the whole closure costs
    O(passes · E) word-parallel ORs.
    """
    n = len(succ_bits)
    rows = [0] * n
    if expand_mask is None:
        expand_mask = (1 << n) - 1
    changed = True
    while changed:
        changed = False
        for i in order:
            acc = 0
            for j in succ_bits[i]:
                acc |= 1 << j
                if (expand_mask >> j) & 1:
                    acc |= rows[j]
            if acc | rows[i] != rows[i]:
                rows[i] |= acc
                changed = True
    return rows


class BitCFG:
    """Bit-indexed view of a :class:`CFG` snapshot.

    Bit assignment: reachable blocks get their RPO index (so masks are
    directly compatible with
    :meth:`~repro.analysis.dominators.DominatorTree.dominator_masks`),
    and unreachable blocks follow in function order.  Cached per
    function in the CFG tier (``AnalysisManager.bitcfg``).
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        rpo = cfg.reverse_post_order
        self.blocks: List[BasicBlock] = rpo + [
            b for b in cfg.blocks if not cfg.is_reachable(b)
        ]
        self.n = len(self.blocks)
        self.bit: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self.blocks)
        }
        bit = self.bit
        #: successor bit indices per node, aligned with ``self.blocks``
        self.succ_bits: List[List[int]] = [
            [bit[s] for s in cfg.successors[b]] for b in self.blocks
        ]
        self._reach_rows: Optional[List[int]] = None

    def block_of(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def blocks_of(self, mask: int) -> List[BasicBlock]:
        """Materialize a block mask into a list (ascending bit order)."""
        blocks = self.blocks
        return [blocks[i] for i in iter_bits(mask)]

    @property
    def post_order_indices(self) -> List[int]:
        """Successors-first sweep order: CFG post order, then the
        unreachable tail (which only ever points at itself or forward)."""
        n_reachable = len(self.cfg.reverse_post_order)
        return list(range(n_reachable - 1, -1, -1)) + list(
            range(n_reachable, self.n)
        )

    def reach_rows(self) -> List[int]:
        """All-pairs reachability rows (``≥1`` CFG edge), lazily built."""
        if self._reach_rows is None:
            self._reach_rows = closure_rows(
                self.succ_bits, self.post_order_indices
            )
        return self._reach_rows


def dominance_frontier_masks(domtree) -> Dict[BasicBlock, int]:
    """Dominance frontier of every reachable block, as RPO-index masks.

    Single bottom-up pass over the dominator tree (the Cytron
    ``DF = DF_local ∪ DF_up`` decomposition, in the spirit of the
    near-linear control-dependence constructions of Chalupa et al. —
    control dependence *is* the dominance frontier of the reverse CFG):

    - ``DF_local(n)`` — successor bits whose idom is not ``n``;
    - ``sdom(n)``     — blocks strictly dominated by ``n`` (one upward
      OR per dominator-tree edge);
    - ``DF(n) = DF_local(n) | (⋃_children DF(c)) & ~sdom(n)``.

    Three big-int operations per block replace the per-edge two-finger
    idom walk, whose cost is O(E · dom-depth) on deep CFGs.
    """
    cfg = domtree.cfg
    rpo = cfg.reverse_post_order
    index = cfg.rpo_index
    idom = domtree.idom
    children = domtree.children

    # Reverse preorder of the dominator tree visits children before
    # parents; RPO reversed works too, since idom(b) precedes b in RPO.
    sdom: Dict[BasicBlock, int] = {}
    df: Dict[BasicBlock, int] = {}
    for block in reversed(rpo):
        local = 0
        for succ in cfg.successors[block]:
            if idom.get(succ) is not block:
                local |= 1 << index(succ)
        up = 0
        strict = 0
        for child in children.get(block, ()):
            up |= df[child]
            strict |= (1 << index(child)) | sdom[child]
        sdom[block] = strict
        df[block] = local | (up & ~strict)
    return df
