"""Antidependence analysis (paper §2.1, §4.2).

Finds memory-level antidependences — (read, write) pairs on potentially
aliasing locations with a control-flow path from the read to the write —
and classifies them:

- **storage**: *semantic* (heap / global / non-local stack: fixed by program
  semantics) vs *artificial* (non-escaping local stack: compiler-renamable)
  — paper Table 2;
- **clobber**: an antidependence is a *clobber* if it is not preceded by a
  flow dependence on the same location (the ``WAR`` without ``RAW·WAR``
  pattern of §2.1).

This module also provides the instruction-level dominance oracle and the
candidate-cut-set computation ``S(a, b) = {x : x dom b ∧ ¬(x dom a)} ∪ {b}``
that the hitting-set region construction consumes (§4.2.1, Lemma 1). The
``∪ {b}`` extension guarantees a non-empty candidate set even for
loop-carried antidependences where ``b`` dominates ``a`` (cutting
immediately before the write trivially separates every read→write path).

**Inputs:** a :class:`~repro.ir.function.Function` plus optional cached
:class:`~repro.analysis.cfg.CFG` / dominator-tree / reachability
snapshots.  **Outputs:** the classified :class:`AntiDep` list and
per-antidependence candidate cut sets.  **Tier:** ``reachability`` is a
CFG-tier analysis in the :class:`~repro.analysis.manager.AnalysisManager`;
:class:`AntiDepAnalysis` itself reads instructions and is rebuilt by
the construction pipeline each time it runs.  Block reachability and
the cut-set algebra run on the packed-bitset kernels of
:mod:`repro.analysis.bitset`: reach queries are one bit test against
big-int closure rows, and ``S(a, b)`` is a single ``masks[b] & ~masks[a]``
AND-NOT over dominator masks.

Doctest — a store over a dominating load is an antidependence:

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @f(%p: ptr) -> int {
... entry:
...   %v = load int, %p
...   store 7, %p
...   ret %v
... }
... ''')
>>> ada = AntiDepAnalysis(mod.function_by_name("f"))
>>> [(ad.read.name, ad.write.opcode, ad.is_clobber) for ad in ada.antideps]
[('v', 'store', True)]
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.alias import (
    AliasAnalysis,
    MemoryObject,
    STORAGE_LOCAL_STACK,
)
from repro.analysis.bitset import BitCFG
from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Load, Phi, Store

#: A program point: "immediately before instruction ``block.instructions[index]``".
#: ``index == len(block.instructions)`` is not used; cuts always precede an
#: existing instruction (possibly the terminator).
Point = Tuple[BasicBlock, int]


class AntiDep:
    """A memory antidependence: ``read`` executes, then ``write`` overwrites.

    Attributes:
        read: the :class:`Load` (or memory-reading call).
        write: the :class:`Store` (or memory-writing call).
        storage: ``"memory"`` (semantic) or ``"local-stack"`` (artificial).
        is_clobber: False only when a must-alias store to the same location
            dominates the read (a preceding flow dependence, §2.1).
    """

    def __init__(self, read: Instruction, write: Instruction, storage: str, is_clobber: bool) -> None:
        self.read = read
        self.write = write
        self.storage = storage
        self.is_clobber = is_clobber

    @property
    def is_semantic(self) -> bool:
        return self.storage != STORAGE_LOCAL_STACK

    @property
    def is_artificial(self) -> bool:
        return self.storage == STORAGE_LOCAL_STACK

    def __repr__(self) -> str:
        kind = "semantic" if self.is_semantic else "artificial"
        clob = "clobber" if self.is_clobber else "non-clobber"
        return (
            f"<AntiDep {kind}/{clob} read=%{self.read.name or self.read.opcode} "
            f"write={self.write.opcode}@{self.write.parent.name}>"
        )


class InstructionIndex:
    """Positions of instructions: ``inst -> (block, index)``. Rebuild after surgery."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.position: Dict[Instruction, Point] = {}
        for block in func.blocks:
            for i, inst in enumerate(block.instructions):
                self.position[inst] = (block, i)

    def point_before(self, inst: Instruction) -> Point:
        return self.position[inst]


class DominanceOracle:
    """Instruction-level dominance built on block dominance + block order."""

    def __init__(self, func: Function, domtree: Optional[DominatorTree] = None) -> None:
        self.func = func
        self.domtree = domtree or DominatorTree.compute(func)
        self.index = InstructionIndex(func)

    def dominates(self, x: Instruction, y: Instruction) -> bool:
        """Reflexive instruction dominance: every entry→y path executes x first."""
        bx, ix = self.index.position[x]
        by, iy = self.index.position[y]
        if bx is by:
            return ix <= iy
        return self.domtree.strictly_dominates(bx, by)


class BlockReachability:
    """``reaches(a, b)``: a path of ≥1 CFG edge from ``a`` to ``b`` exists.

    All-pairs reachability as big-int closure rows
    (:meth:`~repro.analysis.bitset.BitCFG.reach_rows`), built lazily on
    the first query: one round-robin sweep of word-parallel ORs replaces
    the old one-DFS-per-queried-source scheme, and each query is a
    single bit test.  Unreachable source blocks are covered too — the
    :class:`~repro.analysis.bitset.BitCFG` indexes every block of the
    function, not just the RPO.
    """

    def __init__(self, cfg: CFG, bitcfg: Optional[BitCFG] = None) -> None:
        self.cfg = cfg
        self._bitcfg = bitcfg

    def reaches(self, a: BasicBlock, b: BasicBlock) -> bool:
        bitcfg = self._bitcfg
        if bitcfg is None:
            bitcfg = self._bitcfg = BitCFG(self.cfg)
        bit = bitcfg.bit
        return (bitcfg.reach_rows()[bit[a]] >> bit[b]) & 1 == 1


def path_exists(index: InstructionIndex, reach: BlockReachability, a: Instruction, b: Instruction) -> bool:
    """Is there a CFG path executing ``a`` then later ``b``?"""
    ba, ia = index.position[a]
    bb, ib = index.position[b]
    if ba is bb and ia < ib:
        return True
    return reach.reaches(ba, bb)


class AntiDepAnalysis:
    """Memory antidependences of one function, with classification."""

    def __init__(
        self,
        func: Function,
        aa: Optional[AliasAnalysis] = None,
        cfg: Optional[CFG] = None,
        domtree: Optional[DominatorTree] = None,
        reach: Optional[BlockReachability] = None,
    ) -> None:
        """``cfg``/``domtree``/``reach`` let callers (the region
        construction's :class:`~repro.analysis.manager.AnalysisManager`)
        inject cached snapshots instead of recomputing them; they must
        be current for ``func``."""
        self.func = func
        self.aa = aa or AliasAnalysis(func)
        self.cfg = cfg or CFG(func)
        self.domtree = domtree or DominatorTree.compute_from_cfg(self.cfg)
        self.oracle = DominanceOracle(func, self.domtree)
        self.reach = reach or BlockReachability(self.cfg)
        self._phi_prefix: Dict[BasicBlock, int] = {}
        self.antideps: List[AntiDep] = self._compute()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _compute(self) -> List[AntiDep]:
        # One sweep over the instruction stream collects both sides.
        reads: List[Load] = []
        writes: List[Store] = []
        is_reachable = self.cfg.is_reachable
        for block in self.func.blocks:
            if not is_reachable(block):
                continue
            for inst in block.instructions:
                cls = inst.__class__  # exact: the IR has no inst subclasses
                if cls is Load:
                    reads.append(inst)
                elif cls is Store:
                    writes.append(inst)
        if not reads or not writes:
            return []

        # Group writes by resolved abstract object so each read only
        # examines writes its alias class can actually overlap, instead
        # of running the full pairwise O(reads × writes) alias query.
        # The candidate filters below mirror AliasAnalysis.alias case
        # for case; pairs excluded here are exactly its NO_ALIAS pairs.
        aa = self.aa
        resolve = aa.resolve
        trust = aa.trust_argument_noalias
        from repro.ir.values import Argument

        w_info: List[Tuple[Store, MemoryObject, Optional[int]]] = []
        # Per-object write group, split by offset up front so each read
        # probes its own offset class instead of filtering the whole
        # group: (all indices, unknown-offset indices, offset → indices).
        by_obj: Dict[int, Tuple[List[int], List[int], Dict[int, List[int]]]] = {}
        unknown_idx: List[int] = []  # writes through UNKNOWN-kind objects
        open_idx: List[int] = []  # concrete writes an unknown read may hit
        for j, write in enumerate(writes):
            wobj, woff = resolve(write.ptr)
            w_info.append((write, wobj, woff))
            group = by_obj.get(id(wobj))
            if group is None:
                group = by_obj[id(wobj)] = ([], [], {})
            group[0].append(j)
            if woff is None:
                group[1].append(j)
            else:
                group[2].setdefault(woff, []).append(j)
            if wobj.kind == MemoryObject.KIND_UNKNOWN:
                unknown_idx.append(j)
            elif not (
                wobj.kind == MemoryObject.KIND_STACK
                and not aa.alloca_escapes(wobj.origin)
            ):
                open_idx.append(j)

        index = self.oracle.index
        antideps: List[AntiDep] = []
        for read in reads:
            robj, roff = resolve(read.ptr)
            # Same-object writes: NO_ALIAS only when both offsets are
            # known and differ — i.e. the matching-offset and
            # unknown-offset classes of the read's own object group
            # (merged ascending, matching the one-sweep filter order).
            group = by_obj.get(id(robj))
            if group is None:
                same: List[int] = []
            elif roff is None:
                same = group[0]
            else:
                offs = group[2].get(roff)
                if offs is None:
                    same = group[1]
                elif not group[1]:
                    same = offs
                else:
                    same = sorted(offs + group[1])
            # Cross-object writes: concrete never overlaps concrete; an
            # unknown pointer cannot reach a non-escaping alloca; with
            # the restrict-style promise, two distinct argument objects
            # are disjoint.
            if robj.kind == MemoryObject.KIND_UNKNOWN:
                cross = open_idx + [
                    j
                    for j in unknown_idx
                    if w_info[j][1] is not robj
                    and not (
                        trust
                        and isinstance(robj.origin, Argument)
                        and isinstance(w_info[j][1].origin, Argument)
                    )
                ]
                cross.sort()
            elif robj.kind == MemoryObject.KIND_STACK and not aa.alloca_escapes(
                robj.origin
            ):
                cross = []
            else:
                cross = unknown_idx
            candidates = sorted(same + cross) if cross else same

            # The clobber test only depends on the must-alias stores
            # dominating this read; collect them once per read (lazily,
            # on its first antidependence) instead of re-walking every
            # write per (read, write) pair — this was the analysis'
            # dominant cost.
            dominating: Optional[List[Store]] = None
            read_ptr = read.ptr
            for j in candidates:
                write, wobj, woff = w_info[j]
                if not path_exists(index, self.reach, read, write):
                    continue
                if dominating is None:
                    # Must-alias candidates all resolve to the read's own
                    # object (``other.ptr is read_ptr`` implies it), so
                    # only the same-object write group needs scanning.
                    dominating = [
                        w_info[j2][0]
                        for j2 in (group[0] if group is not None else ())
                        if (
                            w_info[j2][0].ptr is read_ptr
                            or (
                                w_info[j2][2] is not None
                                and roff is not None
                                and w_info[j2][2] == roff
                            )
                        )
                        and self.oracle.dominates(w_info[j2][0], read)
                    ]
                storage = aa.storage_class(write.ptr)
                clobber = not any(other is not write for other in dominating)
                antideps.append(AntiDep(read, write, storage, clobber))
        return antideps

    # A WAR is not a clobber if a must-alias store dominates the read:
    # the static (sound, conservative) version of "antidependence
    # preceded by a flow dependence" from §2.1 — when such a store
    # exists, the location read is not a live-in of any region
    # containing the pair.  The ``dominating`` list above implements
    # exactly this test, shared across all writes of one read.

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def clobber_antideps(self) -> List[AntiDep]:
        return [ad for ad in self.antideps if ad.is_clobber]

    @property
    def semantic_clobbers(self) -> List[AntiDep]:
        return [ad for ad in self.antideps if ad.is_clobber and ad.is_semantic]

    @property
    def artificial_clobbers(self) -> List[AntiDep]:
        return [ad for ad in self.antideps if ad.is_clobber and ad.is_artificial]

    # ------------------------------------------------------------------
    # Candidate cut sets (paper §4.2.1)
    # ------------------------------------------------------------------
    def candidate_cuts(self, antidep: AntiDep) -> FrozenSet[Point]:
        """``S(a,b) ∪ {before b}`` as a set of program points.

        Every point in the result lies on *every* path from the read to the
        write (Lemma 1), so placing a region boundary at any one of them
        splits the antidependence across regions.
        """
        a, b = antidep.read, antidep.write
        index = self.oracle.index
        ba, ia = index.position[a]
        bb, ib = index.position[b]
        points: Set[Point] = set()
        cfg = self.cfg
        masks = self.domtree.dominator_masks()
        mask_bb = masks.get(bb, 0)
        mask_ba = masks.get(ba, 0)

        # b's own block: instructions at indices <= ib dominate b within it.
        lo = ia + 1 if ba is bb else 0  # those at <= ia dominate a as well
        for i in range(lo, ib + 1):
            points.add((bb, i))

        # a's block, when it strictly dominates b's: every instruction of it
        # dominates b, but those at indices <= ia dominate a too.
        if ba is not bb and mask_ba and (mask_bb >> cfg.rpo_index(ba)) & 1:
            for i in range(ia + 1, len(ba.instructions)):
                points.add((ba, i))

        # Every other dominator x of b with ¬(x dom a), as one bitmask
        # AND-NOT over RPO indices (ba's own bit is inside mask_ba, so it
        # is already excluded; bb's bit is cleared explicitly).
        rest = mask_bb & ~mask_ba
        if mask_bb:
            rest &= ~(1 << cfg.rpo_index(bb))
        if rest:
            rpo = cfg.reverse_post_order
            while rest:
                low_bit = rest & -rest
                rest ^= low_bit
                dom_block = rpo[low_bit.bit_length() - 1]
                for i in range(len(dom_block.instructions)):
                    points.add((dom_block, i))

        points.add((bb, ib))  # cutting immediately before the write always works
        return frozenset(self._normalize_point(p) for p in points)

    def _normalize_point(self, point: Point) -> Point:
        """Move points inside a φ prefix to the first non-φ position."""
        block, index = point
        first = self._phi_prefix.get(block)
        if first is None:
            first = 0
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    first += 1
                else:
                    break
            self._phi_prefix[block] = first
        return (block, max(index, first))


def summarize_antideps(analysis: AntiDepAnalysis) -> Dict[str, int]:
    """Counts used by tests and the Table-2 characterization bench."""
    return {
        "total": len(analysis.antideps),
        "clobber": len(analysis.clobber_antideps),
        "semantic_clobber": len(analysis.semantic_clobbers),
        "artificial_clobber": len(analysis.artificial_clobbers),
        "non_clobber": len(analysis.antideps) - len(analysis.clobber_antideps),
    }
