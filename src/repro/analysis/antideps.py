"""Antidependence analysis (paper §2.1, §4.2).

Finds memory-level antidependences — (read, write) pairs on potentially
aliasing locations with a control-flow path from the read to the write —
and classifies them:

- **storage**: *semantic* (heap / global / non-local stack: fixed by program
  semantics) vs *artificial* (non-escaping local stack: compiler-renamable)
  — paper Table 2;
- **clobber**: an antidependence is a *clobber* if it is not preceded by a
  flow dependence on the same location (the ``WAR`` without ``RAW·WAR``
  pattern of §2.1).

This module also provides the instruction-level dominance oracle and the
candidate-cut-set computation ``S(a, b) = {x : x dom b ∧ ¬(x dom a)} ∪ {b}``
that the hitting-set region construction consumes (§4.2.1, Lemma 1). The
``∪ {b}`` extension guarantees a non-empty candidate set even for
loop-carried antidependences where ``b`` dominates ``a`` (cutting
immediately before the write trivially separates every read→write path).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.alias import AliasAnalysis, NO_ALIAS, MUST_ALIAS, STORAGE_LOCAL_STACK
from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Load, Phi, Store

#: A program point: "immediately before instruction ``block.instructions[index]``".
#: ``index == len(block.instructions)`` is not used; cuts always precede an
#: existing instruction (possibly the terminator).
Point = Tuple[BasicBlock, int]


class AntiDep:
    """A memory antidependence: ``read`` executes, then ``write`` overwrites.

    Attributes:
        read: the :class:`Load` (or memory-reading call).
        write: the :class:`Store` (or memory-writing call).
        storage: ``"memory"`` (semantic) or ``"local-stack"`` (artificial).
        is_clobber: False only when a must-alias store to the same location
            dominates the read (a preceding flow dependence, §2.1).
    """

    def __init__(self, read: Instruction, write: Instruction, storage: str, is_clobber: bool) -> None:
        self.read = read
        self.write = write
        self.storage = storage
        self.is_clobber = is_clobber

    @property
    def is_semantic(self) -> bool:
        return self.storage != STORAGE_LOCAL_STACK

    @property
    def is_artificial(self) -> bool:
        return self.storage == STORAGE_LOCAL_STACK

    def __repr__(self) -> str:
        kind = "semantic" if self.is_semantic else "artificial"
        clob = "clobber" if self.is_clobber else "non-clobber"
        return (
            f"<AntiDep {kind}/{clob} read=%{self.read.name or self.read.opcode} "
            f"write={self.write.opcode}@{self.write.parent.name}>"
        )


class InstructionIndex:
    """Positions of instructions: ``inst -> (block, index)``. Rebuild after surgery."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.position: Dict[Instruction, Point] = {}
        for block in func.blocks:
            for i, inst in enumerate(block.instructions):
                self.position[inst] = (block, i)

    def point_before(self, inst: Instruction) -> Point:
        return self.position[inst]


class DominanceOracle:
    """Instruction-level dominance built on block dominance + block order."""

    def __init__(self, func: Function, domtree: Optional[DominatorTree] = None) -> None:
        self.func = func
        self.domtree = domtree or DominatorTree.compute(func)
        self.index = InstructionIndex(func)

    def dominates(self, x: Instruction, y: Instruction) -> bool:
        """Reflexive instruction dominance: every entry→y path executes x first."""
        bx, ix = self.index.position[x]
        by, iy = self.index.position[y]
        if bx is by:
            return ix <= iy
        return self.domtree.strictly_dominates(bx, by)


class BlockReachability:
    """``reaches(a, b)``: a path of ≥1 CFG edge from ``a`` to ``b`` exists.

    Reach sets are computed lazily, one DFS per *queried* source block:
    antidependence analysis only ever asks about blocks containing memory
    reads, so eagerly solving all-pairs reachability (one DFS per block
    of the function) wasted most of its work.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._reach: Dict[BasicBlock, Set[BasicBlock]] = {}

    def reaches(self, a: BasicBlock, b: BasicBlock) -> bool:
        seen = self._reach.get(a)
        if seen is None:
            seen = set()
            stack = list(self.cfg.succs(a))
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.cfg.succs(node))
            self._reach[a] = seen
        return b in seen


def path_exists(index: InstructionIndex, reach: BlockReachability, a: Instruction, b: Instruction) -> bool:
    """Is there a CFG path executing ``a`` then later ``b``?"""
    ba, ia = index.position[a]
    bb, ib = index.position[b]
    if ba is bb and ia < ib:
        return True
    return reach.reaches(ba, bb)


class AntiDepAnalysis:
    """Memory antidependences of one function, with classification."""

    def __init__(
        self,
        func: Function,
        aa: Optional[AliasAnalysis] = None,
        cfg: Optional[CFG] = None,
        domtree: Optional[DominatorTree] = None,
        reach: Optional[BlockReachability] = None,
    ) -> None:
        """``cfg``/``domtree``/``reach`` let callers (the region
        construction's :class:`~repro.analysis.manager.AnalysisManager`)
        inject cached snapshots instead of recomputing them; they must
        be current for ``func``."""
        self.func = func
        self.aa = aa or AliasAnalysis(func)
        self.cfg = cfg or CFG(func)
        self.domtree = domtree or DominatorTree.compute_from_cfg(self.cfg)
        self.oracle = DominanceOracle(func, self.domtree)
        self.reach = reach or BlockReachability(self.cfg)
        self._phi_prefix: Dict[BasicBlock, int] = {}
        self.antideps: List[AntiDep] = self._compute()

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _memory_reads(self) -> List[Load]:
        return [inst for inst in self.func.instructions() if isinstance(inst, Load)]

    def _memory_writes(self) -> List[Store]:
        return [inst for inst in self.func.instructions() if isinstance(inst, Store)]

    def _compute(self) -> List[AntiDep]:
        reads = self._memory_reads()
        writes = [w for w in self._memory_writes() if self.cfg.is_reachable(w.parent)]
        index = self.oracle.index
        antideps: List[AntiDep] = []
        for read in reads:
            if not self.cfg.is_reachable(read.parent):
                continue
            # The clobber test (:meth:`_is_clobber`) only depends on the
            # must-alias stores dominating this read; collect them once
            # per read (lazily, on its first antidependence) instead of
            # re-walking every write per (read, write) pair — this was
            # the analysis' dominant cost.
            dominating: Optional[List[Store]] = None
            for write in writes:
                if self.aa.alias(read.ptr, write.ptr) == NO_ALIAS:
                    continue
                if not path_exists(index, self.reach, read, write):
                    continue
                if dominating is None:
                    dominating = [
                        other
                        for other in writes
                        if self.aa.alias(other.ptr, read.ptr) == MUST_ALIAS
                        and self.oracle.dominates(other, read)
                    ]
                storage = self.aa.storage_class(write.ptr)
                clobber = not any(other is not write for other in dominating)
                antideps.append(AntiDep(read, write, storage, clobber))
        return antideps

    def _is_clobber(self, read: Load, write: Store) -> bool:
        """A WAR is not a clobber if a must-alias store dominates the read.

        This is the static (sound, conservative) version of "antidependence
        preceded by a flow dependence" from §2.1: when such a store exists,
        the location read is not a live-in of any region containing the pair.
        """
        for other in self._memory_writes():
            if other is write:
                continue
            if not self.cfg.is_reachable(other.parent):
                continue
            if self.aa.alias(other.ptr, read.ptr) != MUST_ALIAS:
                continue
            if self.oracle.dominates(other, read):
                return False
        return True

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def clobber_antideps(self) -> List[AntiDep]:
        return [ad for ad in self.antideps if ad.is_clobber]

    @property
    def semantic_clobbers(self) -> List[AntiDep]:
        return [ad for ad in self.antideps if ad.is_clobber and ad.is_semantic]

    @property
    def artificial_clobbers(self) -> List[AntiDep]:
        return [ad for ad in self.antideps if ad.is_clobber and ad.is_artificial]

    # ------------------------------------------------------------------
    # Candidate cut sets (paper §4.2.1)
    # ------------------------------------------------------------------
    def candidate_cuts(self, antidep: AntiDep) -> FrozenSet[Point]:
        """``S(a,b) ∪ {before b}`` as a set of program points.

        Every point in the result lies on *every* path from the read to the
        write (Lemma 1), so placing a region boundary at any one of them
        splits the antidependence across regions.
        """
        a, b = antidep.read, antidep.write
        index = self.oracle.index
        ba, ia = index.position[a]
        bb, ib = index.position[b]
        points: Set[Point] = set()
        cfg = self.cfg
        masks = self.domtree.dominator_masks()
        mask_bb = masks.get(bb, 0)
        mask_ba = masks.get(ba, 0)

        # b's own block: instructions at indices <= ib dominate b within it.
        lo = ia + 1 if ba is bb else 0  # those at <= ia dominate a as well
        for i in range(lo, ib + 1):
            points.add((bb, i))

        # a's block, when it strictly dominates b's: every instruction of it
        # dominates b, but those at indices <= ia dominate a too.
        if ba is not bb and mask_ba and (mask_bb >> cfg.rpo_index(ba)) & 1:
            for i in range(ia + 1, len(ba.instructions)):
                points.add((ba, i))

        # Every other dominator x of b with ¬(x dom a), as one bitmask
        # AND-NOT over RPO indices (ba's own bit is inside mask_ba, so it
        # is already excluded; bb's bit is cleared explicitly).
        rest = mask_bb & ~mask_ba
        if mask_bb:
            rest &= ~(1 << cfg.rpo_index(bb))
        if rest:
            rpo = cfg.reverse_post_order
            while rest:
                low_bit = rest & -rest
                rest ^= low_bit
                dom_block = rpo[low_bit.bit_length() - 1]
                for i in range(len(dom_block.instructions)):
                    points.add((dom_block, i))

        points.add((bb, ib))  # cutting immediately before the write always works
        return frozenset(self._normalize_point(p) for p in points)

    def _normalize_point(self, point: Point) -> Point:
        """Move points inside a φ prefix to the first non-φ position."""
        block, index = point
        first = self._phi_prefix.get(block)
        if first is None:
            first = 0
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    first += 1
                else:
                    break
            self._phi_prefix[block] = first
        return (block, max(index, first))


def summarize_antideps(analysis: AntiDepAnalysis) -> Dict[str, int]:
    """Counts used by tests and the Table-2 characterization bench."""
    return {
        "total": len(analysis.antideps),
        "clobber": len(analysis.clobber_antideps),
        "semantic_clobber": len(analysis.semantic_clobbers),
        "artificial_clobber": len(analysis.artificial_clobbers),
        "non_clobber": len(analysis.antideps) - len(analysis.clobber_antideps),
    }
