"""Dominator tree, dominator bitmasks, and dominance frontiers.

**Inputs:** a :class:`~repro.analysis.cfg.CFG` snapshot (or a bare
function).  **Outputs:** the immediate-dominator tree, per-block
dominator sets as RPO-indexed bitmasks, and dominance frontiers.
**Tier:** ``domtree`` and ``frontiers`` live in the CFG tier of the
:class:`~repro.analysis.manager.AnalysisManager` — pure functions of
the block graph, invalidated only by block/terminator surgery.

Tree construction is a packed-bitset maximal fixpoint — ``dom(b) =
{b} ∪ ⋂ dom(preds)`` with every dominator set one Python big int, the
meet a single AND per edge — followed by immediate-dominator extraction
as the highest set bit of each strict-dominator mask (the strict
dominators of a block form a chain of increasing RPO index).  It
replaces the Cooper–Harvey–Kennedy intersect walk with whole-set
integer ops and yields the dominator masks as a by-product.  Dominance
queries and frontiers run on the same kernels: ``dominates`` is one bit
test against the masks, and :func:`compute_dominance_frontiers` is the
single bottom-up ``DF_local ∪ DF_up`` pass (see ``docs/kernels.md``)
instead of the per-edge two-finger walk.

The region-construction algorithm (paper §4.2.1, Lemma 1) relies on the
set ``S(a, b) = {x : x dom b and not (x dom a)}`` for each antidependence
edge ``(a, b)``; :meth:`DominatorTree.dominator_masks` turns it into a
single big-int AND-NOT.

Doctest — dominance in a diamond (entry → l/r → join):

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @d(%c: int) -> int {
... entry:
...   %t = icmp gt %c, 0
...   br %t, l, r
... l:
...   jmp j
... r:
...   jmp j
... j:
...   ret %c
... }
... ''')
>>> func = mod.function_by_name("d")
>>> blocks = {b.name: b for b in func.blocks}
>>> dt = DominatorTree.compute(func)
>>> dt.dominates(blocks["entry"], blocks["j"])
True
>>> dt.dominates(blocks["l"], blocks["j"])
False
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis.cfg import CFG
from repro.ir.block import BasicBlock
from repro.ir.function import Function


class DominatorTree:
    """Immediate-dominator tree over a function's reachable blocks."""

    def __init__(self, cfg: CFG, idom: Dict[BasicBlock, Optional[BasicBlock]]) -> None:
        self.cfg = cfg
        self.idom = idom
        self._dom_masks: Optional[Dict[BasicBlock, int]] = None
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in cfg.reachable_blocks
        }
        for block, parent in idom.items():
            if parent is not None:
                self.children[parent].append(block)
        self._depth: Optional[Dict[BasicBlock, int]] = None

    @property
    def depth(self) -> Dict[BasicBlock, int]:
        """Depth of each reachable block in the dominator tree (entry = 0).

        Built lazily — the mask-based :meth:`dominates` no longer needs
        it, so most trees never pay for the walk.
        """
        if self._depth is None:
            depth: Dict[BasicBlock, int] = {}
            entry = self.cfg.func.entry
            depth[entry] = 0
            stack = [entry]
            while stack:
                node = stack.pop()
                for child in self.children[node]:
                    depth[child] = depth[node] + 1
                    stack.append(child)
            self._depth = depth
        return self._depth

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, func: Function) -> "DominatorTree":
        return cls.compute_from_cfg(CFG(func))

    @classmethod
    def compute_from_cfg(cls, cfg: CFG) -> "DominatorTree":
        rpo = cfg.reverse_post_order
        if not rpo:
            return cls(cfg, {})
        entry = rpo[0]
        index = {block: i for i, block in enumerate(rpo)}
        n = len(rpo)

        # Packed-bitset dominator fixpoint: dom(b) = {b} ∪ ⋂ dom(preds),
        # each set one big int over RPO indices, the meet one AND per
        # edge.  Initialization to the full set gives the maximal
        # fixpoint (= the dominator sets); RPO order converges in two
        # passes for reducible graphs.
        preds_of = [
            [index[p] for p in cfg.predecessors[block] if p in index]
            for block in rpo
        ]
        full = (1 << n) - 1
        dom = [full] * n
        dom[0] = 1
        changed = True
        while changed:
            changed = False
            for i in range(1, n):
                acc = full
                for p in preds_of[i]:
                    acc &= dom[p]
                acc |= 1 << i
                if acc != dom[i]:
                    dom[i] = acc
                    changed = True

        # The strict dominators of a block form a chain along which the
        # RPO index strictly increases, so the immediate dominator is
        # simply the highest set bit of the strict-dominator mask.
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: None}
        for i in range(1, n):
            strict = dom[i] & ~(1 << i)
            idom[rpo[i]] = rpo[strict.bit_length() - 1]
        tree = cls(cfg, idom)
        # The fixpoint already produced the dominator masks the query
        # side would otherwise derive lazily from the idom chains.
        tree._dom_masks = {rpo[i]: dom[i] for i in range(n)}
        return tree

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self.idom or block is self.cfg.func.entry

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if every path from entry to ``b`` passes through ``a``.

        Reflexive: ``dominates(x, x)`` is True.  One bit test against
        the packed dominator masks (unreachable blocks dominate nothing
        and are dominated by nothing, as before).
        """
        if a is b:
            return True
        if not (self.cfg.is_reachable(a) and self.cfg.is_reachable(b)):
            return False
        masks = self.dominator_masks()
        return (masks[b] >> self.cfg.rpo_index(a)) & 1 == 1

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominators_of(self, block: BasicBlock) -> Iterator[BasicBlock]:
        """All dominators of ``block``, from the block itself up to entry."""
        node: Optional[BasicBlock] = block
        while node is not None:
            yield node
            node = self.idom.get(node)

    def dominator_masks(self) -> Dict[BasicBlock, int]:
        """Per-block dominator sets as integer bitmasks over RPO indices.

        ``masks[b]`` has bit ``rpo_index(x)`` set iff ``x`` dominates
        ``b`` (reflexively).  This turns the region construction's
        ``S(a, b) = {x : x dom b ∧ ¬(x dom a)}`` set difference into a
        single ``masks[b] & ~masks[a]`` — one bignum AND-NOT instead of
        a dominator-tree walk per candidate block.  Computed lazily in
        one RPO sweep (a block's idom always precedes it in RPO, so its
        mask is available when needed).
        """
        if self._dom_masks is None:
            masks: Dict[BasicBlock, int] = {}
            for block in self.cfg.reverse_post_order:
                parent = self.idom.get(block)
                inherited = masks[parent] if parent is not None else 0
                masks[block] = inherited | (1 << self.cfg.rpo_index(block))
            self._dom_masks = masks
        return self._dom_masks

    def walk_preorder(self) -> Iterator[BasicBlock]:
        """Dominator-tree preorder starting at entry."""
        if not self.cfg.blocks:
            return
        stack = [self.cfg.func.entry]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children.get(node, [])))


def compute_dominance_frontiers(domtree: DominatorTree) -> Dict[BasicBlock, set]:
    """Dominance frontier of every reachable block.

    Computed by the packed-bitset ``DF_local ∪ DF_up`` kernel
    (:func:`repro.analysis.bitset.dominance_frontier_masks`) and
    materialized into the classic ``{block: set(blocks)}`` shape;
    bit-identical to the Cooper et al. two-finger walk it replaced
    (asserted in ``tests/test_bitset_kernels.py``).
    """
    from repro.analysis.bitset import dominance_frontier_masks, iter_bits

    cfg = domtree.cfg
    rpo = cfg.reverse_post_order
    masks = dominance_frontier_masks(domtree)
    return {
        block: {rpo[i] for i in iter_bits(masks[block])} for block in rpo
    }
