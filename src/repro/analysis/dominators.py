"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm"), which is near-linear in practice and straightforward
to verify. Dominance frontiers follow the same paper's two-finger method.

The region-construction algorithm (paper §4.2.1, Lemma 1) relies on the set
``S(a, b) = {x : x dom b and not (x dom a)}`` for each antidependence edge
``(a, b)``; :meth:`DominatorTree.dominators_of` supports computing it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis.cfg import CFG
from repro.ir.block import BasicBlock
from repro.ir.function import Function


class DominatorTree:
    """Immediate-dominator tree over a function's reachable blocks."""

    def __init__(self, cfg: CFG, idom: Dict[BasicBlock, Optional[BasicBlock]]) -> None:
        self.cfg = cfg
        self.idom = idom
        self._dom_masks: Optional[Dict[BasicBlock, int]] = None
        self.children: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in cfg.reachable_blocks
        }
        for block, parent in idom.items():
            if parent is not None:
                self.children[parent].append(block)
        # Depth in the dominator tree, for O(depth) dominance queries.
        self.depth: Dict[BasicBlock, int] = {}
        entry = cfg.func.entry
        self.depth[entry] = 0
        stack = [entry]
        while stack:
            node = stack.pop()
            for child in self.children[node]:
                self.depth[child] = self.depth[node] + 1
                stack.append(child)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, func: Function) -> "DominatorTree":
        return cls.compute_from_cfg(CFG(func))

    @classmethod
    def compute_from_cfg(cls, cfg: CFG) -> "DominatorTree":
        rpo = cfg.reverse_post_order
        if not rpo:
            return cls(cfg, {})
        entry = rpo[0]
        index = {block: i for i, block in enumerate(rpo)}
        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

        def intersect(a: BasicBlock, b: BasicBlock) -> BasicBlock:
            while a is not b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in rpo[1:]:
                new_idom: Optional[BasicBlock] = None
                for pred in cfg.preds(block):
                    if pred not in index:
                        continue  # unreachable predecessor
                    if pred in idom:
                        new_idom = pred if new_idom is None else intersect(pred, new_idom)
                if new_idom is None:
                    continue
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        idom[entry] = None  # by convention the entry has no idom
        return cls(cfg, idom)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_reachable(self, block: BasicBlock) -> bool:
        return block in self.idom or block is self.cfg.func.entry

    def immediate_dominator(self, block: BasicBlock) -> Optional[BasicBlock]:
        return self.idom.get(block)

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if every path from entry to ``b`` passes through ``a``.

        Reflexive: ``dominates(x, x)`` is True.
        """
        if a is b:
            return True
        if a not in self.depth or b not in self.depth:
            return False
        node: Optional[BasicBlock] = b
        while node is not None and self.depth.get(node, 0) > self.depth[a]:
            node = self.idom.get(node)
        return node is a

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def dominators_of(self, block: BasicBlock) -> Iterator[BasicBlock]:
        """All dominators of ``block``, from the block itself up to entry."""
        node: Optional[BasicBlock] = block
        while node is not None:
            yield node
            node = self.idom.get(node)

    def dominator_masks(self) -> Dict[BasicBlock, int]:
        """Per-block dominator sets as integer bitmasks over RPO indices.

        ``masks[b]`` has bit ``rpo_index(x)`` set iff ``x`` dominates
        ``b`` (reflexively).  This turns the region construction's
        ``S(a, b) = {x : x dom b ∧ ¬(x dom a)}`` set difference into a
        single ``masks[b] & ~masks[a]`` — one bignum AND-NOT instead of
        a dominator-tree walk per candidate block.  Computed lazily in
        one RPO sweep (a block's idom always precedes it in RPO, so its
        mask is available when needed).
        """
        if self._dom_masks is None:
            masks: Dict[BasicBlock, int] = {}
            for block in self.cfg.reverse_post_order:
                parent = self.idom.get(block)
                inherited = masks[parent] if parent is not None else 0
                masks[block] = inherited | (1 << self.cfg.rpo_index(block))
            self._dom_masks = masks
        return self._dom_masks

    def walk_preorder(self) -> Iterator[BasicBlock]:
        """Dominator-tree preorder starting at entry."""
        if not self.cfg.blocks:
            return
        stack = [self.cfg.func.entry]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self.children.get(node, [])))


def compute_dominance_frontiers(domtree: DominatorTree) -> Dict[BasicBlock, set]:
    """Dominance frontier of every reachable block (Cooper et al. §4)."""
    cfg = domtree.cfg
    frontiers: Dict[BasicBlock, set] = {block: set() for block in cfg.reachable_blocks}
    for block in cfg.reachable_blocks:
        preds = [p for p in cfg.preds(block) if domtree.is_reachable(p)]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner = pred
            while runner is not domtree.idom.get(block) and runner is not None:
                frontiers[runner].add(block)
                runner = domtree.idom.get(runner)
    return frontiers
