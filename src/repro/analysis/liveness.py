"""Per-block liveness of IR values (pseudoregisters).

**Inputs:** a :class:`~repro.ir.function.Function` (a fresh CFG snapshot
is taken internally).  **Outputs:** ``live_in``/``live_out`` sets of
:class:`~repro.ir.values.Value` per reachable block, plus point queries.
**Tier:** ``liveness`` lives in the *instruction* tier of the
:class:`~repro.analysis.manager.AnalysisManager` — any instruction
mutation invalidates it, not just block surgery.

A value is *live-in* at a point if it has a definition reaching that point
and a use after it. Live-in sets at region entry points are exactly the
"inputs" of the paper's idempotence definition (§2.1), and the codegen
constraint (§4.4) is phrased in terms of them: every pseudoregister live-in
to a region must also be treated as live-out.

Standard backward dataflow over the CFG, solved on the packed-bitset
kernels of :mod:`repro.analysis.bitset`: every tracked value gets a bit
index, block transfer is ``in = use | (out & ~def)`` on big-ints, and
the fixpoint sweeps blocks in reverse RPO.  φ-nodes are handled
edge-wise: a φ operand is live-out of the corresponding predecessor,
not live-in to the φ's own block.  Results are materialized back into
ordinary sets, bit-identical to the pre-rewrite per-block solver
(asserted against :mod:`repro.analysis.reference` in
``tests/test_bitset_kernels.py``).

Doctest — a value defined in entry and used past a branch is live
through the middle block:

>>> from repro.ir.parser import parse_module
>>> mod = parse_module('''
... func @f(%a: int) -> int {
... entry:
...   %x = add %a, 1
...   jmp mid
... mid:
...   jmp exit
... exit:
...   ret %x
... }
... ''')
>>> func = mod.function_by_name("f")
>>> blocks = {b.name: b for b in func.blocks}
>>> lv = Liveness(func)
>>> sorted(v.name for v in lv.live_out_at(blocks["mid"]))
['x']
>>> sorted(v.name for v in lv.live_in_at(blocks["entry"]))
['a']
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.bitset import iter_bits
from repro.analysis.cfg import CFG
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Argument, Value


def _is_tracked(value: Value) -> bool:
    """Liveness tracks SSA pseudoregisters: instructions and arguments."""
    return isinstance(value, (Instruction, Argument))


class Liveness:
    """Live-in/live-out value sets per block."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.cfg = CFG(func)
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._compute()

    def _compute(self) -> None:
        cfg = self.cfg
        blocks = cfg.reachable_blocks
        n = len(blocks)
        pos = {block: i for i, block in enumerate(blocks)}

        # Bit index per tracked value, assigned on first sight.
        value_index: Dict[Value, int] = {}
        values: List[Value] = []

        def bit_of(value: Value) -> int:
            index = value_index.get(value)
            if index is None:
                index = len(values)
                value_index[value] = index
                values.append(value)
            return index

        # Per-block upward-exposed uses and definitions as value masks
        # (φs excluded from uses; their operands count on pred edges).
        use_masks = [0] * n
        def_masks = [0] * n
        for i, block in enumerate(blocks):
            use = 0
            defs = 0
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    defs |= 1 << bit_of(inst)
                    continue
                for op in inst.operands:
                    if _is_tracked(op):
                        b = 1 << bit_of(op)
                        if not defs & b:
                            use |= b
                if inst.type.is_value_type:
                    defs |= 1 << bit_of(inst)
            use_masks[i] = use
            def_masks[i] = defs

        # Per-edge φ-operand masks, folded into the successor list so the
        # fixpoint loop is pure big-int algebra.
        succ_info: List[List[Tuple[int, int]]] = []
        for block in blocks:
            info: List[Tuple[int, int]] = []
            for succ in cfg.succs(block):
                phi_mask = 0
                for phi in succ.phis():
                    value = phi.incoming_for(block)
                    if _is_tracked(value):
                        phi_mask |= 1 << bit_of(value)
                info.append((pos[succ], phi_mask))
            succ_info.append(info)

        # Backward fixpoint in reverse RPO: in = use | (out & ~def).
        # φ results are defined at the head of succ; they are not
        # live-out of pred via live_in (they're in defs of succ).
        live_in = [0] * n
        live_out = [0] * n
        changed = True
        while changed:
            changed = False
            for i in range(n - 1, -1, -1):
                out = 0
                for j, phi_mask in succ_info[i]:
                    out |= live_in[j] | phi_mask
                new_in = use_masks[i] | (out & ~def_masks[i])
                if out != live_out[i] or new_in != live_in[i]:
                    live_out[i] = out
                    live_in[i] = new_in
                    changed = True

        for i, block in enumerate(blocks):
            self.live_in[block] = {values[k] for k in iter_bits(live_in[i])}
            self.live_out[block] = {values[k] for k in iter_bits(live_out[i])}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_in_at(self, block: BasicBlock) -> Set[Value]:
        return set(self.live_in.get(block, set()))

    def live_out_at(self, block: BasicBlock) -> Set[Value]:
        return set(self.live_out.get(block, set()))

    def live_before(self, inst: Instruction) -> Set[Value]:
        """Values live immediately before ``inst`` within its block."""
        block = inst.parent
        live = self.live_out_at(block)
        instructions = block.instructions
        for candidate in reversed(instructions):
            if candidate.type.is_value_type:
                live.discard(candidate)
            if not isinstance(candidate, Phi):
                for op in candidate.operands:
                    if _is_tracked(op):
                        live.add(op)
            if candidate is inst:
                break
        return live
