"""Per-block liveness of IR values (pseudoregisters).

A value is *live-in* at a point if it has a definition reaching that point
and a use after it. Live-in sets at region entry points are exactly the
"inputs" of the paper's idempotence definition (§2.1), and the codegen
constraint (§4.4) is phrased in terms of them: every pseudoregister live-in
to a region must also be treated as live-out.

Standard backward dataflow over the CFG. φ-nodes are handled edge-wise:
a φ operand is live-out of the corresponding predecessor, not live-in to
the φ's own block.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.analysis.cfg import CFG
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Argument, Value


def _is_tracked(value: Value) -> bool:
    """Liveness tracks SSA pseudoregisters: instructions and arguments."""
    return isinstance(value, (Instruction, Argument))


class Liveness:
    """Live-in/live-out value sets per block."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.cfg = CFG(func)
        self.live_in: Dict[BasicBlock, Set[Value]] = {}
        self.live_out: Dict[BasicBlock, Set[Value]] = {}
        self._compute()

    def _block_use_def(self, block: BasicBlock):
        """Upward-exposed uses and definitions of ``block`` (φs excluded
        from uses; their operands count on predecessor edges)."""
        uses: Set[Value] = set()
        defs: Set[Value] = set()
        for inst in block.instructions:
            if isinstance(inst, Phi):
                defs.add(inst)
                continue
            for op in inst.operands:
                if _is_tracked(op) and op not in defs:
                    uses.add(op)
            if inst.type.is_value_type:
                defs.add(inst)
        return uses, defs

    def _phi_uses_on_edge(self, pred: BasicBlock, succ: BasicBlock) -> Set[Value]:
        uses: Set[Value] = set()
        for phi in succ.phis():
            value = phi.incoming_for(pred)
            if _is_tracked(value):
                uses.add(value)
        return uses

    def _compute(self) -> None:
        blocks = self.cfg.reachable_blocks
        use_sets = {}
        def_sets = {}
        for block in blocks:
            uses, defs = self._block_use_def(block)
            use_sets[block] = uses
            def_sets[block] = defs
            self.live_in[block] = set()
            self.live_out[block] = set()

        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):  # post-order-ish for fast convergence
                out: Set[Value] = set()
                for succ in self.cfg.succs(block):
                    if succ not in self.live_in:
                        continue
                    out |= self.live_in[succ]
                    out |= self._phi_uses_on_edge(block, succ)
                    # φ results are defined at the head of succ; they are not
                    # live-out of pred via live_in (they're in defs of succ).
                new_in = use_sets[block] | (out - def_sets[block])
                if out != self.live_out[block] or new_in != self.live_in[block]:
                    self.live_out[block] = out
                    self.live_in[block] = new_in
                    changed = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_in_at(self, block: BasicBlock) -> Set[Value]:
        return set(self.live_in.get(block, set()))

    def live_out_at(self, block: BasicBlock) -> Set[Value]:
        return set(self.live_out.get(block, set()))

    def live_before(self, inst: Instruction) -> Set[Value]:
        """Values live immediately before ``inst`` within its block."""
        block = inst.parent
        live = self.live_out_at(block)
        instructions = block.instructions
        for candidate in reversed(instructions):
            if candidate.type.is_value_type:
                live.discard(candidate)
            if not isinstance(candidate, Phi):
                for op in candidate.operands:
                    if _is_tracked(op):
                        live.add(op)
            if candidate is inst:
                break
        return live
