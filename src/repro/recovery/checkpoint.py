"""Static checkpoint-set derivation for the checkpoint-and-log backend.

AutoCheck-style: a checkpointing scheme does not need to snapshot the
whole register file — only the variables that are *live* at the
checkpoint location. The idempotent construction already computes
liveness (it prices boundary placement with it), and region headers are
exactly where checkpoint-and-log would place its checkpoints: the points
an idempotent binary makes restartable for free. This module walks
:func:`repro.core.regions.boundary_live_sets` over a compiled module and
reports the minimal checkpoint contents per region boundary — the static
cost the dynamic :class:`~repro.recovery.backends.CheckpointLogInjector`
approximates with whole-register-file snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.regions import boundary_live_sets
from repro.ir.function import Function
from repro.ir.module import Module


@dataclass
class CheckpointPlan:
    """Minimal live-variable checkpoint sets for one function.

    ``sizes[i]`` is the number of live values at region header ``i`` (in
    :meth:`RegionDecomposition.headers` order) — the words a minimal
    checkpoint must save there.
    """

    function: str
    sizes: List[int] = field(default_factory=list)

    @property
    def boundaries(self) -> int:
        return len(self.sizes)

    @property
    def total_words(self) -> int:
        return sum(self.sizes)

    @property
    def mean_words(self) -> float:
        if not self.sizes:
            return 0.0
        return self.total_words / len(self.sizes)

    @property
    def max_words(self) -> int:
        return max(self.sizes) if self.sizes else 0


def checkpoint_plan(func: Function, manager=None) -> CheckpointPlan:
    """The minimal checkpoint set sizes at every region header of ``func``."""
    sets = boundary_live_sets(func, manager=manager)
    return CheckpointPlan(
        function=func.name,
        sizes=[len(values) for _header, values in sets],
    )


def module_checkpoint_plans(
    module: Module, manager=None
) -> Dict[str, CheckpointPlan]:
    """Per-function checkpoint plans for a whole compiled module."""
    return {
        name: checkpoint_plan(func, manager=manager)
        for name, func in module.functions.items()
    }


def mean_checkpoint_words(plans: Dict[str, CheckpointPlan]) -> float:
    """Mean live words per checkpoint across a module (0.0 if no boundaries)."""
    total = sum(plan.total_words for plan in plans.values())
    boundaries = sum(plan.boundaries for plan in plans.values())
    if not boundaries:
        return 0.0
    return total / boundaries
