"""The four recovery configurations compared in Fig. 12 (paper §6.3).

All schemes share instruction-level DMR *detection* (Reis et al. SWIFT
style: duplicated computation, checks before loads/stores/branches), whose
cost the simulator models with issue-slot multipliers:

- **DMR baseline** — original binary, ``alu×2`` + one check op per
  load/store/branch. Detection only; the reference everything else is
  normalized to.
- **INSTRUCTION-TMR** — original binary, ``alu×3`` + one single-cycle
  majority op per load/store/branch (Chang et al.): corrects in place.
- **CHECKPOINT-AND-LOG** — original binary + DMR costs + *real* logging
  instrumentation: before every store, load the old value and write
  (old value, address) into a 16KB wrap-around log, advancing ``lp``
  (4 ops per store, as in the paper's Fig. 11 column). Register
  checkpoints and log-overflow polling are assumed free, as the paper
  optimistically does.
- **IDEMPOTENCE** — the idempotent binary + DMR costs; its ``rcb``
  boundary markers (a ``mov`` into ``rp``) are the entire recovery
  instrumentation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.codegen.machine import (
    CLASS_INT,
    MachineFunction,
    MachineInstr,
    MachineProgram,
    preg,
)
from repro.sim.simulator import CostModel, Simulator

SCHEME_DMR = "dmr"
SCHEME_TMR = "instruction-tmr"
SCHEME_CHECKPOINT_LOG = "checkpoint-and-log"
SCHEME_IDEMPOTENCE = "idempotence"
SCHEMES = (SCHEME_DMR, SCHEME_TMR, SCHEME_CHECKPOINT_LOG, SCHEME_IDEMPOTENCE)

#: scratch register for the logging sequence — ``rp`` (r14) is idle in the
#: checkpoint-and-log scheme, which never uses restart pointers.
_LOG_SCRATCH = preg(CLASS_INT, 14)


def dmr_cost_model() -> CostModel:
    return CostModel(
        alu_issue_factor=2,
        check_ops_per_load=1,
        check_ops_per_store=1,
        check_ops_per_branch=1,
    )


def tmr_cost_model() -> CostModel:
    return CostModel(
        alu_issue_factor=3,
        check_ops_per_load=1,   # majority vote, single-cycle (§6.3)
        check_ops_per_store=1,
        check_ops_per_branch=1,
    )


def instrument_checkpoint_log(program: MachineProgram) -> MachineProgram:
    """Insert store-logging sequences into a (deep-copied) program.

    Per store: ``ld old ← [addr]; stlog old, 0; stlog addr, 1; advlp 2`` —
    the paper's load-old-value / log-value / log-address / bump-pointer
    sequence. Frame-slot stores use ``ldslot`` for the old value.
    """
    instrumented = copy.deepcopy(program)
    for mfunc in instrumented.functions.values():
        for block in mfunc.blocks:
            new_instrs: List[MachineInstr] = []
            for instr in block.instructions:
                if instr.opcode == "st":
                    addr_reg = instr.srcs[1]
                    new_instrs.append(
                        MachineInstr("ld", dst=_LOG_SCRATCH, srcs=[addr_reg])
                    )
                    new_instrs.append(
                        MachineInstr("stlog", srcs=[_LOG_SCRATCH], imm=0)
                    )
                    new_instrs.append(MachineInstr("stlog", srcs=[addr_reg], imm=1))
                    new_instrs.append(MachineInstr("advlp", imm=2))
                elif instr.opcode == "stslot":
                    new_instrs.append(
                        MachineInstr("ldslot", dst=_LOG_SCRATCH, imm=instr.imm)
                    )
                    new_instrs.append(
                        MachineInstr("stlog", srcs=[_LOG_SCRATCH], imm=0)
                    )
                    new_instrs.append(
                        MachineInstr("stlog", srcs=[_LOG_SCRATCH], imm=1)
                    )
                    new_instrs.append(MachineInstr("advlp", imm=2))
                new_instrs.append(instr)
            block.instructions = new_instrs
    return instrumented


@dataclass
class SchemeRun:
    scheme: str
    result: object
    output: List[object]
    instructions: int
    cycles: int

    def overhead_vs(self, baseline: "SchemeRun") -> float:
        return self.cycles / baseline.cycles - 1.0


def run_scheme(
    scheme: str,
    original_program: MachineProgram,
    idempotent_program: MachineProgram,
    func: str = "main",
    args: Tuple = (),
    max_instructions: int = 50_000_000,
) -> SchemeRun:
    """Execute one workload under one recovery configuration."""
    if scheme == SCHEME_DMR:
        program, cost = original_program, dmr_cost_model()
    elif scheme == SCHEME_TMR:
        program, cost = original_program, tmr_cost_model()
    elif scheme == SCHEME_CHECKPOINT_LOG:
        program, cost = instrument_checkpoint_log(original_program), dmr_cost_model()
    elif scheme == SCHEME_IDEMPOTENCE:
        program, cost = idempotent_program, dmr_cost_model()
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    sim = Simulator(program, cost_model=cost, max_instructions=max_instructions)
    result = sim.run(func, args)
    return SchemeRun(
        scheme=scheme,
        result=result,
        output=list(sim.output),
        instructions=sim.instructions,
        cycles=sim.cycles,
    )


def compare_schemes(
    original_program: MachineProgram,
    idempotent_program: MachineProgram,
    func: str = "main",
    args: Tuple = (),
) -> Dict[str, SchemeRun]:
    """Run all four configurations; results keyed by scheme name."""
    runs = {}
    for scheme in SCHEMES:
        runs[scheme] = run_scheme(
            scheme, original_program, idempotent_program, func=func, args=args
        )
    # Sanity: every scheme must compute the same answer.
    baseline = runs[SCHEME_DMR]
    for scheme, run in runs.items():
        if run.result != baseline.result or run.output != baseline.output:
            raise AssertionError(
                f"{scheme} computed {run.result!r}, DMR computed {baseline.result!r}"
            )
    return runs
