"""`repro recovery compare`: predicted vs measured outcomes per backend.

For each workload × backend the driver runs the standard fault campaign
(same spawn-key seed derivation as `repro campaign`, so the idempotent
rows here are bit-identical to campaign units at the same parameters),
profiles the campaign binary fault-free to build region features, and
holds the static predictor of :mod:`repro.recovery.predict` to the
measured per-region recovery rates. Regions whose disagreement exceeds
the threshold are flagged; ``--hunt`` searches fuzz-generated programs
for the worst program-level divergence and feeds the fuzz reducer a
minimized reproducer.

The result feeds ``BENCH_recovery.json`` (schema
``repro.recovery.bench/1``, see :mod:`repro.bench.recovery`) — overhead
and bucket totals per backend plus the predictor's mean absolute error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler import compile_minic
from repro.harness.executor import derive_seed
from repro.recovery.backends import BACKEND_NAMES, get_backend
from repro.recovery.checkpoint import mean_checkpoint_words, module_checkpoint_plans
from repro.recovery.predict import (
    OutcomePrediction,
    RegionComparison,
    compare_predictions,
    mean_absolute_error,
    predict_outcomes,
    profile_regions,
)
from repro.sim.faults import FAULT_VALUE, CampaignResult, format_rate
from repro.sim.simulator import Simulator

DEFAULT_TRIALS = 24
DEFAULT_THRESHOLD = 0.25


@dataclass
class BackendReport:
    """One workload under one backend: price, buckets, prediction."""

    backend: str
    overhead: float
    campaign: CampaignResult
    prediction: OutcomePrediction
    regions: List[RegionComparison] = field(default_factory=list)

    @property
    def measured_rate(self) -> Optional[float]:
        if not self.campaign.injected:
            return None
        return self.campaign.recovery_rate

    @property
    def mae(self) -> Optional[float]:
        return mean_absolute_error(self.regions)


@dataclass
class WorkloadReport:
    workload: str
    checkpoint_words: float  # mean live words per static checkpoint
    checkpoint_boundaries: int
    backends: List[BackendReport] = field(default_factory=list)


@dataclass
class CompareReport:
    workloads: List[WorkloadReport]
    backends: Tuple[str, ...]
    trials: int
    seed: int
    kind: str
    latency: int
    threshold: float

    def region_rows(self) -> List[Tuple[str, str, RegionComparison]]:
        return [
            (wl.workload, backend.backend, row)
            for wl in self.workloads
            for backend in wl.backends
            for row in backend.regions
        ]

    def flagged(self) -> List[Tuple[str, str, RegionComparison]]:
        return [
            (name, backend, row)
            for name, backend, row in self.region_rows()
            if row.error > self.threshold
        ]

    @property
    def mae(self) -> Optional[float]:
        return mean_absolute_error(
            [row for _name, _backend, row in self.region_rows()]
        )


def parse_backend_names(names: Optional[Sequence[str]]) -> Tuple[str, ...]:
    """Validate a backend subset; unknown names list the valid choices."""
    if not names:
        return BACKEND_NAMES
    unknown = [name for name in names if name not in BACKEND_NAMES]
    if unknown:
        raise ValueError(
            f"unknown recovery backend(s) {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(BACKEND_NAMES)})"
        )
    return tuple(names)


def compare_workload(
    name: str,
    backends: Sequence[str] = BACKEND_NAMES,
    trials: int = DEFAULT_TRIALS,
    seed: int = 12345,
    kind: str = FAULT_VALUE,
    latency: int = 0,
    use_store: bool = False,
) -> WorkloadReport:
    """Run every backend's campaign + prediction for one workload.

    With ``use_store`` the per-backend campaigns go through the
    incremental harness (:mod:`repro.harness.incremental`): previously
    stored section outcomes compose from the content-addressed outcome
    store and only missing sections inject.  Results and the per-region
    join are bit-identical to the monolithic path at equal budgets.
    """
    from repro.experiments.common import build_pair
    from repro.workloads import get_workload

    workload = get_workload(name)
    original, idempotent = build_pair(name)
    sim = Simulator(idempotent.program)
    reference = sim.run(workload.entry, ())
    reference_output = list(sim.output)

    plans = module_checkpoint_plans(idempotent.module)
    report = WorkloadReport(
        workload=name,
        checkpoint_words=mean_checkpoint_words(plans),
        checkpoint_boundaries=sum(p.boundaries for p in plans.values()),
    )
    for backend_name in backends:
        backend = get_backend(backend_name)
        program = backend.campaign_program(original.program, idempotent.program)
        profiles, _result, _sim = profile_regions(program, func=workload.entry)
        prediction = predict_outcomes(
            profiles, backend_name, latency=latency, kind=kind,
            interval=getattr(backend, "interval", 8),
        )
        per_region: Dict[str, CampaignResult] = {}
        if use_store:
            from repro.harness.incremental import incremental_campaign

            campaign = incremental_campaign(
                original.program,
                idempotent.program,
                reference,
                reference_output,
                trials=trials,
                func=workload.entry,
                kind=kind,
                seed=derive_seed(seed, name, backend.seed_key),
                detection_latency=latency,
                backend=backend,
                name=name,
                per_region=per_region,
            ).result
        else:
            campaign = backend.campaign(
                original.program,
                idempotent.program,
                reference,
                reference_output,
                trials=trials,
                func=workload.entry,
                kind=kind,
                seed=derive_seed(seed, name, backend.seed_key),
                detection_latency=latency,
                per_region=per_region,
            )
        report.backends.append(
            BackendReport(
                backend=backend_name,
                overhead=backend.overhead(original.program, idempotent.program,
                                          func=workload.entry),
                campaign=campaign,
                prediction=prediction,
                regions=compare_predictions(prediction, per_region),
            )
        )
    return report


def run_compare(
    names: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    trials: int = DEFAULT_TRIALS,
    seed: int = 12345,
    kind: str = FAULT_VALUE,
    latency: int = 0,
    threshold: float = DEFAULT_THRESHOLD,
    use_store: bool = False,
) -> CompareReport:
    """The full predicted-vs-measured sweep (default: every workload)."""
    from repro.experiments.common import resolve_workloads

    backend_names = parse_backend_names(backends)
    workloads = resolve_workloads(names)
    return CompareReport(
        workloads=[
            compare_workload(
                workload.name, backend_names, trials=trials, seed=seed,
                kind=kind, latency=latency, use_store=use_store,
            )
            for workload in workloads
        ],
        backends=backend_names,
        trials=trials,
        seed=seed,
        kind=kind,
        latency=latency,
        threshold=threshold,
    )


def format_compare_report(report: CompareReport) -> str:
    """Human-readable tables: overhead-vs-recovery, regions, verdict."""
    from repro.experiments.common import format_table

    lines = [
        "recovery zoo: predicted vs measured outcomes "
        f"(kind={report.kind}, trials={report.trials}/backend, "
        f"seed={report.seed}, latency={report.latency})",
        "",
    ]
    rows = []
    for wl in report.workloads:
        for backend in wl.backends:
            predicted = backend.prediction.p_recovered
            measured = backend.measured_rate
            rows.append([
                wl.workload,
                backend.backend,
                f"{backend.overhead:+.1%}",
                backend.campaign.injected,
                backend.campaign.recovered_correctly,
                backend.campaign.wrong_result,
                backend.campaign.crashed,
                backend.campaign.undetected,
                format_rate(backend.campaign),
                f"{predicted:.0%}",
                "n/a" if measured is None else f"{abs(predicted - measured):.2f}",
            ])
    lines.append(format_table(
        ["workload", "backend", "overhead", "injected", "recovered",
         "wrong", "crashed", "undetected", "measured", "predicted", "|err|"],
        rows,
    ))

    region_rows = report.region_rows()
    if region_rows:
        lines.append("")
        lines.append("per-region (regions that received injections):")
        lines.append(format_table(
            ["workload", "backend", "region", "injected",
             "measured", "predicted", "|err|"],
            [
                [name, backend, row.key, row.injected,
                 f"{row.measured:.0%}", f"{row.predicted:.0%}",
                 f"{row.error:.2f}"]
                for name, backend, row in region_rows
            ],
        ))

    lines.append("")
    lines.append("static checkpoint sets (idempotent build live-ins):")
    lines.append(format_table(
        ["workload", "boundaries", "mean words/checkpoint"],
        [
            [wl.workload, wl.checkpoint_boundaries, f"{wl.checkpoint_words:.1f}"]
            for wl in report.workloads
        ],
    ))

    flagged = report.flagged()
    mae = report.mae
    lines.append("")
    if mae is None:
        lines.append("predictor MAE: n/a (no injected regions)")
    else:
        lines.append(
            f"predictor MAE: {mae:.3f} over {len(region_rows)} region samples "
            f"({len(flagged)} exceeding threshold {report.threshold:.2f})"
        )
    for name, backend, row in flagged:
        lines.append(
            f"  FLAGGED {name}/{backend} {row.key}: "
            f"predicted {row.predicted:.0%} vs measured {row.measured:.0%}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Divergence hunting: fuzz programs where the predictor is most wrong
# ----------------------------------------------------------------------

def measure_divergence(
    source: str,
    backend_name: str = "idempotent",
    trials: int = 16,
    seed: int = 12345,
    kind: str = FAULT_VALUE,
    latency: int = 4,
) -> float:
    """Program-level |predicted − measured| recovery rate on one source.

    Returns 0.0 when the campaign injects nothing (no divergence
    evidence either way).
    """
    original = compile_minic(source, idempotent=False)
    idempotent = compile_minic(source, idempotent=True)
    sim = Simulator(idempotent.program)
    reference = sim.run("main", ())
    reference_output = list(sim.output)

    backend = get_backend(backend_name)
    program = backend.campaign_program(original.program, idempotent.program)
    profiles, _result, _sim = profile_regions(program)
    prediction = predict_outcomes(
        profiles, backend_name, latency=latency, kind=kind,
        interval=getattr(backend, "interval", 8),
    )
    campaign = backend.campaign(
        original.program, idempotent.program, reference, reference_output,
        trials=trials, kind=kind, seed=seed, detection_latency=latency,
    )
    if not campaign.injected:
        return 0.0
    return abs(prediction.p_recovered - campaign.recovery_rate)


@dataclass
class HuntResult:
    """Worst predictor divergence found over fuzz-generated programs."""

    programs: int
    worst_seed: Optional[int] = None
    worst_divergence: float = 0.0
    reduced_source: Optional[str] = None
    reduced_path: Optional[str] = None
    reduce_steps: int = 0


def hunt_divergence(
    count: int,
    hunt_seed: int = 0,
    backend_name: str = "idempotent",
    trials: int = 16,
    kind: str = FAULT_VALUE,
    latency: int = 4,
    threshold: float = DEFAULT_THRESHOLD,
    out_dir: Optional[str] = None,
) -> HuntResult:
    """Scan ``count`` generated programs; minimize the worst divergence.

    Programs come from the fuzz generator's seed derivation
    (``generate(trial_seed(hunt_seed, i))``), so the scan is fully
    reproducible. If the worst divergence reaches ``threshold`` the
    program is handed to the fuzz reducer with a
    divergence-at-least-threshold predicate, and the minimized source is
    written to ``out_dir`` with a provenance header.
    """
    import os

    from repro.fuzz.generator import generate, render, trial_seed
    from repro.fuzz.reduce import reduce_spec

    result = HuntResult(programs=count)
    worst_program = None
    for index in range(count):
        program = generate(trial_seed(hunt_seed, index))
        divergence = measure_divergence(
            program.source, backend_name, trials=trials,
            kind=kind, latency=latency,
        )
        if worst_program is None or divergence > result.worst_divergence:
            result.worst_divergence = divergence
            result.worst_seed = program.seed
            worst_program = program

    if worst_program is None or result.worst_divergence < threshold:
        return result

    def predicate(source: str) -> bool:
        return measure_divergence(
            source, backend_name, trials=trials, kind=kind, latency=latency,
        ) >= threshold

    reduced = reduce_spec(worst_program.spec, predicate)
    result.reduced_source = reduced.source
    result.reduce_steps = reduced.steps
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(
            out_dir, f"divergence-{backend_name}-s{result.worst_seed}.c"
        )
        header = (
            f"// predictor divergence reproducer (backend={backend_name})\n"
            f"// hunt_seed={hunt_seed} gen_seed={result.worst_seed} "
            f"trials={trials} kind={kind} latency={latency}\n"
            f"// divergence={result.worst_divergence:.3f} "
            f"threshold={threshold:.2f} reduce_steps={reduced.steps}\n"
        )
        with open(path, "w") as handle:
            handle.write(header + reduced.source)
        result.reduced_path = path
    return result


def bench_payload(
    report: CompareReport,
    label: str = "recovery",
    version: str = "",
) -> dict:
    """Assemble the ``repro.recovery.bench/1`` payload for a report."""
    from repro.bench.recovery import recovery_bench_payload

    backends = []
    for backend_name in report.backends:
        total = CampaignResult()
        overheads: List[float] = []
        predicted: List[float] = []
        maes: List[float] = []
        for wl in report.workloads:
            for row in wl.backends:
                if row.backend != backend_name:
                    continue
                total.merge(row.campaign)
                overheads.append(row.overhead)
                predicted.append(row.prediction.p_recovered)
                if row.mae is not None:
                    maes.append(row.mae)
        geomean = (
            math.exp(sum(math.log1p(o) for o in overheads) / len(overheads)) - 1.0
            if overheads else 0.0
        )
        backends.append({
            "name": backend_name,
            "overhead": geomean,
            "trials": total.trials,
            "injected": total.injected,
            "recovered": total.recovered_correctly,
            "wrong": total.wrong_result,
            "crashed": total.crashed,
            "undetected": total.undetected,
            "measured_rate": (
                None if not total.injected else total.recovery_rate
            ),
            "predicted_rate": (
                sum(predicted) / len(predicted) if predicted else 0.0
            ),
            "mae": sum(maes) / len(maes) if maes else None,
        })
    region_rows = report.region_rows()
    return recovery_bench_payload(
        label=label,
        version=version,
        seed=report.seed,
        trials=report.trials,
        latency=report.latency,
        kind=report.kind,
        threshold=report.threshold,
        workloads=[wl.workload for wl in report.workloads],
        backends=backends,
        predictor={
            "mae": report.mae,
            "regions": len(region_rows),
            "flagged": len(report.flagged()),
            "threshold": report.threshold,
        },
    )
