"""Static per-region fault-outcome prediction (predicted vs measured).

The paper's §6.2 observation — "longer path lengths allow execution to
proceed speculatively for longer ... while potential execution failures
remain undetected" — is a *predictable* hazard: a fault injected in a
region is unrecoverable by the idempotence scheme exactly when a region
boundary slips past during the detection-latency window, because ``rp``
then advances over the corrupt state. The probability of that slip is
(to first order) the latency over the region's dynamic path length.

This module builds the per-region features (a cheap fault-free profiling
run keyed by the same ``rp``-derived region keys the injectors use for
attribution) and turns them into per-region outcome probabilities for
each backend:

- ``idempotent``: hazard window = the region's mean dynamic length;
  ``p(wrong) ≈ min(1, latency / length)``.
- ``checkpoint_log``: same hazard, but the window is the checkpoint
  spacing (``interval`` check points) rather than the region length.
- ``tmr``: the vote corrects in place; ``p(wrong) ≈ 0``.

All backends share the tail hazard: a fault injected within ``latency``
of program end is never detected (``undetected`` bucket). The model is
deliberately coarse — its purpose is to be *checked* against measured
campaign rates (``repro recovery compare``), with regions whose
disagreement exceeds a threshold flagged as predictor defects worth a
minimized reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codegen.machine import MachineInstr, MachineProgram
from repro.sim.faults import CampaignResult, region_key
from repro.sim.simulator import Simulator


@dataclass
class RegionProfile:
    """Dynamic shape of one region, from a fault-free profiling run."""

    key: str
    entries: int = 0       # dynamic executions of the region
    instructions: int = 0  # dynamic instructions attributed to it
    eligible: int = 0      # value-fault-eligible instructions (dst, non-memory)
    branches: int = 0      # control-fault-eligible instructions (bnz)
    checks: int = 0        # dynamic check points (detection opportunities)
    stores: int = 0        # memory writes (st/stslot)

    @property
    def mean_length(self) -> float:
        """Mean dynamic instructions per execution of the region."""
        if not self.entries:
            return 0.0
        return self.instructions / self.entries

    @property
    def mean_check_gap(self) -> float:
        """Mean dynamic instructions between check points in the region."""
        if not self.checks:
            return float(self.instructions or 1)
        return self.instructions / self.checks


def profile_regions(
    program: MachineProgram,
    func: str = "main",
    args: Tuple = (),
    max_instructions: int = 50_000_000,
) -> Tuple[Dict[str, RegionProfile], object, Simulator]:
    """One fault-free run collecting per-region dynamic features.

    Regions are keyed by :func:`repro.sim.faults.region_key` — the
    restart pointer active at each instruction — so profile keys line up
    exactly with the ``region`` attribution on campaign outcomes.
    Returns ``(profiles, result, sim)``.
    """
    sim = Simulator(program, max_instructions=max_instructions)
    profiles: Dict[str, RegionProfile] = {}
    current = [None]

    def pre(s: Simulator, instr: MachineInstr) -> None:
        key = region_key(s)
        profile = profiles.get(key)
        if profile is None:
            profile = profiles[key] = RegionProfile(key=key)
        if key != current[0]:
            profile.entries += 1
            current[0] = key
        profile.instructions += 1
        if instr.dst is not None and not instr.is_memory:
            profile.eligible += 1
        if instr.opcode == "bnz":
            profile.branches += 1
        if instr.opcode in Simulator.CHECK_POINTS:
            profile.checks += 1
        if instr.opcode in ("st", "stslot"):
            profile.stores += 1

    sim.pre_hook = pre
    result = sim.run(func, args)
    return profiles, result, sim


@dataclass
class RegionPrediction:
    """Predicted outcome distribution for faults landing in one region."""

    key: str
    weight: float        # share of the program's fault targets
    p_recovered: float
    p_wrong: float
    p_undetected: float


@dataclass
class OutcomePrediction:
    """Program-level prediction: weighted mix of the per-region models."""

    backend: str
    latency: int
    regions: Dict[str, RegionPrediction] = field(default_factory=dict)
    p_recovered: float = 0.0
    p_wrong: float = 0.0
    p_undetected: float = 0.0


def _slip_probability(latency: int, window: float) -> float:
    """P(the hazard window ends within ``latency`` of the fault)."""
    if latency <= 0:
        return 0.0
    if window <= 0:
        return 1.0
    return min(1.0, latency / window)


def predict_outcomes(
    profiles: Dict[str, RegionProfile],
    backend: str,
    latency: int = 0,
    kind: str = "value",
    interval: int = 8,
) -> OutcomePrediction:
    """Static outcome probabilities per region and program-wide.

    ``interval`` is the checkpoint spacing (in check points) of the
    checkpoint-and-log backend; ignored for the others.
    """
    total_instructions = sum(p.instructions for p in profiles.values())
    weight_attr = "eligible" if kind == "value" else "branches"
    total_targets = sum(getattr(p, weight_attr) for p in profiles.values())

    # Tail hazard (all backends): a fault within `latency` of program end
    # reaches no further check point, so detection never fires.
    p_tail = _slip_probability(latency, float(total_instructions))

    prediction = OutcomePrediction(backend=backend, latency=latency)
    for key, profile in profiles.items():
        targets = getattr(profile, weight_attr)
        weight = targets / total_targets if total_targets else 0.0
        if backend == "tmr":
            p_wrong = 0.0
        elif backend == "checkpoint_log":
            window = interval * profile.mean_check_gap
            p_wrong = _slip_probability(latency, window)
        else:  # idempotent: boundary slip within the region
            p_wrong = _slip_probability(latency, profile.mean_length)
        p_wrong *= 1.0 - p_tail
        prediction.regions[key] = RegionPrediction(
            key=key,
            weight=weight,
            p_recovered=max(0.0, 1.0 - p_wrong - p_tail),
            p_wrong=p_wrong,
            p_undetected=p_tail,
        )

    prediction.p_wrong = sum(
        r.weight * r.p_wrong for r in prediction.regions.values()
    )
    prediction.p_undetected = p_tail
    prediction.p_recovered = max(
        0.0, 1.0 - prediction.p_wrong - prediction.p_undetected
    )
    return prediction


def measured_region_results(
    records: Sequence[dict],
    indices_by_region: Optional[Dict[str, Set[int]]] = None,
) -> Dict[str, CampaignResult]:
    """Fold outcome-store section records into per-region measured buckets.

    ``records`` are :data:`repro.harness.incremental.STORE_SCHEMA` section
    records; each trial row is ``[index, bucket, detected, detect_gap]``.
    ``indices_by_region`` (region key -> allowed trial indices) restricts
    the fold to the trials a specific campaign budget needs — a record
    accumulated at a larger budget composes down to exactly the requested
    one, which is what keeps composed campaigns bit-identical to
    monolithic ones.  The result joins directly against
    :func:`compare_predictions`.
    """
    regions: Dict[str, CampaignResult] = {}
    for record in records:
        region = str(record.get("region", "?"))
        allowed: Optional[Set[int]] = None
        if indices_by_region is not None:
            allowed = indices_by_region.get(region, set())
        sub = regions.setdefault(region, CampaignResult())
        for row in record.get("trials", []):
            index, bucket, detected = int(row[0]), str(row[1]), row[2]
            if allowed is not None and index not in allowed:
                continue
            sub.trials += 1
            sub.injected += 1
            if detected:
                sub.detected += 1
            setattr(sub, bucket, getattr(sub, bucket) + 1)
    return regions


@dataclass
class RegionComparison:
    """Predicted vs measured recovery rate for one region."""

    key: str
    injected: int
    predicted: float
    measured: float

    @property
    def error(self) -> float:
        return abs(self.predicted - self.measured)


def compare_predictions(
    prediction: OutcomePrediction,
    per_region: Dict[str, CampaignResult],
) -> List[RegionComparison]:
    """Join predictions with measured per-region campaign buckets.

    Only regions that actually received injections are comparable; a
    measured region missing from the profile (possible only for the
    pre-``rp`` window ``"?"``) is compared against the program-level
    prediction.
    """
    rows: List[RegionComparison] = []
    for key, measured in sorted(per_region.items()):
        if not measured.injected:
            continue
        region = prediction.regions.get(key)
        predicted = region.p_recovered if region else prediction.p_recovered
        rows.append(
            RegionComparison(
                key=key,
                injected=measured.injected,
                predicted=predicted,
                measured=measured.recovered_correctly / measured.injected,
            )
        )
    return rows


def mean_absolute_error(rows: List[RegionComparison]) -> Optional[float]:
    """Unweighted MAE over comparable regions; ``None`` with no data."""
    if not rows:
        return None
    return sum(row.error for row in rows) / len(rows)
