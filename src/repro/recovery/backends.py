"""Pluggable recovery backends: the Fig. 12 schemes as fault-campaign drivers.

:mod:`repro.recovery.schemes` prices the paper's recovery schemes (their
*fault-free* dynamic cost); this module makes each of them a
:class:`RecoveryBackend` that can actually *drive* a fault campaign, so
overhead and recovery behaviour come from the same pluggable layer:

- ``idempotent`` — the paper's scheme, exactly as
  :class:`repro.sim.faults.FaultInjector` has always run it: discard the
  store buffer and jump to the restart pointer. Campaign results are
  bit-identical to the pre-zoo code path (same program, same seeds, same
  injector).
- ``tmr`` — instruction-level triple-modular redundancy. Three copies of
  every operation vote at each check point; a single-fault model means
  the corrupted lane is always outvoted, so architectural state is never
  corrupted and "recovery" is a zero-cost in-place correction. Highest
  dynamic overhead, best recovery.
- ``checkpoint_log`` — checkpoint-and-log in the AutoCheck mould:
  periodic register-file checkpoints plus an undo log of committed
  stores; detection restores the last checkpoint and rolls the log back.
  The statically derived checkpoint contents come from
  :mod:`repro.recovery.checkpoint` (live sets at region boundaries).

All three report the common :class:`RecoveryOutcome` (an alias of
:class:`repro.sim.faults.FaultOutcome` — recovered / detected /
undetected / crashed plus region attribution), reuse the campaign
bucket arithmetic of :func:`repro.sim.faults.fault_campaign`, and price
their fault-free overhead through :func:`repro.recovery.schemes.run_scheme`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.codegen.machine import MachineInstr, MachineProgram
from repro.recovery.schemes import (
    SCHEME_CHECKPOINT_LOG,
    SCHEME_DMR,
    SCHEME_IDEMPOTENCE,
    SCHEME_TMR,
    instrument_checkpoint_log,
    run_scheme,
)
from repro.sim.faults import (
    FAULT_CONTROL,
    FAULT_VALUE,
    CampaignResult,
    FaultInjector,
    FaultOutcome,
    FaultPlan,
    fault_campaign,
    region_key,
)
from repro.sim.simulator import Simulator

#: The common outcome record every backend reports per trial.
RecoveryOutcome = FaultOutcome

#: Sentinel for "address was unmapped before this store" in the undo log.
_UNMAPPED = object()


class TMRInjector:
    """Instruction-level TMR under a single-fault model.

    The fault corrupts one of three redundant lanes; the majority vote at
    the next check point both detects it and supplies the correct value,
    so architectural state is never corrupted and no re-execution is
    charged (``recovery_instructions`` stays 0). The only way TMR loses
    a fault is the same way DMR does: detection latency outlives the
    program (``undetected`` bucket — result still correct, since the
    voted value was).

    Injection eligibility mirrors :class:`FaultInjector` exactly (same
    target arithmetic, same eligible opcodes), so a TMR campaign faces
    the identical fault set as an idempotence campaign over the same
    program.
    """

    def __init__(self, sim: Simulator, plan: FaultPlan, recover: bool = True) -> None:
        self.sim = sim
        self.plan = plan
        self.recover = recover
        self.outcome = FaultOutcome()
        self._pending = False
        self._armed = True
        self._injected_at = 0
        sim.pre_hook = self._pre
        sim.post_hook = self._post

    def _pre(self, sim: Simulator, instr: MachineInstr) -> None:
        if (
            self._pending
            and instr.opcode in Simulator.CHECK_POINTS
            and sim.instructions - self._injected_at >= self.plan.detection_latency
        ):
            self._pending = False
            self.outcome.detected = True
            self.outcome.detect_gap = sim.instructions - self._injected_at
            if self.recover:
                # Majority vote corrects in place: no rollback, no
                # re-execution, nothing to restore.
                self.outcome.recovered = True
            return
        if (
            self._armed
            and self.plan.kind == FAULT_CONTROL
            and sim.instructions + 1 >= self.plan.target_instruction
            and instr.opcode == "bnz"
        ):
            # One lane mispredicts the branch condition; the other two
            # outvote it, so the branch resolves correctly — record the
            # injection without perturbing state.
            self._mark(sim)

    def _post(self, sim: Simulator, instr: MachineInstr, loc) -> None:
        if (
            self._armed
            and self.plan.kind == FAULT_VALUE
            and sim.instructions >= self.plan.target_instruction
            and instr.dst is not None
            and not instr.is_memory
        ):
            self._mark(sim)

    def _mark(self, sim: Simulator) -> None:
        self._armed = False
        self.outcome.injected = True
        self.outcome.region = region_key(sim)
        self._injected_at = sim.instructions
        self._pending = True


class CheckpointLogInjector:
    """Checkpoint-and-log recovery over the store-instrumented binary.

    State capture is the scheme's defining move: every ``interval``-th
    check point (and at every call-depth change, where the frame stack
    is in flux) the injector snapshots the register files and location;
    between checkpoints it keeps an undo log of committed stores — the
    dynamic realisation of the statically derived live-set checkpoints
    of :mod:`repro.recovery.checkpoint`. Detection restores the snapshot
    and unwinds the log in reverse.

    A fresh checkpoint is also forced after every ``callb``: externally
    visible effects (``print`` output, ``malloc``'s heap bump) cannot be
    replayed, so the scheme never rolls back across them — exactly the
    constraint that forces idempotent region boundaries at the same
    points.

    The failure mode under detection latency is structural, not tuned:
    a checkpoint taken while a fault is still latent snapshots corrupt
    registers, and restoring it re-executes from corrupt state — the
    checkpoint-spacing analogue of idempotence's rp-slip hazard.
    """

    DEFAULT_INTERVAL = 8

    def __init__(
        self,
        sim: Simulator,
        plan: FaultPlan,
        recover: bool = True,
        interval: int = DEFAULT_INTERVAL,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.recover = recover
        self.interval = interval
        self.outcome = FaultOutcome()
        self.checkpoints_taken = 0
        self._pending = False
        self._armed = True
        self._injected_at = 0
        self._ckpt: Optional[Tuple] = None
        self._undo: List[Tuple[int, object]] = []
        self._since = 0
        sim.pre_hook = self._pre
        sim.post_hook = self._post

    # ------------------------------------------------------------------
    # Checkpoint machinery
    # ------------------------------------------------------------------
    def _take(self, sim: Simulator) -> None:
        self._ckpt = (
            len(sim.frames),
            list(sim.int_regs),
            list(sim.float_regs),
            sim.loc.copy(),
        )
        self._undo = []
        self._since = 0
        self.checkpoints_taken += 1

    def _restore(self, sim: Simulator) -> None:
        depth, int_regs, float_regs, loc = self._ckpt
        # Depth equality is structural: every call-depth change takes a
        # fresh checkpoint, so detection always happens in the frame the
        # checkpoint was taken in. The loop is defensive only.
        while len(sim.frames) > depth:
            dead = sim.frames.pop()
            sim.memory.free_stack(dead.base)
        sim.discard_store_buffer()
        for addr, old in reversed(self._undo):
            if old is _UNMAPPED:
                sim.memory.cells.pop(addr, None)
            else:
                sim.memory.cells[addr] = old
        self._undo = []
        sim.int_regs[:] = int_regs
        sim.float_regs[:] = float_regs
        sim.loc = loc.copy()

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _pre(self, sim: Simulator, instr: MachineInstr) -> None:
        if sim.frames and (self._ckpt is None or len(sim.frames) != self._ckpt[0]):
            self._take(sim)
        if instr.opcode in Simulator.CHECK_POINTS:
            if (
                self._pending
                and sim.instructions - self._injected_at >= self.plan.detection_latency
            ):
                self.outcome.detected = True
                self.outcome.detect_gap = sim.instructions - self._injected_at
                self._pending = False
                if self.recover:
                    mark = sim.instructions
                    self._restore(sim)
                    sim.redirect()
                    self.outcome.recovered = True
                    self.outcome.recovery_instructions = mark
                return
            self._since += 1
            if self._since >= self.interval:
                self._take(sim)
            # The buffered stores commit when this check point executes;
            # log their pre-images so a later restore can unwind them.
            for addr, _value in sim.store_buffer:
                try:
                    old = sim.memory.peek(addr)
                except KeyError:
                    old = _UNMAPPED
                self._undo.append((addr, old))
        if (
            self._armed
            and self.plan.kind == FAULT_CONTROL
            and sim.instructions + 1 >= self.plan.target_instruction
            and instr.opcode == "bnz"
        ):
            cond = instr.srcs[0]
            value = sim.get_reg(cond)
            sim.set_reg(cond, 0 if value else 1)
            self._armed = False
            self.outcome.injected = True
            self.outcome.region = region_key(sim)
            self._injected_at = sim.instructions
            self._pending = True

    def _post(self, sim: Simulator, instr: MachineInstr, loc) -> None:
        if (
            self._armed
            and self.plan.kind == FAULT_VALUE
            and sim.instructions >= self.plan.target_instruction
            and instr.dst is not None
            and not instr.is_memory
        ):
            value = sim.get_reg(instr.dst)
            if isinstance(value, float):
                corrupted = -(value + 1.0)
            else:
                corrupted = value ^ self.plan.flip_mask
            sim.set_reg(instr.dst, corrupted)
            self._armed = False
            self.outcome.injected = True
            self.outcome.region = region_key(sim)
            self._injected_at = sim.instructions
            self._pending = True
        if instr.opcode == "callb":
            # I/O and allocation are not replayable; never allow a
            # restore to cross them.
            self._take(sim)


class RecoveryBackend:
    """One recovery strategy: a program to run, an injector, a price.

    Subclasses define which binary executes under fault injection
    (:meth:`campaign_program`) and which injector drives detection and
    recovery (:meth:`make_injector`); the shared :meth:`campaign` /
    :meth:`overhead` machinery then reports the common
    :class:`RecoveryOutcome` buckets and the scheme's fault-free dynamic
    overhead against the DMR baseline.
    """

    #: registry key (``--backends``, serve ``scheme``, bench rows)
    name: str = ""
    #: scheme constant used to price fault-free overhead
    scheme: str = ""
    #: which build the campaign executes (for reports/manifests)
    flavour: str = "original"
    #: spawn-key component for per-workload campaign seeds. The
    #: idempotent backend reuses the legacy flavour key so zoo campaigns
    #: are bit-identical to pre-zoo ``flavour="idempotent"`` units.
    seed_key: str = ""

    def campaign_program(
        self,
        original_program: MachineProgram,
        idempotent_program: MachineProgram,
    ) -> MachineProgram:
        raise NotImplementedError

    def make_injector(self, sim: Simulator, plan: FaultPlan, recover: bool = True):
        raise NotImplementedError

    def campaign(
        self,
        original_program: MachineProgram,
        idempotent_program: MachineProgram,
        reference_result: object,
        reference_output: List[object],
        trials: int = 50,
        func: str = "main",
        args: Tuple = (),
        kind: str = FAULT_VALUE,
        seed: int = 12345,
        recover: bool = True,
        detection_latency: int = 0,
        start_trial: int = 0,
        per_region: Optional[Dict[str, CampaignResult]] = None,
    ) -> CampaignResult:
        """Run a standard fault campaign under this backend's scheme."""
        program = self.campaign_program(original_program, idempotent_program)
        return fault_campaign(
            program,
            reference_result,
            reference_output,
            trials=trials,
            func=func,
            args=args,
            kind=kind,
            seed=seed,
            recover=recover,
            detection_latency=detection_latency,
            start_trial=start_trial,
            injector_factory=self.make_injector,
            per_region=per_region,
        )

    def run_trial(
        self,
        program: MachineProgram,
        seed: int,
        index: int,
        span: int,
        func: str = "main",
        args: Tuple = (),
        kind: str = FAULT_VALUE,
        detection_latency: int = 0,
        recover: bool = True,
    ) -> FaultOutcome:
        """One campaign trial under this backend's injector.

        ``program`` must be this backend's :meth:`campaign_program` —
        computed once per campaign so per-section drivers do not
        re-instrument it per trial.  Outcomes are bit-identical to the
        corresponding trial of :meth:`campaign` at the same
        ``(seed, index, span)``, which is what lets the incremental
        harness (:mod:`repro.harness.incremental`) campaign all backends
        per-section through one interface.
        """
        from repro.sim.faults import run_planned_trial

        return run_planned_trial(
            program, seed, index, span, func=func, args=args, kind=kind,
            detection_latency=detection_latency, recover=recover,
            injector_factory=self.make_injector,
        )

    def overhead(
        self,
        original_program: MachineProgram,
        idempotent_program: MachineProgram,
        func: str = "main",
        args: Tuple = (),
    ) -> float:
        """Fault-free dynamic overhead vs the DMR baseline (Fig. 12)."""
        baseline = run_scheme(
            SCHEME_DMR, original_program, idempotent_program, func=func, args=args
        )
        run = run_scheme(
            self.scheme, original_program, idempotent_program, func=func, args=args
        )
        return run.overhead_vs(baseline)


class IdempotentBackend(RecoveryBackend):
    """The paper's scheme, verbatim: rp recovery on the idempotent binary."""

    name = "idempotent"
    scheme = SCHEME_IDEMPOTENCE
    flavour = "idempotent"
    seed_key = "idempotent"

    def campaign_program(self, original_program, idempotent_program):
        return idempotent_program

    def make_injector(self, sim, plan, recover=True):
        return FaultInjector(sim, plan, recover=recover)


class TMRBackend(RecoveryBackend):
    """Instruction-level TMR on the original binary."""

    name = "tmr"
    scheme = SCHEME_TMR
    flavour = "original"
    seed_key = "tmr"

    def campaign_program(self, original_program, idempotent_program):
        return original_program

    def make_injector(self, sim, plan, recover=True):
        return TMRInjector(sim, plan, recover=recover)


class CheckpointLogBackend(RecoveryBackend):
    """Checkpoint-and-log on the store-instrumented original binary."""

    name = "checkpoint_log"
    scheme = SCHEME_CHECKPOINT_LOG
    flavour = "original"
    seed_key = "checkpoint_log"

    def __init__(self, interval: int = CheckpointLogInjector.DEFAULT_INTERVAL) -> None:
        self.interval = interval

    def campaign_program(self, original_program, idempotent_program):
        return instrument_checkpoint_log(original_program)

    def make_injector(self, sim, plan, recover=True):
        return CheckpointLogInjector(
            sim, plan, recover=recover, interval=self.interval
        )


#: Registry order is report order: cheapest scheme first.
BACKEND_TYPES = (IdempotentBackend, CheckpointLogBackend, TMRBackend)
BACKEND_NAMES = tuple(cls.name for cls in BACKEND_TYPES)


def get_backend(name: str) -> RecoveryBackend:
    """Instantiate the named backend; unknown names list the valid set."""
    for cls in BACKEND_TYPES:
        if cls.name == name:
            return cls()
    raise ValueError(
        f"unknown recovery backend {name!r} "
        f"(valid: {', '.join(BACKEND_NAMES)})"
    )
