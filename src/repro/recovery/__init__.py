"""repro.recovery — fault recovery schemes (paper §6.3, Fig. 11/12).

Two layers:

- :mod:`repro.recovery.schemes` prices each scheme's fault-free dynamic
  cost (the Fig. 12 overhead comparison);
- :mod:`repro.recovery.backends` makes each scheme a pluggable
  :class:`RecoveryBackend` that drives real fault campaigns, with
  :mod:`repro.recovery.checkpoint` deriving minimal static checkpoint
  sets, :mod:`repro.recovery.predict` estimating per-region outcome
  probabilities, and :mod:`repro.recovery.compare` holding predictions
  to measured campaign rates (``repro recovery compare``).
"""

from repro.recovery.backends import (
    BACKEND_NAMES,
    CheckpointLogBackend,
    CheckpointLogInjector,
    IdempotentBackend,
    RecoveryBackend,
    RecoveryOutcome,
    TMRBackend,
    TMRInjector,
    get_backend,
)
from repro.recovery.checkpoint import (
    CheckpointPlan,
    checkpoint_plan,
    mean_checkpoint_words,
    module_checkpoint_plans,
)
from repro.recovery.compare import (
    CompareReport,
    format_compare_report,
    hunt_divergence,
    measure_divergence,
    parse_backend_names,
    run_compare,
)
from repro.recovery.predict import (
    OutcomePrediction,
    RegionComparison,
    RegionPrediction,
    RegionProfile,
    compare_predictions,
    mean_absolute_error,
    predict_outcomes,
    profile_regions,
)
from repro.recovery.schemes import (
    SCHEME_CHECKPOINT_LOG,
    SCHEME_DMR,
    SCHEME_IDEMPOTENCE,
    SCHEME_TMR,
    SCHEMES,
    SchemeRun,
    compare_schemes,
    dmr_cost_model,
    instrument_checkpoint_log,
    run_scheme,
    tmr_cost_model,
)

__all__ = [
    "BACKEND_NAMES",
    "SCHEMES",
    "SCHEME_CHECKPOINT_LOG",
    "SCHEME_DMR",
    "SCHEME_IDEMPOTENCE",
    "SCHEME_TMR",
    "CheckpointLogBackend",
    "CheckpointLogInjector",
    "CheckpointPlan",
    "CompareReport",
    "IdempotentBackend",
    "OutcomePrediction",
    "RecoveryBackend",
    "RecoveryOutcome",
    "RegionComparison",
    "RegionPrediction",
    "RegionProfile",
    "SchemeRun",
    "TMRBackend",
    "TMRInjector",
    "checkpoint_plan",
    "compare_predictions",
    "compare_schemes",
    "dmr_cost_model",
    "format_compare_report",
    "get_backend",
    "hunt_divergence",
    "instrument_checkpoint_log",
    "mean_absolute_error",
    "mean_checkpoint_words",
    "measure_divergence",
    "module_checkpoint_plans",
    "parse_backend_names",
    "predict_outcomes",
    "profile_regions",
    "run_compare",
    "run_scheme",
    "tmr_cost_model",
]
