"""repro.recovery — fault recovery schemes (paper §6.3, Fig. 11/12)."""

from repro.recovery.schemes import (
    SCHEME_CHECKPOINT_LOG,
    SCHEME_DMR,
    SCHEME_IDEMPOTENCE,
    SCHEME_TMR,
    SCHEMES,
    SchemeRun,
    compare_schemes,
    dmr_cost_model,
    instrument_checkpoint_log,
    run_scheme,
    tmr_cost_model,
)

__all__ = [
    "SCHEMES",
    "SCHEME_CHECKPOINT_LOG",
    "SCHEME_DMR",
    "SCHEME_IDEMPOTENCE",
    "SCHEME_TMR",
    "SchemeRun",
    "compare_schemes",
    "dmr_cost_model",
    "instrument_checkpoint_log",
    "run_scheme",
    "tmr_cost_model",
]
