"""Dynamic idempotent path tracing on constructed binaries (Figs. 8, 9).

A *path* is the dynamic instruction sequence between consecutive restart
points — ``rcb`` markers, calls, builtin calls, returns, and function
entry. Its length distribution, weighted by execution time, is the
paper's Fig. 8; its average compared against the limit study's
``semantic_calls`` ideal is Fig. 9.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.codegen.machine import MachineInstr, MachineProgram
from repro.sim.limit_study import PathStats
from repro.sim.simulator import Simulator

_BOUNDARY_OPS = frozenset(["rcb", "call", "callb", "ret"])


def trace_paths(
    program: MachineProgram,
    func: str = "main",
    args: Tuple = (),
    max_instructions: int = 20_000_000,
) -> PathStats:
    """Run ``func`` and histogram dynamic path lengths between boundaries.

    Boundary instructions themselves are not counted toward path lengths,
    so the statistic matches the paper's "instructions executed through a
    region" notion rather than our marker overhead.
    """
    sim = Simulator(program, max_instructions=max_instructions)
    stats = PathStats()
    state = {"length": 0}

    def hook(sim_: Simulator, instr: MachineInstr) -> None:
        if instr.opcode in _BOUNDARY_OPS:
            stats.record(state["length"])
            state["length"] = 0
        else:
            state["length"] += 1

    sim.pre_hook = hook
    sim.run(func, args)
    stats.record(state["length"])
    return stats


def region_size_summary(stats: PathStats) -> Dict[str, float]:
    """Headline numbers for reports: count, average, p50/p90 by time."""
    cdf = stats.weighted_cdf()

    def percentile(target: float) -> float:
        for length, fraction in cdf:
            if fraction >= target:
                return float(length)
        return float(cdf[-1][0]) if cdf else 0.0

    return {
        "paths": float(stats.count),
        "average": stats.average,
        "p50_time_weighted": percentile(0.5),
        "p90_time_weighted": percentile(0.9),
    }
