"""Machine simulator: functional execution + two-issue timing model.

Stands in for the paper's gem5/ARMv7 setup (§6.1). Key behaviours:

- **Store buffer** (§2.3): stores sit in a small buffer until the next
  DMR *check point* (any load, store, branch, call, return, or ``rcb``),
  where they are verified and committed. Loads snoop the buffer. Fault
  detection fires at a check point *before* its commit, so unverified
  stores are discarded on recovery — but stores committed earlier in the
  region stay, which is exactly why the construction must cut memory
  antidependences for re-execution to be safe.
- **Restart pointer** ``rp``: every ``rcb`` records the location just
  after itself; call, builtin-call, and return act as implicit boundaries
  (the paper's intra-procedural regions are split at call boundaries, and
  non-idempotent operations like I/O and allocation are their own
  single-instruction regions, §2.3).
- **Timing**: in-order two-issue with a scoreboard of register-ready
  times, one memory port, and one taken branch per cycle; per-op latencies
  from :data:`repro.codegen.machine.DEFAULT_LATENCY`. Detection-scheme
  costs (DMR/TMR duplication, check ops) are modeled with issue-slot
  multipliers configured by :class:`CostModel`.
- **Fault injection** hooks: corrupt the destination of a chosen dynamic
  instruction; detection fires at the next DMR check point (load, store,
  branch, call, or boundary), whereupon the configured recovery action
  runs. See :mod:`repro.sim.faults`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.codegen.machine import (
    CLASS_FLOAT,
    CLASS_INT,
    DEFAULT_LATENCY,
    MachineFunction,
    MachineInstr,
    MachineProgram,
    Reg,
)
from repro.interp.interpreter import _int_div, _int_rem, wrap64
from repro.interp.memory import Memory


class SimulationError(RuntimeError):
    pass


class SimLimitExceeded(SimulationError):
    pass


@dataclass
class CostModel:
    """Issue-cost parameters for detection/recovery schemes.

    ``alu_issue_factor`` models instruction-level redundancy: 2 for DMR
    (every non-memory op has a shadow copy), 3 for TMR. ``check_ops_*``
    model the comparison/majority ops inserted before memory and control
    instructions by the detection scheme.

    ``l1_lines > 0`` enables a direct-mapped L1 data cache model (16-word
    lines): load hits cost the base ``ld`` latency, misses cost
    ``l1_miss_latency``. The default (0) is a perfect L1, which is what
    the recorded experiments use.
    """

    alu_issue_factor: int = 1
    check_ops_per_load: int = 0
    check_ops_per_store: int = 0
    check_ops_per_branch: int = 0
    l1_lines: int = 0
    l1_miss_latency: int = 20
    latency: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LATENCY))


@dataclass
class Location:
    func: str
    block: int
    index: int

    def copy(self) -> "Location":
        return Location(self.func, self.block, self.index)


class _Frame:
    __slots__ = ("func", "base", "return_loc")

    def __init__(self, func: MachineFunction, base: int, return_loc: Optional[Location]) -> None:
        self.func = func
        self.base = base
        self.return_loc = return_loc


class Simulator:
    """Executes a :class:`MachineProgram`."""

    def __init__(
        self,
        program: MachineProgram,
        cost_model: Optional[CostModel] = None,
        max_instructions: int = 100_000_000,
    ) -> None:
        self.program = program
        self.cost = cost_model or CostModel()
        self.max_instructions = max_instructions

        self.memory = Memory()
        self.globals: Dict[str, int] = {}
        self._init_globals()

        # Checkpoint-and-log support: a 16KB-equivalent wrap-around log
        # (2048 words; 1K two-word entries) in its own heap block, indexed
        # by the lp register (r15). See repro.recovery.checkpoint_log.
        self.log_size = 2048
        self.log_base = self.memory.alloc_heap(self.log_size)

        self.int_regs: List[object] = [0] * 16
        self.float_regs: List[float] = [0.0] * 32
        self.frames: List[_Frame] = []
        self.loc: Optional[Location] = None

        # rp: (frame depth, location) — where recovery re-enters.
        self.rp: Optional[Tuple[int, Location]] = None

        # Store buffer: list of (addr, value) since the last verification.
        self.store_buffer: List[Tuple[int, object]] = []

        self.output: List[object] = []
        self.instructions = 0
        self.boundaries_crossed = 0

        # Timing state (half-cycle granularity for dual issue).
        self.half_slots = 0
        self.reg_ready: Dict[Tuple[str, int], int] = {}
        self.mem_ready = 0

        # Direct-mapped L1 model (timing-only): line index -> tag.
        self._l1_tags: Dict[int, int] = {}
        self.l1_hits = 0
        self.l1_misses = 0

        #: optional hook called before each instruction: hook(sim, instr)
        self.pre_hook: Optional[Callable[["Simulator", MachineInstr], None]] = None
        #: optional hook called after each instruction: hook(sim, instr, loc)
        self.post_hook: Optional[Callable[["Simulator", MachineInstr, Location], None]] = None
        self._redirected = False

        # High-frequency observability (per-region dynamic sizes) is
        # sampled only when the observer has tracing enabled; run-level
        # totals are always published (once per run, negligible).
        self._obs_detailed = obs.get_observer().enabled
        self._region_start_instr = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _init_globals(self) -> None:
        for name, (size, initializer) in self.program.globals.items():
            addr = self.memory.alloc_global(size)
            self.globals[name] = addr
            if initializer:
                for i, value in enumerate(initializer):
                    self.memory.poke(addr + i, value)

    @property
    def cycles(self) -> int:
        return (self.half_slots + 1) // 2

    # ------------------------------------------------------------------
    # Register access
    # ------------------------------------------------------------------
    def get_reg(self, reg: Reg):
        if reg.rclass == CLASS_INT:
            return self.int_regs[reg.index]
        return self.float_regs[reg.index]

    def set_reg(self, reg: Reg, value) -> None:
        if reg.rclass == CLASS_INT:
            self.int_regs[reg.index] = value
        else:
            self.float_regs[reg.index] = value

    # ------------------------------------------------------------------
    # Memory through the store buffer
    # ------------------------------------------------------------------
    def mem_load(self, addr: int):
        for buffered_addr, value in reversed(self.store_buffer):
            if buffered_addr == addr:
                return value
        return self.memory.load(addr)

    def mem_store(self, addr: int, value) -> None:
        self.store_buffer.append((addr, value))

    def flush_store_buffer(self) -> None:
        for addr, value in self.store_buffer:
            self.memory.store(addr, value)
        self.store_buffer.clear()

    def discard_store_buffer(self) -> int:
        count = len(self.store_buffer)
        self.store_buffer.clear()
        return count

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    def _l1_access(self, addr: int) -> bool:
        """Touch the cache; returns True on hit. 16-word lines."""
        line = addr >> 4
        index = line % self.cost.l1_lines
        if self._l1_tags.get(index) == line:
            self.l1_hits += 1
            return True
        self._l1_tags[index] = line
        self.l1_misses += 1
        return False

    def _memory_latency(self, instr: MachineInstr) -> Optional[int]:
        """Cache-dependent load latency, or None for the default."""
        if self.cost.l1_lines <= 0:
            return None
        opcode = instr.opcode
        if opcode == "ld":
            addr = self.get_reg(instr.srcs[0])
        elif opcode == "ldslot":
            addr = self.frames[-1].base + instr.imm
        elif opcode in ("st", "stslot"):
            # Write-allocate, but stores retire through the buffer: touch
            # the line, keep the base latency.
            if opcode == "st":
                self._l1_access(self.get_reg(instr.srcs[1]))
            else:
                self._l1_access(self.frames[-1].base + instr.imm)
            return None
        else:
            return None
        if self._l1_access(addr):
            return None
        return self.cost.l1_miss_latency

    def _account(self, instr: MachineInstr) -> None:
        opcode = instr.opcode
        latency = self.cost.latency.get(opcode, 1)
        if instr.is_memory:
            override = self._memory_latency(instr)
            if override is not None:
                latency = override

        issue_half = self.half_slots
        for src in instr.srcs:
            ready = self.reg_ready.get((src.rclass, src.index), 0)
            if ready > issue_half:
                issue_half = ready

        extra_ops = 0
        if instr.is_alu and self.cost.alu_issue_factor > 1:
            extra_ops += self.cost.alu_issue_factor - 1
        if opcode in ("ld", "ldslot"):
            extra_ops += self.cost.check_ops_per_load
        elif opcode in ("st", "stslot"):
            extra_ops += self.cost.check_ops_per_store
        elif opcode in ("bnz", "b", "ret"):
            extra_ops += self.cost.check_ops_per_branch

        if instr.is_memory:
            if self.mem_ready > issue_half:
                issue_half = self.mem_ready
            self.mem_ready = issue_half + 2  # one memory op per cycle

        if instr.dst is not None:
            self.reg_ready[(instr.dst.rclass, instr.dst.index)] = (
                issue_half + 2 * latency
            )

        # Each op (plus its redundancy/check companions) consumes issue
        # slots; two slots per cycle.
        self.half_slots = issue_half + 1 + extra_ops
        if opcode in ("bnz", "b", "ret", "call", "callb"):
            # A taken control transfer ends the issue group.
            self.half_slots += self.half_slots % 2

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, func_name: str, args: Tuple = ()) -> object:
        """Execute ``func_name`` to completion; returns its r0/f0 result."""
        func = self.program.functions.get(func_name)
        if func is None:
            raise SimulationError(f"no machine function {func_name!r}")
        int_index = 0
        float_index = 0
        for value in args:
            if isinstance(value, float):
                self.float_regs[float_index] = value
                float_index += 1
            else:
                self.int_regs[int_index] = value
                int_index += 1
        self._enter_function(func, return_loc=None)
        try:
            with obs.span("sim.run", func=func_name, program=self.program.name):
                self._loop()
        finally:
            self._publish_run_metrics(func_name)
        if func.returns_float:
            return self.float_regs[0]
        return self.int_regs[0]

    def _publish_run_metrics(self, func_name: str) -> None:
        """Run-level totals onto the metrics registry (crashes included)."""
        observer = obs.get_observer()
        observer.counter("sim.runs").inc()
        observer.counter("sim.instructions").inc(self.instructions)
        observer.counter("sim.cycles").inc(self.cycles)
        observer.counter("sim.boundaries").inc(self.boundaries_crossed)
        if self.l1_hits or self.l1_misses:
            observer.counter("sim.l1.hits").inc(self.l1_hits)
            observer.counter("sim.l1.misses").inc(self.l1_misses)

    def _enter_function(self, func: MachineFunction, return_loc: Optional[Location]) -> None:
        base = self.memory.alloc_stack(max(func.frame.size, 1))
        self.frames.append(_Frame(func, base, return_loc))
        self.loc = Location(func.name, 0, 0)
        # Call/entry is an implicit verification + restart point.
        self.flush_store_buffer()
        self.rp = (len(self.frames), self.loc.copy())

    def _current_instr(self) -> Optional[MachineInstr]:
        frame = self.frames[-1]
        block = frame.func.blocks[self.loc.block]
        if self.loc.index >= len(block.instructions):
            raise SimulationError(
                f"fell off block {block.name} in {frame.func.name}"
            )
        return block.instructions[self.loc.index]

    def redirect(self) -> None:
        """Tell the fetch loop that a hook changed ``loc`` (recovery jump)."""
        self._redirected = True

    def _loop(self) -> None:
        while self.frames:
            instr = self._current_instr()
            if self.pre_hook is not None:
                self.pre_hook(self, instr)
                if self._redirected:
                    self._redirected = False
                    continue  # refetch from the new location
            self.instructions += 1
            if self.instructions > self.max_instructions:
                raise SimLimitExceeded(
                    f"exceeded {self.max_instructions} simulated instructions"
                )
            self._account(instr)
            executed_at = self.loc.copy()
            self._execute(instr)
            if self.post_hook is not None:
                self.post_hook(self, instr, executed_at)

    #: opcodes at which buffered stores are verified and committed
    CHECK_POINTS = frozenset(
        ["ld", "st", "ldslot", "stslot", "bnz", "b", "ret", "call", "callb", "rcb"]
    )

    def _execute(self, instr: MachineInstr) -> None:
        opcode = instr.opcode
        frame = self.frames[-1]

        if opcode in self.CHECK_POINTS:
            # DMR verification retires: everything buffered so far is known
            # good and commits to memory. (The fault harness intercepts
            # *before* this via pre_hook when a fault is pending.)
            self.flush_store_buffer()

        if opcode in _INT_BINOPS:
            a = self.get_reg(instr.srcs[0])
            b = self.get_reg(instr.srcs[1])
            self.set_reg(instr.dst, _INT_BINOPS[opcode](a, b))
        elif opcode in _FLOAT_BINOPS:
            a = self.get_reg(instr.srcs[0])
            b = self.get_reg(instr.srcs[1])
            self.set_reg(instr.dst, _FLOAT_BINOPS[opcode](a, b))
        elif opcode == "mov" or opcode == "fmov":
            self.set_reg(instr.dst, self.get_reg(instr.srcs[0]))
        elif opcode == "movi" or opcode == "fmovi":
            self.set_reg(instr.dst, instr.imm)
        elif opcode == "ga":
            self.set_reg(instr.dst, self.globals[instr.imm])
        elif opcode == "lea":
            self.set_reg(instr.dst, frame.base + instr.imm)
        elif opcode == "ld":
            addr = self.get_reg(instr.srcs[0])
            self.set_reg(instr.dst, self.mem_load(addr))
        elif opcode == "st":
            addr = self.get_reg(instr.srcs[1])
            self.mem_store(addr, self.get_reg(instr.srcs[0]))
        elif opcode == "ldslot":
            self.set_reg(instr.dst, self.mem_load(frame.base + instr.imm))
        elif opcode == "stslot":
            self.mem_store(frame.base + instr.imm, self.get_reg(instr.srcs[0]))
        elif opcode == "itof":
            self.set_reg(instr.dst, float(self.get_reg(instr.srcs[0])))
        elif opcode == "ftoi":
            self.set_reg(instr.dst, wrap64(int(self.get_reg(instr.srcs[0]))))
        elif opcode == "csel":
            cond = self.get_reg(instr.srcs[0])
            self.set_reg(
                instr.dst,
                self.get_reg(instr.srcs[1]) if cond else self.get_reg(instr.srcs[2]),
            )
        elif opcode == "bnz":
            if self.get_reg(instr.srcs[0]):
                self._jump(instr.imm)
                return
        elif opcode == "b":
            self._jump(instr.imm)
            return
        elif opcode == "rcb":
            self.boundaries_crossed += 1
            if self._obs_detailed:
                # Dynamic instructions since the previous boundary — the
                # per-region path length the paper's Figs. 8/9 measure.
                obs.histogram("sim.region_dynamic_size").observe(
                    self.instructions - self._region_start_instr
                )
                self._region_start_instr = self.instructions
            next_loc = Location(self.loc.func, self.loc.block, self.loc.index + 1)
            self.rp = (len(self.frames), next_loc)
        elif opcode == "call":
            callee = self.program.functions.get(instr.callee)
            if callee is None:
                raise SimulationError(f"call to unknown function {instr.callee!r}")
            return_loc = Location(self.loc.func, self.loc.block, self.loc.index + 1)
            self._enter_function(callee, return_loc)
            return
        elif opcode == "callb":
            self._builtin(instr)
            # Builtins (I/O, allocation) are not safely re-executable:
            # they are single-instruction regions — advance the restart
            # point past them (§2.3, "non-idempotent instructions").
            next_loc = Location(self.loc.func, self.loc.block, self.loc.index + 1)
            self.rp = (len(self.frames), next_loc)
        elif opcode == "ret":
            done = self.frames.pop()
            self.memory.free_stack(done.base)
            if done.return_loc is None:
                self.loc = None
                return
            self.loc = done.return_loc
            # Return is an implicit verification + restart point.
            self.rp = (len(self.frames), self.loc.copy())
            return
        elif opcode == "stlog":
            # Checkpoint-and-log: write into the wrap-around log region at
            # [lp + imm]. Log traffic is not program-visible state, so it
            # bypasses the store buffer (it writes through the L1 in the
            # paper's setup); cost is accounted as a normal store.
            self._log_write(instr.imm or 0, self.get_reg(instr.srcs[0]))
        elif opcode == "advlp":
            self.int_regs[15] = wrap64(self.int_regs[15] + (instr.imm or 1))
        elif opcode in ("check", "majority"):
            pass  # detection ops are timing-only in this model
        else:
            raise SimulationError(f"cannot simulate opcode {opcode!r}")

        self.loc.index += 1

    def _jump(self, block_name: str) -> None:
        frame = self.frames[-1]
        self.loc = Location(
            frame.func.name, frame.func.block_index(block_name), 0
        )

    # ------------------------------------------------------------------
    # Recovery (used by the fault harness)
    # ------------------------------------------------------------------
    def _log_write(self, offset: int, value) -> None:
        index = (self.int_regs[15] + offset) % self.log_size
        self.memory.poke(self.log_base + index, value)

    def recover_to_rp(self) -> None:
        """Discard unverified stores and jump to the restart pointer."""
        if self.rp is None:
            raise SimulationError("no restart point recorded")
        depth, loc = self.rp
        if depth > len(self.frames):
            raise SimulationError("restart point is in a popped frame")
        while len(self.frames) > depth:
            dead = self.frames.pop()
            self.memory.free_stack(dead.base)
        self.discard_store_buffer()
        self.loc = loc.copy()

    # ------------------------------------------------------------------
    # Builtins
    # ------------------------------------------------------------------
    def _builtin(self, instr: MachineInstr) -> None:
        name = instr.callee
        ints = self.int_regs
        floats = self.float_regs
        if name == "malloc":
            ints[0] = self.memory.alloc_heap(int(ints[0]))
        elif name == "free":
            pass
        elif name == "print_int":
            self.output.append(int(ints[0]))
        elif name == "print_float":
            self.output.append(float(floats[0]))
        elif name == "abs":
            ints[0] = wrap64(abs(ints[0]))
        elif name == "fabs":
            floats[0] = abs(floats[0])
        elif name == "sqrt":
            floats[0] = math.sqrt(floats[0])
        elif name == "exp":
            floats[0] = math.exp(floats[0])
        elif name == "log":
            floats[0] = math.log(floats[0])
        elif name == "min":
            ints[0] = min(ints[0], ints[1])
        elif name == "max":
            ints[0] = max(ints[0], ints[1])
        elif name == "fmin":
            floats[0] = min(floats[0], floats[1])
        elif name == "fmax":
            floats[0] = max(floats[0], floats[1])
        else:
            raise SimulationError(f"unknown builtin {name!r}")


def _sdiv(a, b):
    return wrap64(_int_div(a, b))


def _srem(a, b):
    return wrap64(_int_rem(a, b))


_INT_BINOPS = {
    "add": lambda a, b: wrap64(a + b),
    "sub": lambda a, b: wrap64(a - b),
    "mul": lambda a, b: wrap64(a * b),
    "div": _sdiv,
    "rem": _srem,
    "and": lambda a, b: wrap64(a & b),
    "or": lambda a, b: wrap64(a | b),
    "xor": lambda a, b: wrap64(a ^ b),
    "shl": lambda a, b: wrap64(a << (b & 63)),
    "shr": lambda a, b: wrap64(a >> (b & 63)),
    "cmpeq": lambda a, b: int(a == b),
    "cmpne": lambda a, b: int(a != b),
    "cmplt": lambda a, b: int(a < b),
    "cmple": lambda a, b: int(a <= b),
    "cmpgt": lambda a, b: int(a > b),
    "cmpge": lambda a, b: int(a >= b),
}

_FLOAT_BINOPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: a / b,
    "fcmpeq": lambda a, b: int(a == b),
    "fcmpne": lambda a, b: int(a != b),
    "fcmplt": lambda a, b: int(a < b),
    "fcmple": lambda a, b: int(a <= b),
    "fcmpgt": lambda a, b: int(a > b),
    "fcmpge": lambda a, b: int(a >= b),
}
