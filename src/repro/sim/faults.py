"""Transient-fault injection and recovery (paper §2.3, §6.3).

Fault model (the paper's): memory and register *storage* are ECC-protected;
faults arise in instruction execution only. We corrupt the destination of
one dynamic instruction (a soft error in a functional unit) or a branch
decision (incorrect control flow). Detection is instruction-level DMR: the
fault becomes visible at the next *check point* — a load, store, branch,
call, or region boundary — before that operation commits, so corrupted
stores never reach memory and corrupted values never cross an undetected
region boundary.

Recovery is the paper's idempotence scheme: discard unverified stores and
jump to the restart pointer ``rp``. On an idempotent binary this always
reproduces the fault-free result; on an original (non-idempotent) binary
the same procedure silently corrupts state — the negative control used in
tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.codegen.machine import MachineInstr, MachineProgram
from repro.harness.executor import derive_seed
from repro.interp.memory import MemoryError_
from repro.sim.simulator import SimulationError, Simulator

FAULT_VALUE = "value"      # corrupt an instruction's destination register
FAULT_CONTROL = "control"  # corrupt a branch condition (wrong control flow)


@dataclass
class FaultPlan:
    """Inject one fault at the Nth dynamically executed instruction.

    ``detection_latency`` models slow detection (paper §6.2: "longer path
    lengths allow execution to proceed speculatively for longer amounts of
    time while potential execution failures remain undetected"): the fault
    is only detected at the first check point at least that many dynamic
    instructions after injection. If a region boundary slips by in the
    meantime, ``rp`` advances past the fault and recovery re-executes a
    region whose inputs are already corrupt — large regions are what make
    long latencies survivable.
    """

    target_instruction: int
    kind: str = FAULT_VALUE
    flip_mask: int = 0x1
    detection_latency: int = 0


@dataclass
class FaultOutcome:
    injected: bool = False
    detected: bool = False
    recovered: bool = False
    crashed: bool = False
    result: object = None
    output: List[object] = field(default_factory=list)
    instructions: int = 0
    recovery_instructions: int = 0
    #: Region key (``func@block.index`` of the restart pointer active at
    #: injection time) — lets campaigns attribute outcomes to regions.
    region: Optional[str] = None
    #: Dynamic instructions between injection and detection (0 when the
    #: fault was never detected) — the detect-latency histograms of the
    #: incremental outcome store are built from this.
    detect_gap: int = 0


REGION_UNKNOWN = "?"


def region_key(sim: Simulator) -> str:
    """Stable key for the region executing now: the active restart pointer.

    Dynamic regions are delimited by restart-pointer updates, so the rp
    location identifies the region an injected fault lands in. ``"?"``
    covers the window before the first rp is established.
    """
    if sim.rp is None:
        return REGION_UNKNOWN
    _depth, loc = sim.rp
    return f"{loc.func}@{loc.block}.{loc.index}"


class FaultInjector:
    """Drives a simulator run with one planned fault and rp recovery."""

    def __init__(self, sim: Simulator, plan: FaultPlan, recover: bool = True) -> None:
        self.sim = sim
        self.plan = plan
        self.recover = recover
        self.outcome = FaultOutcome()
        self._pending = False
        self._armed = True
        self._injected_at = 0
        sim.pre_hook = self._pre
        sim.post_hook = self._post

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def _pre(self, sim: Simulator, instr: MachineInstr) -> None:
        if (
            self._pending
            and instr.opcode in Simulator.CHECK_POINTS
            and sim.instructions - self._injected_at >= self.plan.detection_latency
        ):
            self.outcome.detected = True
            self.outcome.detect_gap = sim.instructions - self._injected_at
            self._pending = False
            if self.recover:
                mark = sim.instructions
                sim.recover_to_rp()
                sim.redirect()
                self.outcome.recovered = True
                self.outcome.recovery_instructions = mark
            return
        if (
            self._armed
            and self.plan.kind == FAULT_CONTROL
            and sim.instructions + 1 >= self.plan.target_instruction
            and instr.opcode == "bnz"
        ):
            cond = instr.srcs[0]
            value = sim.get_reg(cond)
            sim.set_reg(cond, 0 if value else 1)
            self._armed = False
            self.outcome.injected = True
            self.outcome.region = region_key(sim)
            self._injected_at = sim.instructions
            self._pending = True  # detected at the next check point after this branch

    def _post(self, sim: Simulator, instr: MachineInstr, loc) -> None:
        if (
            self._armed
            and self.plan.kind == FAULT_VALUE
            and sim.instructions >= self.plan.target_instruction
            and instr.dst is not None
            and not instr.is_memory  # loads are verified directly by DMR
        ):
            value = sim.get_reg(instr.dst)
            if isinstance(value, float):
                corrupted = -(value + 1.0)
            else:
                corrupted = value ^ self.plan.flip_mask
            sim.set_reg(instr.dst, corrupted)
            self._armed = False
            self.outcome.injected = True
            self.outcome.region = region_key(sim)
            self._injected_at = sim.instructions
            self._pending = True


def run_with_fault(
    program: MachineProgram,
    plan: FaultPlan,
    func: str = "main",
    args: Tuple = (),
    recover: bool = True,
    max_instructions: int = 50_000_000,
    injector_factory: Optional[Callable[..., object]] = None,
) -> FaultOutcome:
    """Execute ``func`` with one injected fault; returns the outcome.

    ``injector_factory`` selects the recovery scheme driving the run —
    any callable with :class:`FaultInjector`'s ``(sim, plan, recover)``
    signature exposing an ``outcome`` attribute. The default is the
    paper's idempotence scheme (``FaultInjector``); the alternatives
    live in :mod:`repro.recovery.backends`.
    """
    sim = Simulator(program, max_instructions=max_instructions)
    factory = injector_factory or FaultInjector
    injector = factory(sim, plan, recover=recover)
    outcome = injector.outcome
    try:
        outcome.result = sim.run(func, args)
    except (MemoryError_, SimulationError):
        outcome.crashed = True
    outcome.output = list(sim.output)
    outcome.instructions = sim.instructions
    return outcome


@dataclass
class CampaignResult:
    """Aggregate of a fault-injection campaign.

    Injected trials land in exactly one of four disjoint buckets:
    ``crashed``, ``recovered_correctly`` (detected *and* reproduced the
    reference), ``wrong_result`` (diverged from the reference, whether
    or not detection fired), or ``undetected`` (the fault slipped past
    every check point — detection latency ran past program end — yet
    the result happened to be correct).  An undetected fault is never
    reported as recovered: nothing recovered it.
    """

    trials: int = 0
    injected: int = 0
    detected: int = 0
    recovered_correctly: int = 0
    wrong_result: int = 0
    crashed: int = 0
    undetected: int = 0

    @property
    def recovery_rate(self) -> float:
        """Fraction of injected faults recovered correctly.

        A campaign that injected nothing has no recovery rate: it
        returns NaN rather than a misleading 0.0 (which reads as "every
        fault was lost") — use :func:`format_rate` for display.
        """
        if not self.injected:
            return float("nan")
        return self.recovered_correctly / self.injected

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        """Fold in another shard of the same campaign (in place)."""
        self.trials += other.trials
        self.injected += other.injected
        self.detected += other.detected
        self.recovered_correctly += other.recovered_correctly
        self.wrong_result += other.wrong_result
        self.crashed += other.crashed
        self.undetected += other.undetected
        return self


def format_rate(result: CampaignResult) -> str:
    """``recovery_rate`` for reports: ``"n/a"`` when nothing was injected."""
    if not result.injected:
        return "n/a"
    return f"{result.recovery_rate:.0%}"


def classify_outcome(
    outcome: FaultOutcome,
    reference_result: object,
    reference_output: List[object],
) -> Optional[str]:
    """Bucket name for one trial outcome, ``None`` if nothing was injected.

    The four disjoint buckets of :class:`CampaignResult`, in the same
    precedence order every campaign has always used: ``crashed`` beats
    ``wrong_result`` beats ``recovered_correctly`` beats ``undetected``.
    """
    if not outcome.injected:
        return None
    correct = (
        outcome.result == reference_result
        and outcome.output == reference_output
    )
    if outcome.crashed:
        return "crashed"
    if not correct:
        return "wrong_result"
    if outcome.detected:
        return "recovered_correctly"
    # Fault injected, never detected (latency outlived the program),
    # result coincidentally correct: benign, but NOT a recovery —
    # nothing recovered it.
    return "undetected"


def trial_plan(
    campaign_seed: int,
    index: int,
    span: int,
    kind: str = FAULT_VALUE,
    detection_latency: int = 0,
) -> FaultPlan:
    """The fault plan of trial ``index`` in a campaign.

    The per-trial RNG is seeded spawn-key style from the campaign seed
    and the trial index (not drawn from one sequential stream), so any
    sharding of the trial range over processes injects exactly the fault
    set a serial campaign does.
    """
    rng = random.Random(derive_seed(campaign_seed, "trial", index))
    return FaultPlan(
        target_instruction=rng.randrange(1, span),
        kind=kind,
        detection_latency=detection_latency,
    )


def campaign_span(
    program: MachineProgram,
    func: str = "main",
    args: Tuple = (),
) -> int:
    """The fault-target range of a campaign over ``program``.

    One fault-free run measures the dynamic instruction count; targets
    are drawn uniformly from ``[1, span)`` so every campaign (monolithic,
    sharded, or per-section incremental) over the same program faces the
    identical target distribution.
    """
    baseline = Simulator(program)
    baseline.run(func, args)
    return max(baseline.instructions - 2, 1)


def run_planned_trial(
    program: MachineProgram,
    seed: int,
    index: int,
    span: int,
    func: str = "main",
    args: Tuple = (),
    kind: str = FAULT_VALUE,
    detection_latency: int = 0,
    recover: bool = True,
    injector_factory: Optional[Callable[..., object]] = None,
) -> FaultOutcome:
    """Execute campaign trial ``index`` exactly as :func:`fault_campaign` would.

    Trial identity is ``(seed, index, span)`` alone, so any partition of
    a campaign's index range — serial, sharded, or the per-region
    sections of :mod:`repro.harness.incremental` — reproduces the
    monolithic run's outcomes bit for bit.
    """
    plan = trial_plan(
        seed, index, span, kind=kind, detection_latency=detection_latency
    )
    return run_with_fault(
        program, plan, func=func, args=args, recover=recover,
        injector_factory=injector_factory,
    )


def fault_campaign(
    program: MachineProgram,
    reference_result: object,
    reference_output: List[object],
    trials: int = 50,
    func: str = "main",
    args: Tuple = (),
    kind: str = FAULT_VALUE,
    seed: int = 12345,
    recover: bool = True,
    detection_latency: int = 0,
    start_trial: int = 0,
    injector_factory: Optional[Callable[..., object]] = None,
    per_region: Optional[Dict[str, CampaignResult]] = None,
) -> CampaignResult:
    """Inject ``trials`` faults at random points; compare against reference.

    The fault-free dynamic instruction count is measured first so targets
    are uniform over the execution.  Trial ``i`` is planned by
    :func:`trial_plan` from ``(seed, start_trial + i)`` alone, so running
    ``trials=50`` serially and merging two ``trials=25`` shards (the
    second with ``start_trial=25``) measure the identical fault set.

    ``injector_factory`` swaps the recovery scheme (see
    :func:`run_with_fault`); the trial plans depend only on the baseline
    instruction count, so two schemes running the same ``program`` face
    the identical fault set.  Pass a dict as ``per_region`` to
    additionally collect one :class:`CampaignResult` per region key
    (keyed by :func:`region_key` at injection time).
    """
    span = campaign_span(program, func=func, args=args)

    result = CampaignResult()
    for index in range(start_trial, start_trial + trials):
        outcome = run_planned_trial(
            program, seed, index, span, func=func, args=args, kind=kind,
            detection_latency=detection_latency, recover=recover,
            injector_factory=injector_factory,
        )
        result.trials += 1
        bucket = classify_outcome(outcome, reference_result, reference_output)
        if bucket is None:
            continue
        result.injected += 1
        if outcome.detected:
            result.detected += 1
        setattr(result, bucket, getattr(result, bucket) + 1)
        if per_region is not None:
            sub = per_region.setdefault(
                outcome.region or REGION_UNKNOWN, CampaignResult()
            )
            sub.trials += 1
            sub.injected += 1
            if outcome.detected:
                sub.detected += 1
            setattr(sub, bucket, getattr(sub, bucket) + 1)
    _publish_campaign_metrics(result, kind)
    return result


def _publish_campaign_metrics(result: CampaignResult, kind: str) -> None:
    """Fault-detection event totals onto the ``repro.obs`` registry."""
    from repro import obs

    events = obs.counter("sim.fault_events")
    for outcome in ("trials", "injected", "detected", "recovered_correctly",
                    "wrong_result", "crashed", "undetected"):
        count = getattr(result, outcome)
        if count:
            events.inc(count, outcome=outcome, kind=kind)
