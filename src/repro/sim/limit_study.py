"""Dynamic idempotent-path limit study (paper §3, Fig. 4).

Measures, on a conventionally compiled ("original") binary, the lengths of
dynamic instruction sequences between *clobber antidependences* — a write
to a location that the current path has read before writing. Three
categories, as in the paper:

- ``semantic`` — only non-stack memory locations are tracked, and paths
  run across function boundaries (the inter-procedural limit; the paper
  optimistically ignores calling-convention antidependences, which our
  register-free tracking does implicitly);
- ``semantic_calls`` — same, but paths also end at call/return boundaries
  (the intra-procedural limit the constructed regions are compared to);
- ``artificial`` — additionally tracks registers and stack memory, with
  call boundaries (what a conventional compiler's code actually allows).

Paper result: geomeans of ≈1300 / ≈110 / ≈10.8 instructions respectively —
artificial clobbers shrink idempotent paths by ~10×.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.codegen.machine import MachineInstr, MachineProgram
from repro.interp.memory import STACK_BASE
from repro.sim.simulator import Location, Simulator

CATEGORY_SEMANTIC = "semantic"
CATEGORY_SEMANTIC_CALLS = "semantic_calls"
CATEGORY_ARTIFICIAL = "artificial"
CATEGORIES = (CATEGORY_SEMANTIC, CATEGORY_SEMANTIC_CALLS, CATEGORY_ARTIFICIAL)


@dataclass
class PathStats:
    """Histogram of dynamic idempotent path lengths."""

    lengths: Dict[int, int] = field(default_factory=dict)
    open_path_length: int = 0

    def record(self, length: int) -> None:
        if length > 0:
            self.lengths[length] = self.lengths.get(length, 0) + 1

    @property
    def count(self) -> int:
        return sum(self.lengths.values())

    @property
    def total_instructions(self) -> int:
        return sum(length * n for length, n in self.lengths.items())

    @property
    def average(self) -> float:
        return self.total_instructions / self.count if self.count else 0.0

    def weighted_cdf(self) -> List[Tuple[int, float]]:
        """(length, fraction of execution time in paths ≤ length) points."""
        total = self.total_instructions
        if total == 0:
            return []
        acc = 0
        points = []
        for length in sorted(self.lengths):
            acc += length * self.lengths[length]
            points.append((length, acc / total))
        return points


class _ClobberTracker:
    """Per-category dynamic clobber-antidependence detector."""

    def __init__(self, track_registers: bool, track_stack: bool, split_at_calls: bool) -> None:
        self.track_registers = track_registers
        self.track_stack = track_stack
        self.split_at_calls = split_at_calls
        self.stats = PathStats()
        self._read: Set = set()
        self._written: Set = set()
        self._length = 0

    def _end_path(self) -> None:
        self.stats.record(self._length)
        self._read.clear()
        self._written.clear()
        self._length = 0

    def _on_read(self, loc) -> None:
        if loc not in self._written:
            self._read.add(loc)

    def _on_write(self, loc) -> bool:
        """Returns True if this write clobbers a path input."""
        if loc in self._read and loc not in self._written:
            return True
        self._written.add(loc)
        return False

    def step(self, sim: Simulator, instr: MachineInstr) -> None:
        opcode = instr.opcode
        self._length += 1

        if self.split_at_calls and opcode in ("call", "callb", "ret"):
            self._end_path()
            return

        clobbered = False
        # Register effects.
        if self.track_registers:
            for src in instr.srcs:
                self._on_read(("reg", src.rclass, src.index))
            if instr.dst is not None:
                if self._on_write(("reg", instr.dst.rclass, instr.dst.index)):
                    clobbered = True

        # Memory effects. Addresses are resolved against live state
        # *before* the instruction executes.
        frame = sim.frames[-1] if sim.frames else None
        if opcode == "ld":
            addr = sim.get_reg(instr.srcs[0])
            self._track_mem_read(addr)
        elif opcode == "ldslot" and frame is not None:
            self._track_mem_read(frame.base + instr.imm)
        elif opcode == "st":
            addr = sim.get_reg(instr.srcs[1])
            if self._track_mem_write(addr):
                clobbered = True
        elif opcode == "stslot" and frame is not None:
            if self._track_mem_write(frame.base + instr.imm):
                clobbered = True

        if clobbered:
            # The clobbering write starts the next path (cut before it).
            self._length -= 1
            self._end_path()
            self._length = 1
            if self.track_registers and instr.dst is not None:
                self._written.add(("reg", instr.dst.rclass, instr.dst.index))
            if opcode == "st":
                self._written.add(("mem", sim.get_reg(instr.srcs[1])))
            elif opcode == "stslot" and frame is not None:
                self._written.add(("mem", frame.base + instr.imm))

    def _is_tracked_addr(self, addr: int) -> bool:
        if addr >= STACK_BASE:
            return self.track_stack
        return True

    def _track_mem_read(self, addr: int) -> None:
        if self._is_tracked_addr(addr):
            self._on_read(("mem", addr))

    def _track_mem_write(self, addr: int) -> bool:
        if self._is_tracked_addr(addr):
            return self._on_write(("mem", addr))
        return False

    def finish(self) -> PathStats:
        self._end_path()
        return self.stats


def run_limit_study(
    program: MachineProgram,
    func: str = "main",
    args: Tuple = (),
    max_instructions: int = 20_000_000,
    warmup_fraction: float = 0.2,
) -> Dict[str, PathStats]:
    """Execute and measure all three clobber categories concurrently.

    Like the paper (which fast-forwards 5B instructions past the setup
    phase, §3), measurement starts only after a warmup window — otherwise
    a program's input-initialization stores make everything it later
    touches look write-before-read and hence clobber-free from program
    start. ``warmup_fraction`` of the fault-free dynamic instruction count
    is skipped (a plain counting run determines the total).
    """
    warmup = 0
    if warmup_fraction > 0:
        counting = Simulator(program, max_instructions=max_instructions)
        counting.run(func, args)
        warmup = int(counting.instructions * warmup_fraction)

    sim = Simulator(program, max_instructions=max_instructions)
    trackers = {
        CATEGORY_SEMANTIC: _ClobberTracker(
            track_registers=False, track_stack=False, split_at_calls=False
        ),
        CATEGORY_SEMANTIC_CALLS: _ClobberTracker(
            track_registers=False, track_stack=False, split_at_calls=True
        ),
        CATEGORY_ARTIFICIAL: _ClobberTracker(
            track_registers=True, track_stack=True, split_at_calls=True
        ),
    }

    def hook(sim_: Simulator, instr: MachineInstr) -> None:
        if sim_.instructions < warmup:
            return
        for tracker in trackers.values():
            tracker.step(sim_, instr)

    sim.pre_hook = hook
    sim.run(func, args)
    return {name: tracker.finish() for name, tracker in trackers.items()}
