"""repro.sim — machine simulation, dynamic analyses, fault injection."""

from repro.sim.simulator import (
    CostModel,
    Location,
    SimLimitExceeded,
    SimulationError,
    Simulator,
)

__all__ = [
    "CostModel",
    "Location",
    "SimLimitExceeded",
    "SimulationError",
    "Simulator",
]
