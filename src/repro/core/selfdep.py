"""Self-dependent pseudoregister antidependences and the loop cut invariant
(paper §4.2.2, §5).

In SSA form the only remaining pseudoregister antidependences are the
self-dependent ones: a loop-header φ whose next-iteration value depends on
the φ itself (``ti = f(ti)``). Their storage (a register or stack slot) is
rewritten every iteration, so a region that wraps around a loop back edge
could observe read-then-overwrite of its own input.

The invariant we enforce — the concrete instantiation of the paper's
case analysis — is:

- **Case 1** (loop contains no cuts): nothing to do. The φ web's defining
  copy in the preheader belongs to the same region as the loop, so every
  per-iteration overwrite is preceded by an in-region flow dependence.
- **Cases 2/3** (loop contains at least one cut): place cuts at the loop
  header (after φs) and in every latch immediately before its terminator.
  φ-web copies are emitted *after* a trailing boundary during code
  generation, so every dynamic path through the loop stays inside a single
  iteration segment, where SSA dominance guarantees writes precede reads.
  This both realizes case 2's "two cuts along all paths" and repositions
  the antidependence writes to straddle region boundaries (Fig. 7c).
- **Unroll enhancement** (§5): when the loop is unrollable and every body
  path already crosses a cut, unroll once *first*; the forced header/latch
  cuts then amortize over two logical iterations, preserving region sizes.

We apply the invariant to every loop containing a cut (not only those with
self-dependent φs): any φ web — loop-header or internal join — creates
register-level WARs across the back edge, and the header+latch cuts are
what keep dynamic paths from wrapping around it. This is slightly more
conservative than the paper's text and is called out in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.loops import Loop, LoopInfo
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Boundary, Instruction, Phi
from repro.ir.values import Value
from repro.transforms.unroll import UnrollNotSupported, can_unroll_once, unroll_once


def self_dependent_phis(loop: Loop) -> List[Phi]:
    """Header φs whose back-edge value transitively depends on the φ.

    These are the paper's ``ti = f(ti)`` self-dependent pseudoregister
    antidependences (§4.2.2).
    """
    result = []
    latch_set = set(loop.latches)
    for phi in loop.header.phis():
        for value, pred in phi.incoming:
            if pred in latch_set and _depends_on(value, phi, loop):
                result.append(phi)
                break
    return result


def _depends_on(value: Value, target: Phi, loop: Loop) -> bool:
    """Does ``value`` reach ``target`` through defs inside the loop?"""
    seen: Set[int] = set()
    stack = [value]
    while stack:
        node = stack.pop()
        if node is target:
            return True
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Instruction) and node.parent in loop.blocks:
            stack.extend(use.value for use in node._operands)
    return False


def count_boundaries(block: BasicBlock) -> int:
    return sum(1 for inst in block.instructions if isinstance(inst, Boundary))


def min_cuts_on_body_paths(loop: Loop, cfg=None) -> int:
    """Minimum number of boundaries crossed by any header→latch path.

    Dynamic programming over the loop body with back edges removed (the
    body of a natural loop minus its back edges is a DAG).  ``cfg`` (a
    :class:`~repro.analysis.cfg.CFG` snapshot, e.g. ``loop_info.cfg``)
    provides O(1) edge queries; without it every predecessor lookup is an
    O(blocks) scan through :attr:`BasicBlock.predecessors`.
    """
    if cfg is not None:
        succs_of = cfg.successors.__getitem__
        preds_of = cfg.predecessors.__getitem__
    else:
        succs_of = lambda b: b.successors  # noqa: E731
        preds_of = lambda b: b.predecessors  # noqa: E731

    # Topological order of loop blocks ignoring edges into the header.
    order: List[BasicBlock] = []
    visiting: Set[BasicBlock] = set()
    done: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        if block in done:
            return
        stack = [(block, iter(succs_of(block)))]
        visiting.add(block)
        while stack:
            node, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ is loop.header or succ not in loop.blocks:
                    continue
                if succ in done or succ in visiting:
                    continue
                visiting.add(succ)
                stack.append((succ, iter(succs_of(succ))))
                advanced = True
                break
            if not advanced:
                visiting.discard(node)
                done.add(node)
                order.append(node)
                stack.pop()

    visit(loop.header)
    order.reverse()  # now header-first topological order

    best: Dict[BasicBlock, int] = {}
    for block in order:
        if block is loop.header:
            incoming = 0
        else:
            preds = [
                p for p in preds_of(block)
                if p in loop.blocks and p in best
            ]
            if not preds:
                continue  # unreachable within the body DAG
            incoming = min(best[p] for p in preds)
        best[block] = incoming + count_boundaries(block)

    latch_counts = [best[latch] for latch in loop.latches if latch in best]
    return min(latch_counts) if latch_counts else 0


def _has_boundary_at_header(loop: Loop) -> bool:
    first = loop.header.first_non_phi
    return isinstance(first, Boundary)


def _has_boundary_before_terminator(block: BasicBlock) -> bool:
    if len(block.instructions) < 2:
        return False
    return isinstance(block.instructions[-2], Boundary)


@dataclass
class LoopCutReport:
    """Per-function statistics from the loop cut invariant pass."""

    loops_seen: int = 0
    loops_with_self_dependent_phis: int = 0
    case1_untouched: int = 0
    case2_already_satisfied: int = 0
    case3_fixed: int = 0
    loops_unrolled: int = 0
    forced_cuts: int = 0
    unrolled_headers: List[str] = field(default_factory=list)


def enforce_loop_cut_invariant(
    func: Function,
    unroll: bool = True,
    max_unroll_blocks: int = 12,
    am=None,
) -> LoopCutReport:
    """Apply the §4.2.2 case analysis to every loop of ``func``.

    Must run after memory-antidependence boundaries are inserted. Iterates
    to a fixpoint because forcing cuts into an inner loop gives enclosing
    loops cuts too.

    ``am`` (an :class:`repro.analysis.manager.AnalysisManager`) supplies
    the cached loop nest; unrolling edits the block graph, so the manager
    is fully invalidated before the fixpoint rescans.  Boundary insertion
    alone preserves the CFG tier (a ``boundary`` is not a terminator) —
    the caller still owns that invalidation, since only it knows whether
    liveness must also be dropped.
    """
    report = LoopCutReport()
    counted_headers: Set[str] = set()

    changed = True
    while changed:
        changed = False
        loop_info = am.loops(func) if am is not None else LoopInfo(func)
        # Innermost-first so outer loops observe cuts added to inner ones.
        loops = sorted(loop_info.loops, key=lambda lp: -lp.depth)
        # φ self-dependence is a function of the (unchanging within one
        # pass) instruction operands, and both the stats accounting and
        # the unroll predicate query it — share one result per header.
        selfdep_memo: Dict[str, List[Phi]] = {}

        def memoized_self_dependent_phis(lp: Loop) -> List[Phi]:
            cached = selfdep_memo.get(lp.header.name)
            if cached is None:
                cached = selfdep_memo[lp.header.name] = self_dependent_phis(lp)
            return cached

        for loop in loops:
            header_name = loop.header.name
            if header_name not in counted_headers:
                counted_headers.add(header_name)
                report.loops_seen += 1
                if memoized_self_dependent_phis(loop):
                    report.loops_with_self_dependent_phis += 1

            # Only zero-vs-nonzero matters: stop at the first boundary.
            has_cut = False
            for block in loop.blocks:
                for inst in block.instructions:
                    if inst.__class__ is Boundary:
                        has_cut = True
                        break
                if has_cut:
                    break
            if not has_cut:
                report.case1_untouched += 1
                continue

            has_header_cut = _has_boundary_at_header(loop)
            has_latch_cuts = all(
                _has_boundary_before_terminator(latch) for latch in loop.latches
            )
            if has_header_cut and has_latch_cuts:
                report.case2_already_satisfied += 1
                continue

            # Case 3: fix up. Optionally unroll first so the forced cuts
            # amortize over two logical iterations (each unrolled at most
            # once, keyed by header name).
            if (
                unroll
                and header_name not in report.unrolled_headers
                and can_unroll_once(loop)
                and len(loop.blocks) <= max_unroll_blocks
                and min_cuts_on_body_paths(loop, loop_info.cfg) >= 1
                and memoized_self_dependent_phis(loop)
            ):
                try:
                    unroll_once(func, loop)
                except UnrollNotSupported:
                    pass
                else:
                    report.loops_unrolled += 1
                    report.unrolled_headers.append(header_name)
                    # Loop structure changed; restart the fixpoint scan.
                    if am is not None:
                        am.invalidate(func)
                    changed = True
                    break

            report.case3_fixed += 1
            if not has_header_cut:
                loop.header.insert_after_phis(Boundary())
                report.forced_cuts += 1
            for latch in loop.latches:
                if not _has_boundary_before_terminator(latch):
                    terminator = latch.terminator
                    assert terminator is not None
                    latch.insert_before(terminator, Boundary())
                    report.forced_cuts += 1
            # Boundary insertion does not change the CFG, so the remaining
            # loops of this pass can proceed with the same LoopInfo.
    return report
