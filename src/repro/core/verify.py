"""Static idempotence verification of a region-marked function.

Checks the defining property of the decomposition (paper §4.2.1): no
region contains a memory antidependence — equivalently, every control-flow
path from a memory read to a potentially-aliasing later write crosses a
region boundary. Used as a post-condition by the construction pass and in
tests; a dynamic re-execution check lives in :mod:`repro.interp`.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.analysis.antideps import AntiDep, AntiDepAnalysis
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Boundary, Call, Instruction


class IdempotenceViolation:
    """A read→write pair with a boundary-free connecting path."""

    def __init__(self, antidep: AntiDep, note: str = "") -> None:
        self.antidep = antidep
        self.note = note

    def __repr__(self) -> str:
        return f"<IdempotenceViolation {self.antidep!r} {self.note}>"


def _boundary_free_path_exists(func: Function, a: Instruction, b: Instruction) -> bool:
    """Is there a path from just after ``a`` to ``b`` crossing no boundary?

    Instruction-level forward DFS. Calls to non-builtin functions are also
    barriers when the caller cuts around calls — but we stay conservative
    here and treat only explicit ``boundary`` markers as barriers, which
    makes the check strictly stronger.
    """
    block_a = a.parent
    start_index = block_a.instructions.index(a) + 1
    target = b
    seen: Set[Tuple[int, int]] = set()
    stack: List[Tuple[BasicBlock, int]] = [(block_a, start_index)]
    while stack:
        block, start = stack.pop()
        key = (id(block), start)
        if key in seen:
            continue
        seen.add(key)
        i = start
        instructions = block.instructions
        blocked = False
        while i < len(instructions):
            inst = instructions[i]
            if inst is target:
                return True
            if isinstance(inst, Boundary):
                blocked = True
                break
            i += 1
        if not blocked:
            for succ in block.successors:
                stack.append((succ, 0))
    return False


def find_idempotence_violations(func: Function, aa=None, am=None) -> List[IdempotenceViolation]:
    """All memory antidependences not split by region boundaries.

    ``aa`` lets callers verify under the same alias assumptions the
    construction used (e.g. ``trust_argument_noalias``); ``am`` (an
    :class:`repro.analysis.manager.AnalysisManager`) supplies cached
    CFG/dominator/reachability snapshots so verification does not repeat
    the construction's graph work.
    """
    if am is not None:
        analysis = AntiDepAnalysis(
            func,
            aa,
            cfg=am.cfg(func),
            domtree=am.domtree(func),
            reach=am.reachability(func),
        )
    else:
        analysis = AntiDepAnalysis(func, aa)
    violations = []
    for antidep in analysis.antideps:
        if _boundary_free_path_exists(func, antidep.read, antidep.write):
            violations.append(IdempotenceViolation(antidep))
    return violations


def verify_idempotent_regions(func: Function, aa=None, am=None) -> None:
    """Raise ``AssertionError`` listing any uncut memory antidependence."""
    violations = find_idempotence_violations(func, aa, am=am)
    if violations:
        details = "\n".join(repr(v) for v in violations)
        raise AssertionError(
            f"@{func.name}: {len(violations)} antidependence(s) inside regions:\n{details}"
        )
