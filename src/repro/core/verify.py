"""Static idempotence verification of a region-marked function.

Checks the defining property of the decomposition (paper §4.2.1): no
region contains a memory antidependence — equivalently, every control-flow
path from a memory read to a potentially-aliasing later write crosses a
region boundary. Used as a post-condition by the construction pass and in
tests; a dynamic re-execution check lives in :mod:`repro.interp`.

Boundary-free reachability runs on a packed-bitset kernel
(:func:`repro.analysis.bitset.closure_rows`): blocks containing a
``boundary`` are barriers — their head can be *reached* but nothing
propagates past them — so one closure over the boundary-free blocks
answers every antidependence query with a tail scan plus a bit test,
instead of one instruction-level DFS per (read, write) pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.antideps import AntiDep, AntiDepAnalysis
from repro.analysis.bitset import closure_rows
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Boundary, Call, Instruction


class IdempotenceViolation:
    """A read→write pair with a boundary-free connecting path."""

    def __init__(self, antidep: AntiDep, note: str = "") -> None:
        self.antidep = antidep
        self.note = note

    def __repr__(self) -> str:
        return f"<IdempotenceViolation {self.antidep!r} {self.note}>"


class BoundarySegments:
    """Boundary-free reachability between program points of one function.

    Built once per verification: ``first_boundary[i]`` is the index of
    the first ``boundary`` in block ``i`` (or the block length), and the
    closure rows give, for each block, the set of block *heads* reachable
    from its exit without crossing a boundary — blocks containing a
    boundary contribute their head bit but do not propagate
    (``expand_mask`` restricted to boundary-free blocks).

    Calls to non-builtin functions are also barriers when the caller cuts
    around calls — but we stay conservative here and treat only explicit
    ``boundary`` markers as barriers, which makes the check strictly
    stronger.
    """

    def __init__(self, func: Function) -> None:
        self.blocks: List[BasicBlock] = list(func.blocks)
        self.bit: Dict[BasicBlock, int] = {
            block: i for i, block in enumerate(self.blocks)
        }
        bit = self.bit
        self.first_boundary: List[int] = []
        succ_bits: List[List[int]] = []
        open_mask = 0
        for i, block in enumerate(self.blocks):
            instructions = block.instructions
            first = len(instructions)
            for j, inst in enumerate(instructions):
                if isinstance(inst, Boundary):
                    first = j
                    break
            self.first_boundary.append(first)
            if first == len(instructions):
                open_mask |= 1 << i
            succ_bits.append([bit[s] for s in block.successors])
        self.rows = closure_rows(
            succ_bits, range(len(self.blocks) - 1, -1, -1), expand_mask=open_mask
        )

    def boundary_free_path_exists(
        self, a: Instruction, b: Instruction
    ) -> bool:
        """Is there a path from just after ``a`` to ``b`` crossing no boundary?"""
        block_a = a.parent
        instructions = block_a.instructions
        # Tail of a's block: find the target or get blocked in place.
        for i in range(instructions.index(a) + 1, len(instructions)):
            inst = instructions[i]
            if inst is b:
                return True
            if isinstance(inst, Boundary):
                return False
        # a's block exits boundary-free; one bit test against the closure,
        # then the target must sit before its own block's first boundary.
        block_b = b.parent
        bit_b = self.bit[block_b]
        if not (self.rows[self.bit[block_a]] >> bit_b) & 1:
            return False
        return block_b.instructions.index(b) < self.first_boundary[bit_b]


def _boundary_free_path_exists(func: Function, a: Instruction, b: Instruction) -> bool:
    """One-off form of :meth:`BoundarySegments.boundary_free_path_exists`."""
    return BoundarySegments(func).boundary_free_path_exists(a, b)


def find_idempotence_violations(
    func: Function, aa=None, am=None, analysis: Optional[AntiDepAnalysis] = None
) -> List[IdempotenceViolation]:
    """All memory antidependences not split by region boundaries.

    ``aa`` lets callers verify under the same alias assumptions the
    construction used (e.g. ``trust_argument_noalias``); ``am`` (an
    :class:`repro.analysis.manager.AnalysisManager`) supplies cached
    CFG/dominator/reachability snapshots so verification does not repeat
    the construction's graph work.  ``analysis`` supplies a prebuilt
    :class:`AntiDepAnalysis` outright — valid only when the function's
    loads, stores, calls, and CFG edges are unchanged since it was
    computed (``boundary`` insertion qualifies; unrolling does not).
    """
    if analysis is None:
        if am is not None:
            analysis = AntiDepAnalysis(
                func,
                aa,
                cfg=am.cfg(func),
                domtree=am.domtree(func),
                reach=am.reachability(func),
            )
        else:
            analysis = AntiDepAnalysis(func, aa)
    violations = []
    if not analysis.antideps:
        return violations
    segments = BoundarySegments(func)
    for antidep in analysis.antideps:
        if segments.boundary_free_path_exists(antidep.read, antidep.write):
            violations.append(IdempotenceViolation(antidep))
    return violations


def verify_idempotent_regions(
    func: Function, aa=None, am=None, analysis: Optional[AntiDepAnalysis] = None
) -> None:
    """Raise ``AssertionError`` listing any uncut memory antidependence."""
    violations = find_idempotence_violations(func, aa, am=am, analysis=analysis)
    if violations:
        details = "\n".join(repr(v) for v in violations)
        raise AssertionError(
            f"@{func.name}: {len(violations)} antidependence(s) inside regions:\n{details}"
        )
