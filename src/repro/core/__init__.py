"""repro.core — idempotent region construction (the paper's contribution).

Public API::

    from repro.core import (
        ConstructionConfig,
        construct_idempotent_regions,   # one function
        construct_module_regions,       # whole module
        RegionDecomposition,            # inspect the result
        verify_idempotent_regions,      # static post-condition
    )
"""

from repro.core.construction import (
    ConstructionConfig,
    ConstructionResult,
    construct_idempotent_regions,
    construct_module_regions,
)
from repro.core.cuts import (
    HEURISTIC_COVERAGE,
    HEURISTIC_LOOP,
    HittingSetProblem,
    solve_hitting_set,
)
from repro.core.regions import Region, RegionDecomposition
from repro.core.sizebound import bound_region_sizes
from repro.core.selfdep import (
    LoopCutReport,
    enforce_loop_cut_invariant,
    min_cuts_on_body_paths,
    self_dependent_phis,
)
from repro.core.verify import (
    IdempotenceViolation,
    find_idempotence_violations,
    verify_idempotent_regions,
)

__all__ = [
    "ConstructionConfig",
    "ConstructionResult",
    "HEURISTIC_COVERAGE",
    "HEURISTIC_LOOP",
    "HittingSetProblem",
    "IdempotenceViolation",
    "LoopCutReport",
    "Region",
    "RegionDecomposition",
    "construct_idempotent_regions",
    "bound_region_sizes",
    "construct_module_regions",
    "enforce_loop_cut_invariant",
    "find_idempotence_violations",
    "min_cuts_on_body_paths",
    "self_dependent_phis",
    "solve_hitting_set",
    "verify_idempotent_regions",
]
