"""Region size control (paper §6.2).

"While longer path lengths better tolerate long detection latencies,
minimizing the recovery re-execution cost favors shorter path lengths. ...
we aim to produce the longest possible paths, observing that path lengths
are often easily reduced as needed to suit application demands."

This pass is that reduction: given a maximum path length ``max_size``, it
inserts extra region boundaries so that no boundary-free instruction
sequence (along any CFG path) exceeds the bound. Used to trade runtime
overhead against detection-latency tolerance and recovery cost — the
optimization space the paper leaves to future work and our
``benchmarks/test_bench_region_size_sweep.py`` characterizes.

Algorithm: forward fixpoint on "instructions since the last boundary"
(meet = max over predecessors). Whenever the counter would exceed
``max_size``, a boundary is inserted (never between φs, which execute
atomically with block entry). Back edges feed the fixpoint, so cut-free
loops receive in-body cuts; callers must re-run the loop cut invariant
afterwards (the construction pipeline does).
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Boundary, Phi

#: Instructions that reset the counter: explicit boundaries and calls
#: (implicit restart points at machine level).
def _is_reset(inst) -> bool:
    from repro.ir.instructions import Call

    return isinstance(inst, (Boundary, Call))


def bound_region_sizes(func: Function, max_size: int) -> int:
    """Insert boundaries so no boundary-free path exceeds ``max_size``.

    Returns the number of boundaries inserted. ``max_size`` counts IR
    instructions, which lower roughly 1:2 to machine instructions.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    if func.is_declaration:
        return 0

    inserted = 0
    # Fixpoint: inserting a cut shortens downstream distances, so iterate
    # until no path overflows. At most one cut per instruction can ever be
    # needed, which bounds the loop.
    for _ in range(func.instruction_count() + 8):
        distance_in = _compute_distances(func, max_size)
        overflow = _find_overflow(func, distance_in, max_size)
        if overflow is None:
            return inserted
        block, index = overflow
        block.insert(index, Boundary())
        inserted += 1
    return inserted


def _compute_distances(func: Function, max_size: int) -> Dict[BasicBlock, int]:
    """Max instructions since a boundary at each block entry (capped)."""
    cap = max_size + 1  # saturate: beyond the bound, exact values no longer matter
    distance_in: Dict[BasicBlock, int] = {block: 0 for block in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            out = _block_out(block, distance_in[block], cap)
            for succ in block.successors:
                if out > distance_in[succ]:
                    distance_in[succ] = out
                    changed = True
    return distance_in


def _block_out(block: BasicBlock, dist_in: int, cap: int) -> int:
    count = dist_in
    for inst in block.instructions:
        if _is_reset(inst):
            count = 0
        elif isinstance(inst, Phi):
            continue  # φs lower to predecessor copies, counted there
        else:
            count = min(count + 1, cap)
    return count


def _find_overflow(func: Function, distance_in: Dict[BasicBlock, int], max_size: int):
    """First point where the counter exceeds the bound: (block, index)."""
    for block in func.blocks:
        count = distance_in[block]
        for i, inst in enumerate(block.instructions):
            if _is_reset(inst):
                count = 0
                continue
            if isinstance(inst, Phi):
                continue
            count += 1
            if count > max_size:
                return (block, i)
    return None
