"""Idempotent region construction (paper §4) — the pipeline entry point.

Steps, per function:

1. *Transform* (§4.1): SSA conversion + store-to-load forwarding (via the
   standard optimization pipeline), so that remaining antidependences are
   memory-level and conservatively clobber.
2. *Mandatory cuts*: region boundaries before and after every
   memory-touching call (the intra-procedural construction splits regions
   at call boundaries; cf. §3's "semantic and calls" category and §5's
   calling-convention handling).
3. *Cut memory antidependences* (§4.2.1): greedy hitting set over the
   dominator candidate sets, loop-depth heuristic (§4.3).
4. *Loop cut invariant* (§4.2.2): self-dependent-φ case analysis with the
   unroll-by-one enhancement (§5).
5. *Calling convention* (§5): a function left with a single region is
   split so return values may overwrite parameter registers.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.analysis.alias import AliasAnalysis
from repro.analysis.antideps import AntiDepAnalysis, Point
from repro.analysis.manager import (
    AnalysisManager,
    CFG_ANALYSES,
    NullAnalysisManager,
)
from repro.core.cuts import (
    HEURISTIC_COVERAGE,
    HEURISTIC_LOOP,
    HittingSetProblem,
    solve_hitting_set,
)
from repro.core.regions import RegionDecomposition
from repro.core.selfdep import LoopCutReport, enforce_loop_cut_invariant
from repro.core.sizebound import bound_region_sizes
from repro.core.verify import verify_idempotent_regions
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Boundary, Call, Instruction, Phi, Ret
from repro.ir.module import Module
from repro.transforms.pipeline import optimize_function


@dataclass
class ConstructionConfig:
    """Tuning knobs of the region construction."""

    #: Cut selection policy: "loop" (paper §4.3) or "coverage" (pure greedy).
    heuristic: str = HEURISTIC_LOOP
    #: Place boundaries around memory-touching calls (intra-procedural mode).
    cut_calls: bool = True
    #: Run SSA conversion / redundancy elimination first (§4.1).
    optimize_first: bool = True
    #: Apply the unroll-by-one enhancement in the §4.2.2 case analysis.
    unroll_self_dep: bool = True
    #: Loops larger than this (in blocks) are never unrolled.
    max_unroll_blocks: int = 12
    #: Split single-region functions for the calling convention (§5).
    split_single_region: bool = True
    #: Upper bound on boundary-free path length in IR instructions
    #: (None = unbounded, the paper's default of maximizing path length).
    #: See §6.2: shorter regions tolerate shorter detection latencies and
    #: re-execute less on recovery, at higher runtime overhead.
    max_region_size: Optional[int] = None
    #: Treat distinct pointer arguments as non-aliasing (restrict-style
    #: promise). The paper's §8 notes better aliasing information grows
    #: regions; its own Fig. 1 example assumes exactly this (footnote 1).
    trust_argument_noalias: bool = False
    #: Verify the result (no antidependence inside a region) and raise on bugs.
    verify: bool = True
    #: **Test hook** (fuzzer oracle self-test): silently discard the Nth
    #: chosen hitting-set cut, deliberately breaking the §4.2.1
    #: invariant.  Only meaningful with ``verify=False`` (and
    #: ``verify=False`` on :func:`repro.compiler.compile_minic` — both
    #: the static verifier and the machine oracle catch the hole
    #: otherwise).  The dynamic re-execution oracle in
    #: :mod:`repro.fuzz.oracle` must catch what this breaks.
    drop_hitting_set_cut: Optional[int] = None


@dataclass
class ConstructionResult:
    """What the construction did to one function."""

    function: str
    antidep_count: int = 0
    mandatory_cut_count: int = 0
    hitting_set_cut_count: int = 0
    loop_report: Optional[LoopCutReport] = None
    size_bound_cuts: int = 0
    single_region_splits: int = 0
    region_count: int = 0
    static_region_sizes: List[int] = field(default_factory=list)

    @property
    def total_boundaries(self) -> int:
        forced = self.loop_report.forced_cuts if self.loop_report else 0
        return (
            self.mandatory_cut_count
            + self.hitting_set_cut_count
            + forced
            + self.size_bound_cuts
            + self.single_region_splits
        )


def _call_cut_points(func: Function) -> List[Point]:
    """Mandatory boundaries before and after every call.

    Calls split regions in the intra-procedural construction (§3, §5).
    Pure builtins (sqrt, exp, ...) are cut as well: at the machine level
    any call is an implicit restart point, and the argument-register
    copies feeding it must not overwrite a region input — the boundary
    before the call puts those copies in the call's own region.
    """
    points: List[Point] = []
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            if isinstance(inst, Call):
                points.append((block, i))
                points.append((block, i + 1))
    return points


def _insert_boundaries(func: Function, points: List[Point]) -> int:
    """Materialize cut points as ``boundary`` instructions.

    Points are (block, index) pairs meaning "before the instruction
    currently at ``index``"; inserting bottom-up keeps earlier indices
    valid. Duplicate points collapse to a single boundary.
    """
    by_block: Dict[BasicBlock, Set[int]] = {}
    for block, index in points:
        by_block.setdefault(block, set()).add(index)
    inserted = 0
    for block, indices in by_block.items():
        for index in sorted(indices, reverse=True):
            block.insert(index, Boundary())
            inserted += 1
    return inserted


def _split_single_region(func: Function) -> int:
    """Boundary before every ``ret`` (§5 calling-convention handling).

    The return sequence overwrites the result register, which doubles as
    the first argument register read at function entry. Cutting before
    each return puts that overwrite in its own region, "allowing parameter
    values to be overwritten by return values". (The paper splits only
    single-region functions; we cut before every return because any
    boundary-free entry→ret path has the same hazard. One marker per
    return is the entire cost.)
    """
    splits = 0
    for block in func.blocks:
        terminator = block.terminator
        if isinstance(terminator, Ret):
            if len(block.instructions) >= 2 and isinstance(
                block.instructions[-2], Boundary
            ):
                continue
            block.insert_before(terminator, Boundary())
            splits += 1
    return splits


def construct_idempotent_regions(
    func: Function,
    config: Optional[ConstructionConfig] = None,
    manager: Optional[AnalysisManager] = None,
) -> ConstructionResult:
    """Partition ``func`` into idempotent regions, in place.

    All phases share one :class:`AnalysisManager` (``manager``, or a
    fresh one), so the CFG, dominator tree, reachability, and loop nest
    are each computed once and reused until a mutation invalidates them
    — boundary insertion preserves the CFG tier (a ``boundary`` is not a
    terminator), only unrolling forces a full recompute.  Results are
    bit-identical with and without the cache (a
    :class:`repro.analysis.manager.NullAnalysisManager` disables it).
    """
    config = config or ConstructionConfig()
    result = ConstructionResult(function=func.name)
    if func.is_declaration:
        return result
    am = manager if manager is not None else AnalysisManager()

    with obs.span("construction.function", func=func.name):
        if config.optimize_first:
            with obs.span("construction.ssa", func=func.name):
                optimize_function(func, am=am)

        with obs.span("construction.antideps", func=func.name):
            aa = AliasAnalysis(
                func, trust_argument_noalias=config.trust_argument_noalias
            )
            analysis = AntiDepAnalysis(
                func,
                aa,
                cfg=am.cfg(func),
                domtree=am.domtree(func),
                reach=am.reachability(func),
            )
        result.antidep_count = len(analysis.antideps)

        mandatory: List[Point] = _call_cut_points(func) if config.cut_calls else []

        with obs.span("construction.cuts", func=func.name):
            candidate_sets = [
                analysis.candidate_cuts(ad) for ad in analysis.antideps
            ]
            loop_info = am.loops(func)
            chosen = solve_hitting_set(
                HittingSetProblem(candidate_sets),
                loop_info=loop_info,
                heuristic=config.heuristic,
                preselected=mandatory,
            )
        if config.drop_hitting_set_cut is not None and chosen:
            del chosen[config.drop_hitting_set_cut % len(chosen)]
        result.mandatory_cut_count = len(set(mandatory))
        result.hitting_set_cut_count = len(chosen)

        if _insert_boundaries(func, mandatory + chosen):
            am.invalidate(func, preserve=CFG_ANALYSES)

        with obs.span("construction.loops", func=func.name):
            result.loop_report = enforce_loop_cut_invariant(
                func,
                unroll=config.unroll_self_dep,
                max_unroll_blocks=config.max_unroll_blocks,
                am=am,
            )
        if result.loop_report.forced_cuts:
            am.invalidate(func, preserve=CFG_ANALYSES)

        if config.max_region_size is not None:
            with obs.span("construction.sizebound", func=func.name):
                result.size_bound_cuts = bound_region_sizes(
                    func, config.max_region_size
                )
                if result.size_bound_cuts:
                    am.invalidate(func, preserve=CFG_ANALYSES)
                    # New in-loop cuts can break the loop invariant;
                    # re-establish it (never unrolling twice — the
                    # invariant pass tracks that).
                    enforce_loop_cut_invariant(
                        func, unroll=False,
                        max_unroll_blocks=config.max_unroll_blocks,
                        am=am,
                    )

        if config.split_single_region:
            result.single_region_splits = _split_single_region(func)
            if result.single_region_splits:
                am.invalidate(func, preserve=CFG_ANALYSES)

        with obs.span("construction.regions", func=func.name):
            # Every phase since the last invalidation preserved the CFG
            # tier (boundary markers only), so the cached snapshot is live.
            decomposition = RegionDecomposition(func, cfg=am.cfg(func))
        result.region_count = len(decomposition)
        result.static_region_sizes = decomposition.static_sizes()

        if config.verify:
            # Verify under the same alias assumptions the construction used.
            with obs.span("construction.verify", func=func.name):
                unrolled = (
                    result.loop_report is not None
                    and result.loop_report.loops_unrolled > 0
                )
                if unrolled:
                    # Unrolling cloned loads/stores: the antidep list from
                    # the antideps phase is stale, rebuild it from scratch.
                    verify_aa = AliasAnalysis(
                        func,
                        trust_argument_noalias=config.trust_argument_noalias,
                    )
                    verify_idempotent_regions(func, verify_aa, am=am)
                else:
                    # Everything since the antideps phase inserted only
                    # ``boundary`` markers — no memory instruction or CFG
                    # edge changed, so the antidep list is exactly the one
                    # already computed; verify it against the placement.
                    verify_idempotent_regions(func, am=am, analysis=analysis)

    _publish_metrics(result)
    return result


def _publish_metrics(result: ConstructionResult) -> None:
    """Feed one function's construction accounting into ``repro.obs``."""
    obs.counter("construction.antideps").inc(result.antidep_count)
    cuts = obs.counter("construction.cuts")
    cuts.inc(result.mandatory_cut_count, kind="call")
    cuts.inc(result.hitting_set_cut_count, kind="hitting_set")
    if result.loop_report:
        cuts.inc(result.loop_report.forced_cuts, kind="loop")
        obs.counter("construction.loops_unrolled").inc(
            result.loop_report.loops_unrolled
        )
    cuts.inc(result.size_bound_cuts, kind="size_bound")
    cuts.inc(result.single_region_splits, kind="single_region_split")
    obs.counter("construction.regions").inc(result.region_count)
    sizes = obs.histogram("construction.region_size")
    for size in result.static_region_sizes:
        sizes.observe(size)


def construct_module_regions(
    module: Module,
    config: Optional[ConstructionConfig] = None,
    analysis_cache: bool = True,
    manager: Optional[AnalysisManager] = None,
) -> Dict[str, ConstructionResult]:
    """Run the region construction over every defined function.

    ``analysis_cache=False`` makes every construction phase recompute
    its graph analyses from scratch (bit-identical output, used by the
    ``repro bench`` cached-vs-fresh comparison and by tests).  Passing
    an explicit ``manager`` lets long-lived callers (the ``repro serve``
    workers) share one :class:`AnalysisManager` across successive
    compiles instead of building a fresh one per module; output is
    bit-identical either way.

    The cyclic collector is paused for the duration of the pass: the
    rewrites detach thousands of instructions whose operand ``Use``
    records keep reference cycles, and letting the young-generation
    collector re-scan that churn mid-flight costs several percent of
    the pass.  Deferred garbage is reclaimed by the next natural
    collection after the pass returns.
    """
    if manager is None:
        manager = AnalysisManager() if analysis_cache else NullAnalysisManager()
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        return {
            func.name: construct_idempotent_regions(func, config, manager=manager)
            for func in module.defined_functions
        }
    finally:
        if was_enabled:
            gc.enable()
