"""Greedy hitting-set solver for antidependence cutting (paper §4.2.1).

The optimal region decomposition reduces to minimum vertex multicut, which
is NP-complete; the paper (and we) solve it through the hitting-set
formulation: for each antidependence ``(a, b)``, the candidate set
``S(a, b)`` contains program points through which *every* path from ``a``
to ``b`` passes (Lemma 1). A hitting set over all candidate sets is a valid
multicut, and the greedy most-intersections-first heuristic gives the
classic logarithmic approximation ratio.

Two selection policies are provided (paper §4.3):

- ``"coverage"`` — pure greedy: maximize newly hit sets per cut (optimizes
  *static* region count);
- ``"loop"`` — prefer cuts at the outermost loop-nesting depth first, then
  break ties by coverage (optimizes *dynamic* path length, the paper's
  heuristic).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.antideps import Point
from repro.analysis.loops import LoopInfo

HEURISTIC_LOOP = "loop"
HEURISTIC_COVERAGE = "coverage"


class HittingSetProblem:
    """A collection of candidate point sets, one per antidependence."""

    def __init__(self, sets: Sequence[FrozenSet[Point]]) -> None:
        for i, candidate in enumerate(sets):
            if not candidate:
                raise ValueError(f"candidate set #{i} is empty — no valid cut exists")
        self.sets: List[FrozenSet[Point]] = list(sets)

    @property
    def universe(self) -> Set[Point]:
        points: Set[Point] = set()
        for candidate in self.sets:
            points |= candidate
        return points


def solve_hitting_set(
    problem: HittingSetProblem,
    loop_info: Optional[LoopInfo] = None,
    heuristic: str = HEURISTIC_LOOP,
    preselected: Iterable[Point] = (),
) -> List[Point]:
    """Choose cut points hitting every candidate set.

    ``preselected`` points (e.g. mandatory call-site cuts) are applied
    first for free; only sets they miss require new cuts. Returns the
    newly chosen points in selection order.
    """
    if heuristic not in (HEURISTIC_LOOP, HEURISTIC_COVERAGE):
        raise ValueError(f"unknown heuristic {heuristic!r}")

    preselected_set = set(preselected)
    remaining = [s for s in problem.sets if not (s & preselected_set)]
    chosen: List[Point] = []

    def depth_of(point: Point) -> int:
        if loop_info is None:
            return 0
        return loop_info.depth_of(point[0])

    # Stable ordering key for deterministic output across runs.
    def stable_key(point: Point) -> Tuple[int, int]:
        block, index = point
        try:
            block_pos = block.parent.blocks.index(block)
        except (AttributeError, ValueError):
            block_pos = 0
        return (block_pos, index)

    while remaining:
        coverage: Dict[Point, int] = {}
        for candidate_set in remaining:
            for point in candidate_set:
                coverage[point] = coverage.get(point, 0) + 1

        if heuristic == HEURISTIC_LOOP:
            # Outermost nesting depth first; ties by most sets newly hit.
            best = min(
                coverage,
                key=lambda p: (depth_of(p), -coverage[p], stable_key(p)),
            )
        else:
            best = min(coverage, key=lambda p: (-coverage[p], stable_key(p)))

        chosen.append(best)
        remaining = [s for s in remaining if best not in s]

    return chosen


def points_hit(candidate_set: FrozenSet[Point], cuts: Iterable[Point]) -> bool:
    """True if any selected cut lies in the candidate set."""
    cut_set = set(cuts)
    return bool(candidate_set & cut_set)
