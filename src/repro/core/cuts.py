"""Greedy hitting-set solver for antidependence cutting (paper §4.2.1).

The optimal region decomposition reduces to minimum vertex multicut, which
is NP-complete; the paper (and we) solve it through the hitting-set
formulation: for each antidependence ``(a, b)``, the candidate set
``S(a, b)`` contains program points through which *every* path from ``a``
to ``b`` passes (Lemma 1). A hitting set over all candidate sets is a valid
multicut, and the greedy most-intersections-first heuristic gives the
classic logarithmic approximation ratio.

Two selection policies are provided (paper §4.3):

- ``"coverage"`` — pure greedy: maximize newly hit sets per cut (optimizes
  *static* region count);
- ``"loop"`` — prefer cuts at the outermost loop-nesting depth first, then
  break ties by coverage (optimizes *dynamic* path length, the paper's
  heuristic).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.antideps import Point
from repro.analysis.loops import LoopInfo

HEURISTIC_LOOP = "loop"
HEURISTIC_COVERAGE = "coverage"


class HittingSetProblem:
    """A collection of candidate point sets, one per antidependence."""

    def __init__(self, sets: Sequence[FrozenSet[Point]]) -> None:
        for i, candidate in enumerate(sets):
            if not candidate:
                raise ValueError(f"candidate set #{i} is empty — no valid cut exists")
        self.sets: List[FrozenSet[Point]] = list(sets)

    @property
    def universe(self) -> Set[Point]:
        points: Set[Point] = set()
        for candidate in self.sets:
            points |= candidate
        return points


def stable_key(point: Point) -> Tuple[int, int]:
    """Stable ordering key for a program point: ``(block position, index)``.

    Determinism contract: the greedy selection below breaks heuristic ties
    with ``min`` over this key, which is a *total* order only because the
    key is unique — every point's block must be parented in exactly one
    function, so ``(position of block in func.blocks, instruction index)``
    collides for no two distinct points.  A block with no parent (or not
    present in its parent's block list) has no position; silently mapping
    it to 0 — as an earlier version did — aliases it with the entry block
    and makes the tie-break order depend on dict iteration order.  Such a
    point indicates detached IR reaching the solver, so it raises under
    ``__debug__``; with assertions disabled (``python -O``) it degrades to
    position 0 to stay total.
    """
    block, index = point
    parent = getattr(block, "parent", None)
    block_pos: Optional[int] = None
    if parent is not None:
        try:
            block_pos = parent.blocks.index(block)
        except ValueError:
            block_pos = None
    if block_pos is None:
        if __debug__:
            name = getattr(block, "name", "?")
            raise ValueError(
                f"hitting-set point in block {name!r} has no position: the "
                "block is unparented or absent from its function's block "
                "list — detached IR reached the solver"
            )
        block_pos = 0
    return (block_pos, index)


def solve_hitting_set(
    problem: HittingSetProblem,
    loop_info: Optional[LoopInfo] = None,
    heuristic: str = HEURISTIC_LOOP,
    preselected: Iterable[Point] = (),
) -> List[Point]:
    """Choose cut points hitting every candidate set.

    ``preselected`` points (e.g. mandatory call-site cuts) are applied
    first for free; only sets they miss require new cuts. Returns the
    newly chosen points in selection order.

    Coverage counts are maintained incrementally: picking a point retires
    the sets containing it and decrements the counts of their other
    points, rather than rebuilding the coverage map from every surviving
    set each round.  Points whose count reaches zero are deleted — a
    zero-coverage point hits nothing, and at a lower loop depth it would
    otherwise win the ``min`` and emit a useless cut.  Output order is
    identical to the rebuild-per-round formulation because the selection
    key is a total order (see :func:`stable_key`), making the ``min``
    independent of dict iteration order.
    """
    if heuristic not in (HEURISTIC_LOOP, HEURISTIC_COVERAGE):
        raise ValueError(f"unknown heuristic {heuristic!r}")

    preselected_set = set(preselected)
    sets = [s for s in problem.sets if not (s & preselected_set)]
    chosen: List[Point] = []

    coverage: Dict[Point, int] = {}
    sets_by_point: Dict[Point, List[int]] = {}
    for idx, candidate_set in enumerate(sets):
        for point in candidate_set:
            coverage[point] = coverage.get(point, 0) + 1
            sets_by_point.setdefault(point, []).append(idx)

    # Per-point key components are loop-invariant: memoize once.
    if heuristic == HEURISTIC_LOOP:
        if loop_info is None:
            rank = {p: (0, stable_key(p)) for p in coverage}
        else:
            rank = {p: (loop_info.depth_of(p[0]), stable_key(p)) for p in coverage}
        # Outermost nesting depth first; ties by most sets newly hit.
        key = lambda p: (rank[p][0], -coverage[p], rank[p][1])
    else:
        rank = {p: stable_key(p) for p in coverage}
        key = lambda p: (-coverage[p], rank[p])

    alive = [True] * len(sets)
    while coverage:
        best = min(coverage, key=key)
        chosen.append(best)
        for idx in sets_by_point[best]:
            if not alive[idx]:
                continue
            alive[idx] = False
            for point in sets[idx]:
                count = coverage.get(point)
                if count is None:
                    continue
                if count == 1:
                    del coverage[point]
                else:
                    coverage[point] = count - 1

    return chosen


def points_hit(candidate_set: FrozenSet[Point], cuts: Iterable[Point]) -> bool:
    """True if any selected cut lies in the candidate set."""
    cut_set = set(cuts)
    return bool(candidate_set & cut_set)
