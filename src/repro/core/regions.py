"""Region decomposition datatypes (paper §2.3, §4.2).

After construction, region boundaries exist in the IR as ``boundary``
instructions. An *idempotent region* is the set of instructions reachable
from a header (the function entry, or the point just after a boundary)
without crossing another boundary; a *path* is one dynamic trace through a
region. This module recovers that decomposition from the marked IR for
statistics, verification, and tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Boundary, Instruction


class Region:
    """One idempotent region: header point plus member instructions."""

    def __init__(self, header: Tuple[BasicBlock, int], index: int) -> None:
        self.header = header
        self.index = index
        self.instructions: List[Instruction] = []

    @property
    def header_block(self) -> BasicBlock:
        return self.header[0]

    @property
    def size(self) -> int:
        """Members excluding boundary markers.

        :meth:`RegionDecomposition._collect` — the only writer — stops
        *before* each boundary, so the member list never contains one and
        the count is simply its length.
        """
        return len(self.instructions)

    def __repr__(self) -> str:
        block, idx = self.header
        return f"<Region #{self.index} @{block.name}[{idx}] size={self.size}>"


class RegionDecomposition:
    """All regions of a function with boundary markers in place."""

    def __init__(self, func: Function, cfg=None) -> None:
        self.func = func
        # An up-to-date CFG snapshot (repro.analysis.cfg.CFG) makes the
        # successor walks O(1) dict reads instead of terminator re-scans.
        self._cfg = cfg
        self.regions: List[Region] = []
        self._membership: Optional[Dict[Instruction, Set[int]]] = None
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def headers(self) -> List[Tuple[BasicBlock, int]]:
        """Region entry points: function entry + after every boundary."""
        points: List[Tuple[BasicBlock, int]] = []
        if self.func.blocks:
            points.append((self.func.entry, 0))
        for block in self.func.blocks:
            for i, inst in enumerate(block.instructions):
                if isinstance(inst, Boundary):
                    points.append((block, i + 1))
        return points

    def _build(self) -> None:
        # One sweep finds every boundary; the per-region walks then slice
        # whole segments between boundary positions instead of re-testing
        # each instruction.
        bounds: Dict[BasicBlock, List[int]] = {}
        points: List[Tuple[BasicBlock, int]] = []
        func = self.func
        if func.blocks:
            points.append((func.entry, 0))
        for block in func.blocks:
            positions = [
                i
                for i, inst in enumerate(block.instructions)
                if inst.__class__ is Boundary
            ]
            if positions:
                bounds[block] = positions
                points.extend((block, i + 1) for i in positions)
        for index, header in enumerate(points):
            region = Region(header, index)
            self._collect(region, bounds)
            self.regions.append(region)

    def _collect(self, region: Region, bounds: Dict[BasicBlock, List[int]]) -> None:
        """Instructions reachable from the header without crossing a cut."""
        if self._cfg is not None:
            successors_of = self._cfg.successors.__getitem__
        else:
            successors_of = lambda b: b.successors  # noqa: E731
        members = region.instructions
        if not bounds:
            # Boundary-free function: the single region is the whole
            # reachable instruction stream, each block visited once (the
            # same DFS order, without per-segment dedup bookkeeping).
            seen_blocks: Set[Tuple[int, int]] = set()
            block_stack: List[BasicBlock] = [region.header[0]]
            while block_stack:
                block = block_stack.pop()
                key = (id(block), 0)
                if key in seen_blocks:
                    continue
                seen_blocks.add(key)
                members.extend(block.instructions)
                if block.instructions:
                    for succ in successors_of(block):
                        block_stack.append(succ)
            return
        seen: Set[Tuple[int, int]] = set()
        added: Set[Instruction] = set()
        stack: List[Tuple[BasicBlock, int]] = [region.header]
        while stack:
            block, start = stack.pop()
            key = (id(block), start)
            if key in seen:
                continue
            seen.add(key)
            instructions = block.instructions
            stop = None
            for position in bounds.get(block, ()):
                if position >= start:
                    stop = position
                    break
            for inst in instructions[start:stop]:
                if inst not in added:
                    added.add(inst)
                    members.append(inst)
            if stop is None and instructions:
                for succ in successors_of(block):
                    stack.append((succ, 0))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def membership(self) -> Dict[Instruction, Set[int]]:
        """Instruction → indices of the regions containing it.

        Inverted from the per-region member lists on first access: the
        construction pipeline builds a decomposition per function for its
        counts/sizes only, and paying for the inverse map there would
        dwarf the queries that never come.
        """
        if self._membership is None:
            membership: Dict[Instruction, Set[int]] = {}
            for region in self.regions:
                for inst in region.instructions:
                    membership.setdefault(inst, set()).add(region.index)
            self._membership = membership
        return self._membership

    def regions_containing(self, inst: Instruction) -> List[Region]:
        return [self.regions[i] for i in sorted(self.membership.get(inst, ()))]

    @property
    def boundary_count(self) -> int:
        return sum(
            1
            for block in self.func.blocks
            for inst in block.instructions
            if isinstance(inst, Boundary)
        )

    def static_sizes(self) -> List[int]:
        return [region.size for region in self.regions]

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)


def boundary_live_sets(
    func: Function, manager=None
) -> List[Tuple[Tuple[BasicBlock, int], Set[object]]]:
    """Live value set at each region header of a boundary-marked function.

    The live-ins at a region header are exactly what a checkpointing
    scheme must snapshot there: every value the downstream execution may
    still read. Returned as ``(header, values)`` pairs in
    :meth:`RegionDecomposition.headers` order, computed from the same
    :class:`~repro.analysis.liveness.Liveness` the construction passes
    use (pass a shared :class:`~repro.analysis.manager.AnalysisManager`
    to reuse its cache).
    """
    if manager is None:
        from repro.analysis.manager import NullAnalysisManager

        manager = NullAnalysisManager()
    liveness = manager.liveness(func)
    sets: List[Tuple[Tuple[BasicBlock, int], Set[object]]] = []
    for block, index in RegionDecomposition(func).headers():
        instructions = block.instructions
        if index < len(instructions):
            live = liveness.live_before(instructions[index])
        else:
            # A boundary as the last instruction of a block: the header
            # point is the block's exit edge.
            live = liveness.live_out_at(block)
        sets.append(((block, index), live))
    return sets
