"""Region decomposition datatypes (paper §2.3, §4.2).

After construction, region boundaries exist in the IR as ``boundary``
instructions. An *idempotent region* is the set of instructions reachable
from a header (the function entry, or the point just after a boundary)
without crossing another boundary; a *path* is one dynamic trace through a
region. This module recovers that decomposition from the marked IR for
statistics, verification, and tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Boundary, Instruction


class Region:
    """One idempotent region: header point plus member instructions."""

    def __init__(self, header: Tuple[BasicBlock, int], index: int) -> None:
        self.header = header
        self.index = index
        self.instructions: List[Instruction] = []

    @property
    def header_block(self) -> BasicBlock:
        return self.header[0]

    @property
    def size(self) -> int:
        """Members excluding boundary markers."""
        return sum(1 for inst in self.instructions if not isinstance(inst, Boundary))

    def __repr__(self) -> str:
        block, idx = self.header
        return f"<Region #{self.index} @{block.name}[{idx}] size={self.size}>"


class RegionDecomposition:
    """All regions of a function with boundary markers in place."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.regions: List[Region] = []
        self.membership: Dict[Instruction, Set[int]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def headers(self) -> List[Tuple[BasicBlock, int]]:
        """Region entry points: function entry + after every boundary."""
        points: List[Tuple[BasicBlock, int]] = []
        if self.func.blocks:
            points.append((self.func.entry, 0))
        for block in self.func.blocks:
            for i, inst in enumerate(block.instructions):
                if isinstance(inst, Boundary):
                    points.append((block, i + 1))
        return points

    def _build(self) -> None:
        for index, header in enumerate(self.headers()):
            region = Region(header, index)
            self._collect(region)
            self.regions.append(region)
            for inst in region.instructions:
                self.membership.setdefault(inst, set()).add(index)

    def _collect(self, region: Region) -> None:
        """Instructions reachable from the header without crossing a cut."""
        seen: Set[Tuple[int, int]] = set()
        added: Set[int] = set()
        stack: List[Tuple[BasicBlock, int]] = [region.header]
        while stack:
            block, start = stack.pop()
            key = (id(block), start)
            if key in seen:
                continue
            seen.add(key)
            i = start
            instructions = block.instructions
            stopped = False
            while i < len(instructions):
                inst = instructions[i]
                if isinstance(inst, Boundary):
                    stopped = True
                    break
                if id(inst) not in added:
                    added.add(id(inst))
                    region.instructions.append(inst)
                i += 1
            if not stopped and instructions:
                for succ in block.successors:
                    stack.append((succ, 0))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def regions_containing(self, inst: Instruction) -> List[Region]:
        return [self.regions[i] for i in sorted(self.membership.get(inst, ()))]

    @property
    def boundary_count(self) -> int:
        return sum(
            1
            for block in self.func.blocks
            for inst in block.instructions
            if isinstance(inst, Boundary)
        )

    def static_sizes(self) -> List[int]:
        return [region.size for region in self.regions]

    def __len__(self) -> int:
        return len(self.regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)


def boundary_live_sets(
    func: Function, manager=None
) -> List[Tuple[Tuple[BasicBlock, int], Set[object]]]:
    """Live value set at each region header of a boundary-marked function.

    The live-ins at a region header are exactly what a checkpointing
    scheme must snapshot there: every value the downstream execution may
    still read. Returned as ``(header, values)`` pairs in
    :meth:`RegionDecomposition.headers` order, computed from the same
    :class:`~repro.analysis.liveness.Liveness` the construction passes
    use (pass a shared :class:`~repro.analysis.manager.AnalysisManager`
    to reuse its cache).
    """
    if manager is None:
        from repro.analysis.manager import NullAnalysisManager

        manager = NullAnalysisManager()
    liveness = manager.liveness(func)
    sets: List[Tuple[Tuple[BasicBlock, int], Set[object]]] = []
    for block, index in RegionDecomposition(func).headers():
        instructions = block.instructions
        if index < len(instructions):
            live = liveness.live_before(instructions[index])
        else:
            # A boundary as the last instruction of a block: the header
            # point is the block's exit edge.
            live = liveness.live_out_at(block)
        sets.append(((block, index), live))
    return sets
