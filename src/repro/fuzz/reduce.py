"""Delta-debugging reducer for fuzzer-found failures.

Shrinks a failing :class:`~repro.fuzz.generator.ProgramSpec` to a
minimal program that *still fails the same oracles*, by transforming
the statement tree — never the text — so every candidate is
syntactically valid MiniC:

- ddmin-style chunk removal over every statement list (main body,
  branch arms, loop bodies, helper bodies);
- structural simplification: an ``if`` collapses to one of its arms, a
  loop's trip count drops to 1, a loop unwraps to its body (the loop
  variable kept alive as a plain declaration), the outer loop's trip
  count shrinks;
- cleanup: helpers no longer called anywhere are deleted, then unused
  global scalars.

The algorithm is greedy-to-fixpoint and uses no randomness, so the
same failing spec and predicate always reduce to the same minimal
program.  Every accepted step strictly shrinks the tree (or a trip
count), so the result is never larger than the input and termination
is structural.

The *predicate* decides "still failing": callers usually build it with
:func:`failure_predicate`, which re-runs the oracle stack and accepts a
candidate only when the same set of oracles fails.  Candidates that
fail to compile or fail *differently* are simply rejected.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro import obs
from repro.fuzz.generator import (
    GeneratedProgram,
    Helper,
    If,
    Leaf,
    Loop,
    ProgramSpec,
    Stmt,
    render,
)

Predicate = Callable[[str], bool]


@dataclass
class ReduceResult:
    spec: ProgramSpec
    source: str
    steps: int          # accepted reductions
    tests: int          # predicate evaluations


def _stmt_lists(spec: ProgramSpec) -> List[List[Stmt]]:
    """Every mutable statement list in the tree, outermost first."""
    lists: List[List[Stmt]] = [spec.body]
    for helper in spec.helpers:
        lists.append(helper.body)
    index = 0
    while index < len(lists):
        for stmt in lists[index]:
            if isinstance(stmt, If):
                lists.append(stmt.body)
                if stmt.orelse:
                    lists.append(stmt.orelse)
            elif isinstance(stmt, Loop):
                lists.append(stmt.body)
        index += 1
    return lists


def _node_weight(stmts: Sequence[Stmt]) -> int:
    total = 0
    for stmt in stmts:
        total += 1
        if isinstance(stmt, If):
            total += _node_weight(stmt.body) + _node_weight(stmt.orelse)
        elif isinstance(stmt, Loop):
            total += _node_weight(stmt.body)
    return total


def spec_weight(spec: ProgramSpec) -> int:
    """Tree-size metric every accepted reduction strictly decreases
    (trip counts weigh in so trip shrinking is also progress)."""
    weight = _node_weight(spec.body) + spec.outer_trips
    for helper in spec.helpers:
        weight += 1 + _node_weight(helper.body)
    for stmts in _stmt_lists(spec):
        for stmt in stmts:
            if isinstance(stmt, Loop):
                weight += stmt.trips
    return weight


class _Reducer:
    def __init__(self, spec: ProgramSpec, predicate: Predicate) -> None:
        self.spec = copy.deepcopy(spec)
        self.predicate = predicate
        self.steps = 0
        self.tests = 0

    # -- candidate evaluation ------------------------------------------
    def _accept(self, candidate: ProgramSpec) -> bool:
        self.tests += 1
        try:
            ok = self.predicate(render(candidate))
        except Exception:
            ok = False  # a candidate that explodes the predicate is dead
        if ok:
            self.spec = candidate
            self.steps += 1
        return ok

    # -- passes --------------------------------------------------------
    # Each pass scans the tree in a fixed order and applies the FIRST
    # accepted transformation, then reports success so the driver
    # rescans a fresh enumeration (nested statement lists shift when
    # their parent statement is removed — restarting keeps list indices
    # honest).  Greedy first-improvement + fixed scan order = the same
    # input always reduces through the same sequence of steps.

    def _remove_one(self) -> bool:
        """ddmin flavour: try deleting chunks (largest first) from
        every statement list."""
        lists = _stmt_lists(self.spec)
        for list_index, stmts in enumerate(lists):
            n = len(stmts)
            chunk = n
            while chunk >= 1:
                for start in range(0, n, chunk):
                    candidate = copy.deepcopy(self.spec)
                    target = _stmt_lists(candidate)[list_index]
                    if start >= len(target):
                        continue
                    del target[start:start + chunk]
                    if self._accept(candidate):
                        return True
                chunk //= 2
        return False

    def _simplify_one(self) -> bool:
        """Collapse an if, unwrap or shrink a loop, or shrink the
        outer loop's trip count."""
        lists = _stmt_lists(self.spec)
        for list_index, stmts in enumerate(lists):
            for position, stmt in enumerate(stmts):
                for replacement in _replacements(stmt):
                    candidate = copy.deepcopy(self.spec)
                    target = _stmt_lists(candidate)[list_index]
                    target[position:position + 1] = copy.deepcopy(replacement)
                    if self._accept(candidate):
                        return True
        if self.spec.outer_trips > 1:
            candidate = copy.deepcopy(self.spec)
            candidate.outer_trips = 1
            if self._accept(candidate):
                return True
        return False

    def _cleanup_one(self) -> bool:
        """Drop a helper or global scalar no remaining statement uses."""
        body_text = render(self.spec)
        for helper in self.spec.helpers:
            # render() emits the definition itself once: "int h0(int a…".
            if body_text.count(f"{helper.name}(") <= 1:
                candidate = copy.deepcopy(self.spec)
                candidate.helpers = [
                    h for h in candidate.helpers if h.name != helper.name
                ]
                if self._accept(candidate):
                    return True
        for scalar in self.spec.scalars:
            if body_text.count(scalar) <= 2:  # decl + final fold only
                candidate = copy.deepcopy(self.spec)
                candidate.scalars = [s for s in candidate.scalars if s != scalar]
                if self._accept(candidate):
                    return True
        return False

    def run(self) -> ReduceResult:
        progress = True
        while progress:
            progress = (
                self._remove_one()
                or self._simplify_one()
                or self._cleanup_one()
            )
        obs.counter("fuzz.reduce.steps").inc(self.steps)
        obs.counter("fuzz.reduce.tests").inc(self.tests)
        return ReduceResult(
            spec=self.spec, source=render(self.spec),
            steps=self.steps, tests=self.tests,
        )


def _replacements(stmt: Stmt) -> List[List[Stmt]]:
    """Smaller stand-ins for one statement, most aggressive first."""
    options: List[List[Stmt]] = []
    if isinstance(stmt, If):
        options.append(list(stmt.body))        # keep then-arm only
        if stmt.orelse:
            options.append(list(stmt.orelse))  # keep else-arm only
    elif isinstance(stmt, Loop):
        # Unwrap: body once, loop variable kept as a plain declaration
        # so body expressions referencing it stay well-formed.
        options.append([Leaf(f"int {stmt.var} = 0;")] + list(stmt.body))
        if stmt.trips > 1:
            shrunk = Loop(stmt.var, 1, list(stmt.body), style=stmt.style)
            options.append([shrunk])
    return options


def reduce_spec(spec: ProgramSpec, predicate: Predicate) -> ReduceResult:
    """Shrink ``spec`` while ``predicate(source)`` stays true.

    ``predicate(render(spec))`` must hold on entry — reducing a
    non-failing program is a caller bug and raises ``ValueError``.
    """
    if not predicate(render(spec)):
        raise ValueError("reduce_spec: the input program does not satisfy "
                         "the failure predicate")
    return _Reducer(spec, predicate).run()


def reduce_program(
    program: GeneratedProgram, predicate: Predicate
) -> ReduceResult:
    """Convenience wrapper over :func:`reduce_spec`."""
    return reduce_spec(program.spec, predicate)


def failure_predicate(
    oracles: Tuple[str, ...],
    config=None,
    verify: bool = True,
    multi_fault: bool = True,
    max_forced: Optional[int] = None,
) -> Predicate:
    """A predicate that holds iff the candidate fails *exactly* the
    given set of oracles (the original failure's signature), so
    reduction never wanders onto a different bug."""
    from repro.fuzz.oracle import check_source

    signature = tuple(sorted(set(oracles)))

    def predicate(source: str) -> bool:
        report = check_source(
            source, config=config, verify=verify,
            multi_fault=multi_fault, max_forced=max_forced,
        )
        return report.failed_oracles == signature

    return predicate
