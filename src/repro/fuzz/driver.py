"""Fuzz campaign orchestration on the PR 1/3 harness.

A fuzz campaign is a set of independent trials — one generator seed
each — run through :class:`~repro.harness.executor.TaskExecutor`
(parallel, retried, chaos-testable) and recorded in the same JSON-lines
:class:`~repro.harness.campaign.RunManifest` fault campaigns use, so
fuzz runs are resumable and torn manifests self-heal.

Statuses follow the campaign taxonomy:

- ``done`` — all oracles passed; skipped on resume.
- ``quarantined`` — an *oracle failure* (a real compiler bug witness):
  recorded with the failing oracle set, skipped on resume (a failing
  seed stays failing), surfaced in the report, minimized into a
  reproducer.
- ``failed`` — infrastructure failure (worker lost, timeout after
  retries); re-run on resume.

Determinism: trial ``i``'s generator seed is
``derive_seed(seed, "fuzz.trial", i)`` (spawn-key style), so any
``--jobs`` sharding or resumed invocation checks exactly the trial set
a serial run does, and the summary is bit-identical.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.fuzz.generator import (
    GEN_VERSION,
    GenConfig,
    generate,
    trial_seed,
)
from repro.fuzz.oracle import check_source
from repro.fuzz.reduce import failure_predicate, reduce_program
from repro.harness.campaign import (
    RunManifest,
    STATUS_DONE,
    STATUS_FAILED,
    STATUS_QUARANTINED,
    UnitRecord,
)
from repro.harness.executor import TaskExecutor
from repro.harness.report import Telemetry
from repro.harness.resilience import UNIT_ERROR, ChaosPolicy, RetryPolicy


@dataclass
class FuzzFailure:
    """One failing trial: its coordinates and witness."""

    index: int
    seed: int                      # generator seed of the trial
    oracles: Tuple[str, ...]
    detail: str
    reproducer: Optional[str] = None  # path of the (minimized) source


@dataclass
class FuzzSummary:
    trials: int = 0
    seed: int = 0
    executed: int = 0
    passed: int = 0
    skipped: int = 0               # resumed from manifest as done
    infra_failed: int = 0          # harness-level failures (retried on resume)
    checkpoints: int = 0           # total forced-recovery points exercised
    forced_runs: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    budget_exhausted: bool = False
    remaining: int = 0             # trials not run (budget stop)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.infra_failed


def _unit_id(seed: int, index: int) -> str:
    return f"fuzz:g{GEN_VERSION}:seed{seed}:t{index}"


def fuzz_unit(payload: dict) -> dict:
    """Worker: generate trial ``index``'s program and run every oracle.

    Returns a JSON-serializable row; oracle failures are *data*, not
    exceptions — the parent decides quarantine, so the executor's retry
    machinery stays reserved for genuine infrastructure faults.
    """
    gen_seed = payload["trial_seed"]
    program = generate(gen_seed, GenConfig(**payload.get("gen", {})))
    report = check_source(
        program.source,
        multi_fault=payload.get("multi_fault", True),
        max_forced=payload.get("max_forced"),
    )
    obs.counter("fuzz.trials").inc(
        status="pass" if report.ok else "fail"
    )
    return {
        "trial_seed": gen_seed,
        "index": payload["index"],
        "ok": report.ok,
        "oracles": list(report.failed_oracles),
        "detail": "; ".join(str(f) for f in report.failures[:4]),
        "checkpoints": report.checkpoints,
        "forced_runs": report.forced_runs,
        "instructions": report.instructions,
    }


def _write_reproducer(
    out_dir: str, failure: FuzzFailure, source: str, minimized: bool,
    campaign_seed: int,
) -> str:
    os.makedirs(out_dir, exist_ok=True)
    name = f"fuzz-g{GEN_VERSION}-s{failure.seed}.c"
    path = os.path.join(out_dir, name)
    oracles = ",".join(failure.oracles) or "unknown"
    header = (
        f"// repro.fuzz reproducer ({'minimized' if minimized else 'raw'})\n"
        f"// generator: v{GEN_VERSION}"
        f"  campaign seed: {campaign_seed}"
        f"  trial: {failure.index}"
        f"  trial seed: {failure.seed}\n"
        f"// failing oracle(s): {oracles}\n"
        f"// detail: {failure.detail[:200]}\n"
        f"// replayed by tests/test_regression_corpus.py\n"
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(header + source)
    obs.counter("fuzz.reproducers").inc()
    return path


def run_fuzz_campaign(
    trials: int = 50,
    seed: int = 0,
    jobs: int = 1,
    shrink: bool = True,
    time_budget: Optional[float] = None,
    manifest_path: Optional[str] = None,
    out_dir: str = os.path.join("examples", "regressions"),
    gen: Optional[dict] = None,
    multi_fault: bool = True,
    max_forced: Optional[int] = None,
    max_reproducers: int = 5,
    retry: Optional[RetryPolicy] = None,
    unit_timeout: Optional[float] = None,
    chaos: Optional[ChaosPolicy] = None,
    telemetry: Optional[Telemetry] = None,
) -> FuzzSummary:
    """Run a differential fuzzing campaign; returns the summary.

    ``time_budget`` (seconds) stops launching new trials once exceeded;
    completed trials are already in the manifest, so a later invocation
    picks up where the budget ran out.
    """
    started = time.monotonic()
    telemetry = telemetry or Telemetry(label="fuzz campaign")
    observer = obs.get_observer()
    manifest = RunManifest(manifest_path) if manifest_path else None
    if manifest_path:
        observer.log(f"fuzz manifest: {manifest_path}")

    units: List[Tuple[str, dict]] = []
    for index in range(trials):
        units.append((
            _unit_id(seed, index),
            {
                "index": index,
                "trial_seed": trial_seed(seed, index),
                "gen": dict(gen or {}),
                "multi_fault": multi_fault,
                "max_forced": max_forced,
            },
        ))

    records: Dict[str, UnitRecord] = manifest.load() if manifest else {}
    summary = FuzzSummary(trials=trials, seed=seed)
    todo: List[Tuple[str, dict]] = []
    for uid, payload in units:
        record = records.get(uid)
        if record is not None and record.ok:
            summary.skipped += 1
        elif record is not None and record.quarantined:
            # A recorded oracle failure stays failing: keep its witness
            # without re-running the trial.
            summary.skipped += 1
        else:
            todo.append((uid, payload))
    if manifest is not None:
        observer.log(
            f"fuzz resume: {summary.skipped} of {trials} trials already "
            f"in manifest, {len(todo)} to run"
        )

    resilient = retry is not None or unit_timeout is not None or chaos is not None
    executor = TaskExecutor(
        jobs, retry=retry, unit_timeout=unit_timeout, chaos=chaos
    )
    with telemetry.phase("fuzz", units=len(todo)):
        stream = executor.imap(
            fuzz_unit,
            [payload for _, payload in todo],
            keys=[uid for uid, _ in todo],
        )
        for result in stream:
            if result.ok and result.value.get("ok"):
                record = UnitRecord(
                    unit_id=str(result.key), status=STATUS_DONE,
                    seconds=result.seconds, data=result.value,
                    attempts=result.attempts,
                )
                summary.executed += 1
                observer.counter("fuzz.units").inc(status="passed")
            elif result.ok:
                # Oracle failure: quarantine the seed (permanently
                # failing by construction — retrying cannot help).
                record = UnitRecord(
                    unit_id=str(result.key), status=STATUS_QUARANTINED,
                    seconds=result.seconds, data=result.value,
                    attempts=result.attempts,
                )
                summary.executed += 1
                observer.counter("fuzz.units").inc(status="quarantined")
            else:
                status = STATUS_QUARANTINED if resilient else STATUS_FAILED
                record = UnitRecord(
                    unit_id=str(result.key), status=status,
                    seconds=result.seconds,
                    data={"error": result.error, "infra": True,
                          "category": result.category or UNIT_ERROR},
                    attempts=result.attempts,
                )
                observer.counter("fuzz.units").inc(status="infra_failed")
            records[record.unit_id] = record
            if manifest:
                manifest.append(record)
            if (
                time_budget is not None
                and time.monotonic() - started >= time_budget
            ):
                summary.budget_exhausted = True
                stream.close()
                break

    # ---- settle: fold every known record into the summary ------------
    seen = 0
    for index, (uid, payload) in enumerate(units):
        record = records.get(uid)
        if record is None:
            continue
        seen += 1
        data = record.data or {}
        if record.ok:
            summary.passed += 1
            summary.checkpoints += int(data.get("checkpoints", 0))
            summary.forced_runs += int(data.get("forced_runs", 0))
        elif data.get("infra") or "oracles" not in data:
            summary.infra_failed += 1
        else:
            summary.checkpoints += int(data.get("checkpoints", 0))
            summary.forced_runs += int(data.get("forced_runs", 0))
            summary.failures.append(FuzzFailure(
                index=index,
                seed=int(data.get("trial_seed", payload["trial_seed"])),
                oracles=tuple(data.get("oracles", [])),
                detail=str(data.get("detail", "")),
            ))
    summary.remaining = trials - seen
    summary.failures.sort(key=lambda f: f.index)

    # ---- minimize + persist reproducers ------------------------------
    for failure in summary.failures[:max_reproducers]:
        program = generate(
            failure.seed, GenConfig(**(gen or {}))
        )
        source = program.source
        minimized = False
        if shrink and failure.oracles:
            predicate = failure_predicate(
                failure.oracles, multi_fault=multi_fault,
                max_forced=max_forced,
            )
            with telemetry.phase("shrink"):
                try:
                    reduced = reduce_program(program, predicate)
                    source = reduced.source
                    minimized = True
                except ValueError:
                    # The failure did not reproduce in-process (e.g. a
                    # flaky environment); keep the raw program.
                    pass
        failure.reproducer = _write_reproducer(
            out_dir, failure, source, minimized, seed
        )
    return summary


def format_fuzz_report(summary: FuzzSummary) -> str:
    lines = [
        f"fuzz: {summary.trials} trials, seed {summary.seed} "
        f"(generator v{GEN_VERSION})",
        f"  passed:      {summary.passed}",
        f"  oracle fail: {len(summary.failures)}",
        f"  infra fail:  {summary.infra_failed}",
        f"  resumed:     {summary.skipped}",
        f"  forced recoveries exercised: {summary.forced_runs} "
        f"(over {summary.checkpoints} dynamic check points)",
    ]
    if summary.budget_exhausted:
        lines.append(
            f"  time budget exhausted: {summary.remaining} trials not run "
            "(resume with the same manifest to continue)"
        )
    for failure in summary.failures:
        oracles = ",".join(failure.oracles) or "?"
        lines.append(
            f"  ! trial {failure.index} seed {failure.seed} "
            f"failed [{oracles}]"
        )
        if failure.reproducer:
            lines.append(f"    reproducer: {failure.reproducer}")
        if failure.detail:
            lines.append(f"    {failure.detail[:160]}")
    return "\n".join(lines)
