"""Seeded, hypothesis-free MiniC program generator.

Every program is a pure function of one integer seed: ``generate(seed)``
always returns the same :class:`GeneratedProgram` for the same seed and
generator version (:data:`GEN_VERSION`), across processes, platforms,
and Python versions.  That is the fuzzer's reproducibility contract —
a failing trial is fully described by its seed, and the regression
corpus records seeds alongside minimized sources.

The generator targets the constructs the region construction actually
has to reason about (paper §3/§4): global and array mutation (memory
antidependences), self-dependent accumulators (§4.2.2 loop case
analysis), nested loops and branches (cut placement), pointer writes
through ``&g[i]`` (alias analysis), and helper-function calls
(mandatory call cuts).  Programs are integer-only and terminate by
construction: every loop has a compile-time trip count.

Programs are built as a small statement tree (:class:`Leaf`,
:class:`If`, :class:`Loop`, :class:`Helper`, :class:`ProgramSpec`) and
rendered to MiniC text at the end.  The tree — not the text — is what
:mod:`repro.fuzz.reduce` shrinks, so every reduction step yields a
syntactically valid program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.harness.executor import derive_seed

#: Bumped whenever a change alters the seed → program mapping.  Unit ids
#: and reproducer filenames embed it, so a stale manifest or corpus
#: entry can never masquerade as a fresh one.
GEN_VERSION = 1


@dataclass
class GenConfig:
    """Shape knobs.  Defaults keep dynamic runs small (a few hundred
    instructions) so the exhaustive re-execution oracle — one forced
    recovery per dynamic check point — stays cheap per trial."""

    n_globals: int = 8       # global array size; must be a power of two
    n_scalars: int = 2       # global int scalars s0, s1, ...
    max_helpers: int = 2     # helper functions callable from main
    min_stmts: int = 3       # top-level statements in the main loop
    max_stmts: int = 6
    max_depth: int = 2       # nesting depth of if/loop statements
    max_trips: int = 4       # trip count of any generated loop
    max_const: int = 9       # magnitude of literal constants


# ----------------------------------------------------------------------
# Statement tree
# ----------------------------------------------------------------------
@dataclass
class Leaf:
    """One or more complete statements with no reducible structure."""

    text: str
    uses: Optional[str] = None  # helper name this leaf calls, if any


@dataclass
class If:
    cond: str
    body: List["Stmt"]
    orelse: List["Stmt"] = field(default_factory=list)


@dataclass
class Loop:
    var: str
    trips: int
    body: List["Stmt"]
    style: str = "for"  # "for" | "while"


Stmt = Union[Leaf, If, Loop]


@dataclass
class Helper:
    name: str
    body: List[Stmt]  # statements over locals a, b, t
    ret: str


@dataclass
class ProgramSpec:
    n_globals: int
    scalars: List[str]
    helpers: List[Helper]
    body: List[Stmt]  # the body of main's outer loop, plus trailing stmts
    outer_var: str = "i"
    outer_trips: int = 4


@dataclass
class GeneratedProgram:
    seed: int
    spec: ProgramSpec

    @property
    def source(self) -> str:
        return render(self.spec)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _render_stmts(stmts: List[Stmt], indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    for stmt in stmts:
        if isinstance(stmt, Leaf):
            for line in stmt.text.splitlines():
                lines.append(pad + line)
        elif isinstance(stmt, If):
            lines.append(pad + f"if ({stmt.cond}) {{")
            _render_stmts(stmt.body, indent + 1, lines)
            if stmt.orelse:
                lines.append(pad + "} else {")
                _render_stmts(stmt.orelse, indent + 1, lines)
            lines.append(pad + "}")
        elif isinstance(stmt, Loop):
            if stmt.style == "while":
                lines.append(pad + f"int {stmt.var} = {stmt.trips};")
                lines.append(pad + f"while ({stmt.var} > 0) {{")
                _render_stmts(stmt.body, indent + 1, lines)
                lines.append(pad + f"  {stmt.var} = {stmt.var} - 1;")
                lines.append(pad + "}")
            else:
                lines.append(
                    pad + f"for (int {stmt.var} = 0; {stmt.var} < {stmt.trips}; "
                    f"{stmt.var} = {stmt.var} + 1) {{"
                )
                _render_stmts(stmt.body, indent + 1, lines)
                lines.append(pad + "}")
        else:  # pragma: no cover - tree is closed over the three kinds
            raise TypeError(f"unknown statement node {stmt!r}")


def render(spec: ProgramSpec) -> str:
    """The MiniC source of a program spec."""
    lines: List[str] = [f"int g[{spec.n_globals}];"]
    for scalar in spec.scalars:
        lines.append(f"int {scalar};")
    lines.append("")
    for helper in spec.helpers:
        lines.append(f"int {helper.name}(int a, int b) {{")
        lines.append("  int t = a;")
        _render_stmts(helper.body, 1, lines)
        lines.append(f"  return {helper.ret};")
        lines.append("}")
        lines.append("")
    lines.append("int main() {")
    lines.append("  int acc = 1;")
    lines.append(
        f"  for (int {spec.outer_var} = 0; {spec.outer_var} < "
        f"{spec.outer_trips}; {spec.outer_var} = {spec.outer_var} + 1) {{"
    )
    _render_stmts(spec.body, 2, lines)
    lines.append("  }")
    # Fold every piece of observable state into the return value so the
    # scalar result alone already witnesses most divergences (final
    # global memory is additionally compared cell-by-cell by the oracle).
    lines.append("  int out = acc;")
    lines.append(
        f"  for (int z = 0; z < {spec.n_globals}; z = z + 1) "
        "out = out * 31 + g[z];"
    )
    for scalar in spec.scalars:
        lines.append(f"  out = out * 31 + {scalar};")
    lines.append("  return out;")
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
class _Gen:
    def __init__(self, seed: int, config: GenConfig) -> None:
        self.rng = random.Random(derive_seed(seed, "fuzz.gen", GEN_VERSION))
        self.config = config
        self.counter = 0  # fresh-name supply (loop vars, pointers)

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- expressions ---------------------------------------------------
    def const(self, lo: Optional[int] = None, hi: Optional[int] = None) -> str:
        lo = -self.config.max_const if lo is None else lo
        hi = self.config.max_const if hi is None else hi
        value = self.rng.randint(lo, hi)
        return f"({value})" if value < 0 else str(value)

    def index(self, scope: List[str]) -> str:
        """An always-in-bounds index into g (n_globals is a power of two;
        masking a two's-complement value is non-negative)."""
        mask = self.config.n_globals - 1
        if scope and self.rng.random() < 0.6:
            var = self.rng.choice(scope)
            return f"(({var} + {self.const(0, mask)}) & {mask})"
        return str(self.rng.randint(0, mask))

    def atom(self, scope: List[str]) -> str:
        roll = self.rng.random()
        if roll < 0.35 or not scope:
            return self.const()
        if roll < 0.7:
            return self.rng.choice(scope)
        return f"g[{self.index(scope)}]"

    def expr(self, scope: List[str], depth: int = 2) -> str:
        if depth <= 0 or self.rng.random() < 0.35:
            return self.atom(scope)
        op = self.rng.choice(
            ["+", "+", "-", "*", "^", "&", "|", "<<", ">>", "/", "%"]
        )
        left = self.expr(scope, depth - 1)
        if op in ("<<", ">>"):
            right = str(self.rng.randint(0, 7))  # bounded shift amount
        elif op in ("/", "%"):
            right = str(self.rng.randint(1, self.config.max_const))  # nonzero
        else:
            right = self.expr(scope, depth - 1)
        return f"({left} {op} {right})"

    def cond(self, scope: List[str]) -> str:
        op = self.rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"({self.expr(scope, 1)} {op} {self.expr(scope, 1)})"

    # -- statements ----------------------------------------------------
    def stmt(self, scope: List[str], acc: str, depth: int,
             helpers: List[Helper]) -> Stmt:
        kinds = ["mutate", "mutate", "scalar", "accumulate", "accumulate",
                 "ptr"]
        if depth > 0:
            kinds += ["branch", "branch", "loop"]
        if helpers:
            kinds.append("call")
        kind = self.rng.choice(kinds)
        if kind == "mutate":
            idx = self.index(scope)
            op = self.rng.choice(["+", "^", "*", "-"])
            return Leaf(f"g[{idx}] = g[{idx}] {op} {self.expr(scope, 1)};")
        if kind == "scalar":
            scalar = self.rng.choice(
                [f"s{k}" for k in range(self.config.n_scalars)]
            )
            op = self.rng.choice(["+", "^", "*"])
            return Leaf(f"{scalar} = {scalar} {op} {self.expr(scope, 1)};")
        if kind == "accumulate":
            mult = self.rng.choice([3, 5, 7, 31])
            return Leaf(f"{acc} = {acc} * {mult} + {self.expr(scope, 1)};")
        if kind == "ptr":
            ptr = self.fresh("p")
            idx = self.index(scope)
            return Leaf(
                f"int *{ptr} = &g[{idx}];\n"
                f"*{ptr} = *{ptr} + {self.expr(scope, 1)};"
            )
        if kind == "call":
            helper = self.rng.choice(helpers)
            return Leaf(
                f"{acc} = {acc} + {helper.name}"
                f"({self.expr(scope, 1)}, {self.expr(scope, 1)});",
                uses=helper.name,
            )
        if kind == "branch":
            then = self.stmts(scope, acc, depth - 1, helpers,
                              self.rng.randint(1, 2))
            orelse = (
                self.stmts(scope, acc, depth - 1, helpers, 1)
                if self.rng.random() < 0.5 else []
            )
            return If(self.cond(scope), then, orelse)
        # loop
        var = self.fresh("j")
        style = "while" if self.rng.random() < 0.3 else "for"
        body_scope = scope + ([var] if style == "for" else [])
        body = self.stmts(body_scope, acc, depth - 1, helpers,
                          self.rng.randint(1, 2))
        return Loop(var, self.rng.randint(1, self.config.max_trips),
                    body, style=style)

    def stmts(self, scope: List[str], acc: str, depth: int,
              helpers: List[Helper], count: int) -> List[Stmt]:
        return [self.stmt(scope, acc, depth, helpers) for _ in range(count)]

    # -- whole program -------------------------------------------------
    def program(self, seed: int) -> GeneratedProgram:
        config = self.config
        scalars = [f"s{k}" for k in range(config.n_scalars)]
        helpers: List[Helper] = []
        for index in range(self.rng.randint(0, config.max_helpers)):
            body = self.stmts(["a", "b", "t"], "t", 1, [],
                              self.rng.randint(1, 2))
            helpers.append(Helper(
                name=f"h{index}",
                body=body,
                ret=self.expr(["a", "b", "t"], 1),
            ))
        count = self.rng.randint(config.min_stmts, config.max_stmts)
        body = self.stmts(["i"], "acc", config.max_depth, helpers, count)
        spec = ProgramSpec(
            n_globals=config.n_globals,
            scalars=scalars,
            helpers=helpers,
            body=body,
            outer_trips=self.rng.randint(2, config.max_trips),
        )
        return GeneratedProgram(seed=seed, spec=spec)


def generate(seed: int, config: Optional[GenConfig] = None) -> GeneratedProgram:
    """The program of ``seed``: same seed, same program, forever
    (within one :data:`GEN_VERSION`)."""
    return _Gen(seed, config or GenConfig()).program(seed)


def sources(count: int = 32, start_seed: int = 0,
            config: Optional[GenConfig] = None) -> List[str]:
    """MiniC sources of the first ``count`` seeds from ``start_seed``.

    The deterministic corpus the kernel equivalence suite draws from
    (``tests/test_bitset_kernels.py``): same seeds, same programs, so a
    kernel/legacy divergence reported by CI reproduces locally verbatim.
    """
    return [
        generate(seed, config).source
        for seed in range(start_seed, start_seed + count)
    ]


def trial_seed(campaign_seed: int, index: int) -> int:
    """Trial ``index``'s generator seed, derived spawn-key style so any
    sharding of a fuzz campaign draws the exact trial set a serial run
    does (the same convention as :func:`repro.sim.faults.trial_plan`)."""
    return derive_seed(campaign_seed, "fuzz.trial", index)
