"""Differential and re-execution oracles for fuzzed programs.

Three layers of checking, strongest last:

1. **Three-way differential** — the MiniC interpreter (semantic
   reference), the simulator on the *original* binary, and the simulator
   on the *idempotent* binary must agree on the return value, the
   printed output, **and the final global memory image**.  This is the
   classic Csmith-style compiler oracle.

2. **Exhaustive re-execution** — the dynamic counterpart of the static
   :mod:`repro.core.verify`: the paper's contract (§3) is that jumping
   back to the restart pointer is *always* safe, so we force
   ``recover_to_rp()`` at **every** dynamic check point of the
   idempotent binary — not one sampled fault — and require the
   bit-exact fault-free result each time.

3. **Multi-fault re-execution** — recovery itself may be interrupted:
   for every dynamic check point we force a recovery *and then a second
   recovery at the next check point reached*, which lands inside the
   re-executed region (a fault during recovery / back-to-back faults in
   the same region).  Idempotence must survive that too.

All three report :class:`OracleFailure` rows rather than raising, so a
fuzz campaign can quarantine and minimize failing seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.compiler import compile_minic
from repro.core.construction import ConstructionConfig
from repro.frontend import compile_source
from repro.interp import Interpreter
from repro.interp.memory import MemoryError_
from repro.sim.simulator import SimulationError, Simulator

#: Oracle identifiers carried on failures (and preserved by the reducer).
ORACLE_REFERENCE = "reference"
ORACLE_DIFF_ORIGINAL = "differential:original"
ORACLE_DIFF_IDEMPOTENT = "differential:idempotent"
ORACLE_REEXEC = "reexec"
ORACLE_MULTI_FAULT = "multifault"

#: Hard ceiling on simulated instructions per run; a forced recovery
#: that fails to make progress shows up as a budget crash, not a hang.
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


@dataclass
class OracleFailure:
    oracle: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.oracle}] {self.detail}"


@dataclass
class OracleReport:
    """Everything the oracles observed about one program."""

    failures: List[OracleFailure] = field(default_factory=list)
    checkpoints: int = 0         # dynamic check points in the clean run
    forced_runs: int = 0         # re-execution runs performed
    instructions: int = 0        # clean-run dynamic instruction count

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_oracles(self) -> Tuple[str, ...]:
        """Sorted, de-duplicated failing oracle names — the failure
        signature the reducer preserves."""
        return tuple(sorted({f.oracle for f in self.failures}))


# ----------------------------------------------------------------------
# State extraction
# ----------------------------------------------------------------------
def _interp_globals(interp: Interpreter) -> Dict[str, List[object]]:
    image = {}
    for name, addr in interp.globals.items():
        size = interp.module.globals[name].size
        image[name] = [interp.memory.peek(addr + i) for i in range(size)]
    return image


def _sim_globals(sim: Simulator) -> Dict[str, List[object]]:
    image = {}
    for name, addr in sim.globals.items():
        size = sim.program.globals[name][0]
        image[name] = [sim.memory.peek(addr + i) for i in range(size)]
    return image


def _diff_state(
    label: str,
    result: object, ref_result: object,
    output: Sequence[object], ref_output: Sequence[object],
    memory: Dict[str, List[object]], ref_memory: Dict[str, List[object]],
) -> Optional[str]:
    """First observable divergence from the reference, or None."""
    if result != ref_result:
        return f"{label}: result {result!r} != reference {ref_result!r}"
    if list(output) != list(ref_output):
        return f"{label}: output {list(output)!r} != reference {list(ref_output)!r}"
    if memory != ref_memory:
        for name in sorted(ref_memory):
            if memory.get(name) != ref_memory[name]:
                return (
                    f"{label}: global {name!r} = {memory.get(name)!r} "
                    f"!= reference {ref_memory[name]!r}"
                )
    return None


# ----------------------------------------------------------------------
# Forced recovery
# ----------------------------------------------------------------------
class ForcedRecovery:
    """Pre-instruction hook forcing ``recover_to_rp()`` at chosen
    dynamic check-point occurrences.

    Occurrences count *every* check-point visit, re-executed ones
    included, so a trigger set ``{k, k+1}`` models a second fault during
    the recovery of the first (the next check point reached after the
    jump back is, by construction, inside the re-executed region).
    """

    def __init__(self, sim: Simulator, triggers: Sequence[int]) -> None:
        self.triggers = set(triggers)
        self.occurrence = 0
        self.recoveries = 0
        sim.pre_hook = self._pre

    def _pre(self, sim: Simulator, instr) -> None:
        if instr.opcode not in Simulator.CHECK_POINTS:
            return
        occurrence = self.occurrence
        self.occurrence += 1
        if occurrence in self.triggers:
            sim.recover_to_rp()
            sim.redirect()
            self.recoveries += 1


def _count_checkpoints(sim: Simulator) -> List[int]:
    """Attach a counting hook; returns a single-cell list updated live."""
    cell = [0]

    def hook(_sim: Simulator, instr) -> None:
        if instr.opcode in Simulator.CHECK_POINTS:
            cell[0] += 1

    sim.pre_hook = hook
    return cell


def _forced_run(
    program, entry: str, triggers: Sequence[int], max_instructions: int
) -> Tuple[object, List[object], Dict[str, List[object]], int]:
    sim = Simulator(program, max_instructions=max_instructions)
    forced = ForcedRecovery(sim, triggers)
    result = sim.run(entry)
    return result, list(sim.output), _sim_globals(sim), forced.recoveries


# ----------------------------------------------------------------------
# The oracle stack
# ----------------------------------------------------------------------
def check_source(
    source: str,
    config: Optional[ConstructionConfig] = None,
    entry: str = "main",
    verify: bool = True,
    multi_fault: bool = True,
    max_forced: Optional[int] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> OracleReport:
    """Run the full oracle stack over one MiniC program.

    ``verify=False`` disables the static IR/machine idempotence
    verifiers — the switch that lets tests aim the *dynamic* oracles at
    a deliberately broken construction (see
    ``ConstructionConfig.drop_hitting_set_cut``).  ``max_forced`` caps
    the number of forced-recovery points per mode (evenly spaced,
    deterministic); ``None`` means exhaustive.
    """
    report = OracleReport()

    # ---- semantic reference: the MiniC interpreter -------------------
    try:
        module = compile_source(source)
        interp = Interpreter(module)
        ref_result = interp.run(entry)
        ref_output = list(interp.output)
        ref_memory = _interp_globals(interp)
    except Exception as exc:
        report.failures.append(OracleFailure(
            ORACLE_REFERENCE, f"{type(exc).__name__}: {exc}"
        ))
        return report

    # ---- differential: original binary -------------------------------
    try:
        original = compile_minic(source, idempotent=False, verify=verify)
        sim = Simulator(original.program, max_instructions=max_instructions)
        value = sim.run(entry)
        divergence = _diff_state(
            "original", value, ref_result, sim.output, ref_output,
            _sim_globals(sim), ref_memory,
        )
        if divergence:
            report.failures.append(
                OracleFailure(ORACLE_DIFF_ORIGINAL, divergence)
            )
    except Exception as exc:
        report.failures.append(OracleFailure(
            ORACLE_DIFF_ORIGINAL, f"{type(exc).__name__}: {exc}"
        ))

    # ---- differential: idempotent binary -----------------------------
    try:
        idem = compile_minic(
            source, idempotent=True, config=config, verify=verify
        )
    except Exception as exc:
        report.failures.append(OracleFailure(
            ORACLE_DIFF_IDEMPOTENT, f"{type(exc).__name__}: {exc}"
        ))
        return report
    try:
        clean = Simulator(idem.program, max_instructions=max_instructions)
        counter = _count_checkpoints(clean)
        value = clean.run(entry)
        report.checkpoints = counter[0]
        report.instructions = clean.instructions
        divergence = _diff_state(
            "idempotent", value, ref_result, clean.output, ref_output,
            _sim_globals(clean), ref_memory,
        )
        if divergence:
            report.failures.append(
                OracleFailure(ORACLE_DIFF_IDEMPOTENT, divergence)
            )
    except Exception as exc:
        report.failures.append(OracleFailure(
            ORACLE_DIFF_IDEMPOTENT, f"{type(exc).__name__}: {exc}"
        ))
        return report

    # ---- exhaustive re-execution -------------------------------------
    points = _forced_points(report.checkpoints, max_forced)
    for occurrence in points:
        failure = _check_forced(
            idem.program, entry, (occurrence,), ORACLE_REEXEC,
            ref_result, ref_output, ref_memory, max_instructions,
        )
        report.forced_runs += 1
        if failure:
            report.failures.append(failure)
            break  # one witness is enough; the reducer will sharpen it

    # ---- multi-fault: fault during recovery --------------------------
    if multi_fault:
        for occurrence in points:
            failure = _check_forced(
                idem.program, entry, (occurrence, occurrence + 1),
                ORACLE_MULTI_FAULT,
                ref_result, ref_output, ref_memory, max_instructions,
            )
            report.forced_runs += 1
            if failure:
                report.failures.append(failure)
                break

    obs.counter("fuzz.oracle_runs").inc(report.forced_runs + 3)
    for failure in report.failures:
        obs.counter("fuzz.oracle_failures").inc(oracle=failure.oracle)
    return report


def _forced_points(checkpoints: int, max_forced: Optional[int]) -> List[int]:
    """Which dynamic check-point occurrences to force recovery at:
    every one, or an evenly spaced deterministic subset of
    ``max_forced`` of them."""
    if checkpoints <= 0:
        return []
    if max_forced is None or checkpoints <= max_forced:
        return list(range(checkpoints))
    step = checkpoints / max_forced
    points = sorted({int(k * step) for k in range(max_forced)})
    return points


def _check_forced(
    program, entry: str, triggers: Tuple[int, ...], oracle: str,
    ref_result: object, ref_output: List[object],
    ref_memory: Dict[str, List[object]], max_instructions: int,
) -> Optional[OracleFailure]:
    label = f"recovery at check point(s) {list(triggers)}"
    try:
        result, output, memory, recoveries = _forced_run(
            program, entry, triggers, max_instructions
        )
    except (MemoryError_, SimulationError) as exc:
        return OracleFailure(
            oracle, f"{label}: crashed: {type(exc).__name__}: {exc}"
        )
    if recoveries == 0:
        return None  # trigger past the end of this run's check points
    divergence = _diff_state(
        label, result, ref_result, output, ref_output, memory, ref_memory
    )
    if divergence:
        return OracleFailure(oracle, divergence)
    return None
