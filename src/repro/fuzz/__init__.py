"""repro.fuzz — differential fuzzing for the idempotence contract.

The paper's promise (§3) is static: regions are constructed so that
re-execution from the restart pointer is always safe.  This package
earns dynamic trust in that promise at scale:

- :mod:`repro.fuzz.generator` — seeded, hypothesis-free MiniC program
  generation (every program reproducible from one integer seed);
- :mod:`repro.fuzz.oracle` — three-way differential checking plus the
  exhaustive re-execution and multi-fault oracles;
- :mod:`repro.fuzz.reduce` — deterministic delta-debugging of failing
  programs down to minimal reproducers;
- :mod:`repro.fuzz.driver` — campaign orchestration on the
  :mod:`repro.harness` executor/manifest stack (``repro fuzz`` CLI).

See ``docs/fuzzing.md`` for oracle definitions and the regression
corpus workflow.
"""

from repro.fuzz.generator import (
    GEN_VERSION,
    GenConfig,
    GeneratedProgram,
    ProgramSpec,
    generate,
    render,
    sources,
    trial_seed,
)
from repro.fuzz.oracle import (
    ORACLE_DIFF_IDEMPOTENT,
    ORACLE_DIFF_ORIGINAL,
    ORACLE_MULTI_FAULT,
    ORACLE_REEXEC,
    ORACLE_REFERENCE,
    ForcedRecovery,
    OracleFailure,
    OracleReport,
    check_source,
)
from repro.fuzz.reduce import (
    ReduceResult,
    failure_predicate,
    reduce_program,
    reduce_spec,
)
from repro.fuzz.driver import (
    FuzzFailure,
    FuzzSummary,
    format_fuzz_report,
    run_fuzz_campaign,
)

__all__ = [
    "GEN_VERSION",
    "GenConfig",
    "GeneratedProgram",
    "ProgramSpec",
    "generate",
    "render",
    "sources",
    "trial_seed",
    "ORACLE_DIFF_IDEMPOTENT",
    "ORACLE_DIFF_ORIGINAL",
    "ORACLE_MULTI_FAULT",
    "ORACLE_REEXEC",
    "ORACLE_REFERENCE",
    "ForcedRecovery",
    "OracleFailure",
    "OracleReport",
    "check_source",
    "ReduceResult",
    "failure_predicate",
    "reduce_program",
    "reduce_spec",
    "FuzzFailure",
    "FuzzSummary",
    "format_fuzz_report",
    "run_fuzz_campaign",
]
