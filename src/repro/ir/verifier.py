"""Structural and (optionally) SSA well-formedness checks for the IR.

The verifier catches compiler bugs early: every transform in the pipeline is
followed by a verification in tests. Two levels:

- :func:`verify_function` / :func:`verify_module` — structural checks that
  hold for any IR (terminators present, operand types, φ edges match
  predecessors, allocas in entry, ...).
- with ``ssa=True`` — additionally checks the SSA dominance property: every
  use is dominated by its definition (φ uses checked at the incoming edge).
"""

from __future__ import annotations

from typing import List

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Br,
    Call,
    Fcmp,
    FLOAT_BINOPS,
    Gep,
    Icmp,
    Instruction,
    Itof,
    Ftoi,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import FLOAT, INT, PTR
from repro.ir.values import Argument, Constant, GlobalVariable, Undef, Value


class VerificationError(ValueError):
    """Raised when IR fails verification; message lists every violation."""


def _check_operand_type(errors: List[str], where: str, value: Value, expected) -> None:
    if isinstance(value, Undef):
        return
    if value.type is not expected and type(value.type) is not type(expected):
        errors.append(f"{where}: operand {value.ref()} has type {value.type}, expected {expected}")


def _is_intlike(value: Value) -> bool:
    # Pointers may flow into int comparisons (pointer equality) — allow it.
    return value.type.is_int or value.type.is_ptr


def verify_function(func: Function, ssa: bool = False) -> None:
    """Raise :class:`VerificationError` if ``func`` is malformed."""
    errors: List[str] = []
    if func.is_declaration:
        return

    block_set = set(func.blocks)
    defined: set = set(func.args)

    for block in func.blocks:
        where = f"@{func.name}:{block.name}"
        if block.parent is not func:
            errors.append(f"{where}: block parent pointer is wrong")
        term = block.terminator
        if term is None:
            errors.append(f"{where}: block lacks a terminator")
        for i, inst in enumerate(block.instructions):
            if inst.parent is not block:
                errors.append(f"{where}: instruction #{i} has wrong parent")
            if inst.is_terminator and inst is not block.instructions[-1]:
                errors.append(f"{where}: terminator {inst.opcode} not at block end")
            if inst.is_phi and i > 0 and not block.instructions[i - 1].is_phi:
                errors.append(f"{where}: phi %{inst.name} not at block head")
            defined.add(inst)
        for succ in block.successors:
            if succ not in block_set:
                errors.append(f"{where}: successor {succ.name} not in function")

    for block in func.blocks:
        preds = set(block.predecessors)
        for phi in block.phis():
            where = f"@{func.name}:{block.name}: phi %{phi.name}"
            incoming_blocks = set(phi.incoming_blocks)
            if incoming_blocks != preds:
                pred_names = sorted(p.name for p in preds)
                in_names = sorted(p.name for p in phi.incoming_blocks)
                errors.append(
                    f"{where}: incoming blocks {in_names} != predecessors {pred_names}"
                )
            if len(phi.incoming_blocks) != len(set(map(id, phi.incoming_blocks))):
                errors.append(f"{where}: duplicate incoming block")

    for inst in func.instructions():
        where = f"@{func.name}:{inst.parent.name}: {inst.opcode}"
        if inst.name:
            where += f" %{inst.name}"
        _verify_instruction_types(errors, where, func, inst)
        for op in inst.operands:
            if isinstance(op, (Constant, Undef, GlobalVariable)):
                continue
            if isinstance(op, (Argument, Instruction)):
                if op not in defined:
                    errors.append(f"{where}: operand {op.ref()} not defined in function")
            else:
                errors.append(f"{where}: operand {op!r} has unexpected kind")

    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Alloca) and block is not func.entry:
                errors.append(
                    f"@{func.name}:{block.name}: alloca %{inst.name} outside entry block"
                )

    if ssa:
        _verify_ssa_dominance(errors, func)

    if errors:
        raise VerificationError("\n".join(errors))


def _verify_instruction_types(errors: List[str], where: str, func: Function, inst: Instruction) -> None:
    if isinstance(inst, BinaryOp):
        expected = FLOAT if inst.opcode in FLOAT_BINOPS else INT
        for op in inst.operands:
            _check_operand_type(errors, where, op, expected)
    elif isinstance(inst, Icmp):
        for op in inst.operands:
            if not _is_intlike(op) and not isinstance(op, Undef):
                errors.append(f"{where}: icmp on non-integer operand {op.ref()}")
    elif isinstance(inst, Fcmp):
        for op in inst.operands:
            _check_operand_type(errors, where, op, FLOAT)
    elif isinstance(inst, Select):
        if inst.true_value.type is not inst.false_value.type:
            errors.append(f"{where}: select arms have different types")
    elif isinstance(inst, Load):
        _check_operand_type(errors, where, inst.ptr, PTR)
    elif isinstance(inst, Store):
        _check_operand_type(errors, where, inst.ptr, PTR)
        if inst.value.type.is_void:
            errors.append(f"{where}: storing a void value")
    elif isinstance(inst, Gep):
        _check_operand_type(errors, where, inst.base, PTR)
        _check_operand_type(errors, where, inst.index, INT)
    elif isinstance(inst, Itof):
        _check_operand_type(errors, where, inst.operand(0), INT)
    elif isinstance(inst, Ftoi):
        _check_operand_type(errors, where, inst.operand(0), FLOAT)
    elif isinstance(inst, Br):
        _check_operand_type(errors, where, inst.cond, INT)
    elif isinstance(inst, Ret):
        if func.return_type.is_void:
            if inst.value is not None:
                errors.append(f"{where}: returning a value from a void function")
        else:
            if inst.value is None:
                errors.append(f"{where}: missing return value")
    elif isinstance(inst, Phi):
        for value, _ in inst.incoming:
            _check_operand_type(errors, where, value, inst.type)


def _verify_ssa_dominance(errors: List[str], func: Function) -> None:
    # Imported here to avoid a package cycle (analysis depends on ir).
    from repro.analysis.dominators import DominatorTree

    domtree = DominatorTree.compute(func)
    positions = {}
    for block in func.blocks:
        for i, inst in enumerate(block.instructions):
            positions[inst] = (block, i)

    def dominates_use(def_inst: Instruction, user: Instruction, use_block: BasicBlock) -> bool:
        def_block, def_index = positions[def_inst]
        if user.is_phi:
            # For phis, the definition must dominate the end of the incoming
            # block (use_block here is the incoming block).
            if def_block is use_block:
                return True
            return domtree.dominates(def_block, use_block)
        use_block_actual, use_index = positions[user]
        if def_block is use_block_actual:
            return def_index < use_index
        return domtree.dominates(def_block, use_block_actual)

    for block in func.blocks:
        if not domtree.is_reachable(block):
            continue
        for inst in block.instructions:
            if inst.is_phi:
                for value, pred in inst.incoming:
                    if isinstance(value, Instruction) and domtree.is_reachable(pred):
                        if not dominates_use(value, inst, pred):
                            errors.append(
                                f"@{func.name}: phi %{inst.name} operand %{value.name} "
                                f"does not dominate incoming edge from {pred.name}"
                            )
            else:
                for value in inst.operands:
                    if isinstance(value, Instruction):
                        if value not in positions:
                            errors.append(
                                f"@{func.name}: %{inst.name or inst.opcode} uses detached "
                                f"value %{value.name}"
                            )
                        elif not dominates_use(value, inst, block):
                            errors.append(
                                f"@{func.name}:{block.name}: use of %{value.name} in "
                                f"%{inst.name or inst.opcode} not dominated by its definition"
                            )


def cfg_checksum(func: Function) -> int:
    """Order-sensitive structural checksum of ``func``'s block graph.

    Covers block identity/order and every terminator edge — exactly the
    inputs the CFG-tier analyses (CFG snapshot, dominator tree,
    frontiers, loop nest) are functions of.  Instruction edits that keep
    blocks and terminators intact do not change it.  Used by
    :class:`repro.analysis.manager.AnalysisManager` to catch passes that
    mutate control flow without invalidating their cached analyses.
    """
    shape = tuple(
        (block.name, tuple(succ.name for succ in block.successors))
        for block in func.blocks
    )
    return hash(shape)


def verify_module(module: Module, ssa: bool = False) -> None:
    """Verify every defined function in ``module``."""
    errors: List[str] = []
    for func in module.defined_functions:
        try:
            verify_function(func, ssa=ssa)
        except VerificationError as exc:
            errors.append(str(exc))
    # Check call targets resolve to module functions or builtins.
    from repro.ir.instructions import BUILTIN_FUNCTIONS

    for func in module.defined_functions:
        for inst in func.instructions():
            if isinstance(inst, Call):
                if inst.callee not in module.functions and inst.callee not in BUILTIN_FUNCTIONS:
                    errors.append(
                        f"@{func.name}: call to unknown function @{inst.callee}"
                    )
    if errors:
        raise VerificationError("\n".join(errors))
