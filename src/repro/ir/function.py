"""Functions of the repro IR."""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir.block import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.types import Type, VOID
from repro.ir.values import Argument


class Function:
    """A function: an argument list, a return type, and a list of blocks.

    The first block is the entry block. Block order is otherwise
    insignificant to semantics but is preserved for printing and for
    deterministic iteration.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
    ) -> None:
        self.name = name
        self.return_type = return_type
        self.args: List[Argument] = [
            Argument(pname, ptype, i) for i, (pname, ptype) in enumerate(params)
        ]
        self.blocks: List[BasicBlock] = []
        self._name_counter = itertools.count()
        self._taken_names = {arg.name for arg in self.args}

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function @{self.name} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    def add_block(self, name: str, after: Optional[BasicBlock] = None) -> BasicBlock:
        """Create a new block with a unique name derived from ``name``."""
        unique = self.unique_block_name(name)
        block = BasicBlock(unique, parent=self)
        if after is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(self.blocks.index(after) + 1, block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def block_by_name(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name!r} in @{self.name}")

    def unique_block_name(self, base: str) -> str:
        existing = {block.name for block in self.blocks}
        if base and base not in existing:
            return base
        for i in itertools.count():
            candidate = f"{base or 'bb'}.{i}"
            if candidate not in existing:
                return candidate
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def unique_value_name(self, base: str = "t") -> str:
        """A fresh ``%name`` not colliding with args or existing results."""
        base = base or "t"
        if base not in self._taken_names:
            self._taken_names.add(base)
            return base
        while True:
            candidate = f"{base}.{next(self._name_counter)}"
            if candidate not in self._taken_names:
                self._taken_names.add(candidate)
                return candidate

    def claim_name(self, name: str) -> None:
        """Mark ``name`` as taken (used by the parser for explicit names)."""
        self._taken_names.add(name)

    def arg_by_name(self, name: str) -> Argument:
        for arg in self.args:
            if arg.name == name:
                return arg
        raise KeyError(f"no argument named {name!r} in @{self.name}")

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """All instructions, in block order."""
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks)

    def values_by_name(self) -> Dict[str, object]:
        """Map from name to Argument / named Instruction (for tests/tools)."""
        table: Dict[str, object] = {arg.name: arg for arg in self.args}
        for inst in self.instructions():
            if inst.name:
                table[inst.name] = inst
        return table

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        sig = ", ".join(f"%{a.name}: {a.type}" for a in self.args)
        return f"<Function @{self.name}({sig}) -> {self.return_type}>"
