"""Top-level IR container: a module of globals and functions."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.types import Type, VOID
from repro.ir.values import GlobalVariable


class Module:
    """A compilation unit: named global variables plus named functions."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}

    # ------------------------------------------------------------------
    # Globals
    # ------------------------------------------------------------------
    def add_global(
        self, name: str, size: int = 1, initializer: Optional[list] = None
    ) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global @{name}")
        var = GlobalVariable(name, size, initializer)
        self.globals[name] = var
        return var

    def global_by_name(self, name: str) -> GlobalVariable:
        return self.globals[name]

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def add_function(
        self,
        name: str,
        params: Sequence[Tuple[str, Type]] = (),
        return_type: Type = VOID,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function @{name}")
        func = Function(name, params, return_type)
        self.functions[name] = func
        return func

    def function_by_name(self, name: str) -> Function:
        return self.functions[name]

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    @property
    def defined_functions(self) -> List[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.globals)} globals, "
            f"{len(self.functions)} functions>"
        )
