"""Instruction set of the repro IR.

The IR is a load/store register IR in the style of LLVM: most instructions
produce a value into a fresh pseudoregister, and memory is only touched by
``load``/``store``. Instructions are also :class:`~repro.ir.values.Value`\\ s
so they can appear directly as operands.

Operand slots are tracked through :class:`~repro.ir.values.Use` records so
that ``replace_all_uses_with`` works across the whole function.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.ir.types import FLOAT, INT, PTR, VOID, Type
from repro.ir.values import Use, Value

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.block import BasicBlock


INT_BINOPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr")
FLOAT_BINOPS = ("fadd", "fsub", "fmul", "fdiv")
CMP_PREDS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Calls to these names are handled directly by the interpreter / simulator
#: rather than resolved against module functions.
BUILTIN_FUNCTIONS = {
    "malloc": PTR,   # malloc(nwords) -> ptr
    "free": VOID,    # free(ptr)
    "print_int": VOID,
    "print_float": VOID,
    "abs": INT,
    "fabs": FLOAT,
    "sqrt": FLOAT,
    "exp": FLOAT,
    "log": FLOAT,
    "min": INT,
    "max": INT,
    "fmin": FLOAT,
    "fmax": FLOAT,
}


class Instruction(Value):
    """Base class for IR instructions.

    Attributes:
        opcode: textual opcode (``"add"``, ``"load"``, ...).
        parent: the :class:`BasicBlock` containing this instruction, or None
            if detached.
    """

    opcode = "?"

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, name)
        self.parent: Optional["BasicBlock"] = None
        # Inlined _append_operand / Value.add_use: instruction creation
        # dominates the cloning-heavy transforms, so skip the two call
        # frames per operand.
        ops: List[Use] = []
        self._operands = ops
        for value in operands:
            use = Use(self, len(ops), value)
            ops.append(use)
            value._uses.append(use)

    # ------------------------------------------------------------------
    # Operand management
    # ------------------------------------------------------------------
    def _append_operand(self, value: Value) -> None:
        use = Use(self, len(self._operands), value)
        self._operands.append(use)
        value.add_use(use)

    @property
    def operands(self) -> List[Value]:
        return [use.value for use in self._operands]

    def operand(self, index: int) -> Value:
        return self._operands[index].value

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def set_operand(self, index: int, value: Value) -> None:
        """Replace operand ``index``, updating use lists on both sides."""
        use = self._operands[index]
        use.value.remove_use(use)
        use.value = value
        value.add_use(use)

    def drop_operands(self) -> None:
        """Remove this instruction from the use lists of all its operands."""
        for use in self._operands:
            use.value.remove_use(use)
        self._operands = []

    # ------------------------------------------------------------------
    # Classification — class-level constants (overridden where a subclass
    # differs; :class:`Call` computes its memory behaviour per callee).
    # These are read on nearly every instruction visit of every analysis
    # sweep, so they are plain attributes rather than properties.
    # ------------------------------------------------------------------
    is_terminator = False
    is_phi = False
    reads_memory = False
    writes_memory = False
    has_side_effects = False
    is_pure_builtin = False

    # ------------------------------------------------------------------
    # Block surgery
    # ------------------------------------------------------------------
    def remove_from_parent(self) -> None:
        """Unlink from the containing block and drop operand uses."""
        if self.parent is not None:
            self.parent.instructions.remove(self)
            self.parent = None
        self.drop_operands()

    def erase(self) -> None:
        """Remove entirely; the instruction must have no remaining uses."""
        if self.is_used:
            raise ValueError(f"cannot erase {self!r}: it still has uses")
        self.remove_from_parent()

    def __repr__(self) -> str:
        label = f"%{self.name} = " if self.type.is_value_type and self.name else ""
        ops = ", ".join(op.ref() for op in self.operands)
        return f"<{label}{self.opcode} {ops}>"


# ----------------------------------------------------------------------
# Arithmetic and logic
# ----------------------------------------------------------------------
#: Result type per binary opcode (one dict probe on the hot clone path).
_BINOP_RESULT = {op: INT for op in INT_BINOPS}
_BINOP_RESULT.update((op, FLOAT) for op in FLOAT_BINOPS)


class BinaryOp(Instruction):
    """Two-operand arithmetic/logic: int and float variants share the class."""

    def __init__(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> None:
        result = _BINOP_RESULT.get(opcode)
        if result is None:
            raise ValueError(f"unknown binary opcode {opcode!r}")
        super().__init__(result, [lhs, rhs], name)
        self.opcode = opcode

    @property
    def lhs(self) -> Value:
        return self._operands[0].value

    @property
    def rhs(self) -> Value:
        return self._operands[1].value


class Icmp(Instruction):
    """Integer/pointer comparison producing 0 or 1."""

    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in CMP_PREDS:
            raise ValueError(f"unknown icmp predicate {pred!r}")
        super().__init__(INT, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self._operands[0].value

    @property
    def rhs(self) -> Value:
        return self._operands[1].value


class Fcmp(Instruction):
    """Float comparison producing 0 or 1."""

    opcode = "fcmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if pred not in CMP_PREDS:
            raise ValueError(f"unknown fcmp predicate {pred!r}")
        super().__init__(INT, [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self._operands[0].value

    @property
    def rhs(self) -> Value:
        return self._operands[1].value


class Select(Instruction):
    """``select cond, a, b`` — a without branching if cond is nonzero, else b."""

    opcode = "select"

    def __init__(self, cond: Value, a: Value, b: Value, name: str = "") -> None:
        super().__init__(a.type, [cond, a, b], name)

    @property
    def cond(self) -> Value:
        return self._operands[0].value

    @property
    def true_value(self) -> Value:
        return self._operands[1].value

    @property
    def false_value(self) -> Value:
        return self._operands[2].value


class Itof(Instruction):
    """Signed int to float conversion."""

    opcode = "itof"

    def __init__(self, value: Value, name: str = "") -> None:
        super().__init__(FLOAT, [value], name)


class Ftoi(Instruction):
    """Float to signed int conversion (truncating)."""

    opcode = "ftoi"

    def __init__(self, value: Value, name: str = "") -> None:
        super().__init__(INT, [value], name)


# ----------------------------------------------------------------------
# Memory
# ----------------------------------------------------------------------
class Alloca(Instruction):
    """Reserve ``size`` words of local (function-frame) stack memory.

    The result is the address of the first word. Allocas are only legal in
    the entry block so their lifetime is the whole activation.
    """

    opcode = "alloca"

    def __init__(self, size: int = 1, name: str = "") -> None:
        super().__init__(PTR, [], name)
        if size <= 0:
            raise ValueError(f"alloca size must be positive, got {size}")
        self.size = int(size)


class Load(Instruction):
    """Read one word from memory: ``%x = load <type>, %ptr``."""

    opcode = "load"
    reads_memory = True

    def __init__(self, type_: Type, ptr: Value, name: str = "") -> None:
        if not type_.is_value_type:
            raise ValueError("load must produce a value type")
        super().__init__(type_, [ptr], name)

    @property
    def ptr(self) -> Value:
        return self._operands[0].value


class Store(Instruction):
    """Write one word to memory: ``store %value, %ptr``."""

    opcode = "store"
    writes_memory = True
    has_side_effects = True

    def __init__(self, value: Value, ptr: Value) -> None:
        super().__init__(VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self._operands[0].value

    @property
    def ptr(self) -> Value:
        return self._operands[1].value


class Gep(Instruction):
    """Pointer arithmetic: ``%p = gep %base, %index`` is ``base + index`` words."""

    opcode = "gep"

    def __init__(self, base: Value, index: Value, name: str = "") -> None:
        super().__init__(PTR, [base, index], name)

    @property
    def base(self) -> Value:
        return self._operands[0].value

    @property
    def index(self) -> Value:
        return self._operands[1].value


# ----------------------------------------------------------------------
# Control flow
# ----------------------------------------------------------------------
class Br(Instruction):
    """Conditional branch: ``br %cond, then_block, else_block``."""

    opcode = "br"
    is_terminator = True
    has_side_effects = True

    def __init__(self, cond: Value, then_block: "BasicBlock", else_block: "BasicBlock") -> None:
        super().__init__(VOID, [cond])
        self.then_block = then_block
        self.else_block = else_block

    @property
    def cond(self) -> Value:
        return self._operands[0].value

    @property
    def targets(self) -> List["BasicBlock"]:
        return [self.then_block, self.else_block]

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.then_block is old:
            self.then_block = new
        if self.else_block is old:
            self.else_block = new


class Jump(Instruction):
    """Unconditional branch."""

    opcode = "jmp"
    is_terminator = True
    has_side_effects = True

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__(VOID, [])
        self.target = target

    @property
    def targets(self) -> List["BasicBlock"]:
        return [self.target]

    def replace_target(self, old: "BasicBlock", new: "BasicBlock") -> None:
        if self.target is old:
            self.target = new


class Ret(Instruction):
    """Function return, with an optional value."""

    opcode = "ret"
    is_terminator = True
    has_side_effects = True

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self._operands[0].value if self._operands else None

    @property
    def targets(self) -> List["BasicBlock"]:
        return []


class Phi(Instruction):
    """SSA φ-node. Incoming blocks are kept parallel to the operand list."""

    opcode = "phi"
    is_phi = True

    def __init__(
        self,
        type_: Type,
        incoming: Sequence[Tuple[Value, "BasicBlock"]] = (),
        name: str = "",
    ) -> None:
        super().__init__(type_, [value for value, _ in incoming], name)
        self.incoming_blocks: List["BasicBlock"] = [block for _, block in incoming]

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        self._append_operand(value)
        self.incoming_blocks.append(block)

    @property
    def incoming(self) -> List[Tuple[Value, "BasicBlock"]]:
        return list(zip(self.operands, self.incoming_blocks))

    def incoming_for(self, block: "BasicBlock") -> Value:
        """The value flowing in from predecessor ``block``."""
        for value, pred in self.incoming:
            if pred is block:
                return value
        raise KeyError(f"phi %{self.name} has no incoming edge from {block.name}")

    def set_incoming_for(self, block: "BasicBlock", value: Value) -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                self.set_operand(i, value)
                return
        raise KeyError(f"phi %{self.name} has no incoming edge from {block.name}")

    def remove_incoming(self, block: "BasicBlock") -> None:
        """Drop the edge from ``block`` (e.g. after CFG surgery)."""
        for i, pred in enumerate(self.incoming_blocks):
            if pred is block:
                use = self._operands.pop(i)
                use.value.remove_use(use)
                self.incoming_blocks.pop(i)
                for j, remaining in enumerate(self._operands):
                    remaining.index = j
                return
        raise KeyError(f"phi %{self.name} has no incoming edge from {block.name}")

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        for i, pred in enumerate(self.incoming_blocks):
            if pred is old:
                self.incoming_blocks[i] = new


class Call(Instruction):
    """Direct call: ``%r = call <type> @callee(args...)``.

    Callees are referenced by name and resolved by the module; this keeps
    functions free of cross-function object references, which simplifies
    cloning and parsing. Builtins (``malloc``, ``print_int``, ``sqrt``, ...)
    are interpreted directly by the execution engines.
    """

    opcode = "call"

    def __init__(self, type_: Type, callee: str, args: Sequence[Value], name: str = "") -> None:
        super().__init__(type_, list(args), name)
        self.callee = callee

    @property
    def is_pure_builtin(self) -> bool:
        """True for calls to math builtins with no memory behaviour."""
        return self.callee in BUILTIN_FUNCTIONS and self.callee not in (
            "malloc",
            "free",
            "print_int",
            "print_float",
        )

    @property
    def reads_memory(self) -> bool:
        return not self.is_pure_builtin

    @property
    def writes_memory(self) -> bool:
        return not self.is_pure_builtin

    @property
    def has_side_effects(self) -> bool:
        return not self.is_pure_builtin

    @property
    def args(self) -> List[Value]:
        return self.operands


class Boundary(Instruction):
    """Idempotent region boundary marker (a "cut" placed before a statement).

    Inserted by the region construction pass; lowered by the code generator
    to an ``rcb`` machine op that records the restart address in ``rp``.
    """

    opcode = "boundary"
    has_side_effects = True

    def __init__(self) -> None:
        super().__init__(VOID, [])
