"""repro.ir — a small load/store, SSA-capable compiler IR.

The IR mirrors the constructs the paper's algorithms manipulate: typed
pseudoregisters, explicit ``load``/``store`` memory operations, φ-nodes,
and an explicit ``boundary`` marker for idempotent region cuts.

Public surface::

    from repro.ir import (
        Module, Function, BasicBlock, IRBuilder,
        INT, FLOAT, PTR, VOID,
        parse_module, format_module, verify_module,
    )
"""

from repro.ir.block import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Boundary,
    Br,
    BUILTIN_FUNCTIONS,
    Call,
    CMP_PREDS,
    Fcmp,
    FLOAT_BINOPS,
    Ftoi,
    Gep,
    Icmp,
    INT_BINOPS,
    Instruction,
    Itof,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.parser import IRSyntaxError, parse_module
from repro.ir.printer import format_function, format_instruction, format_module
from repro.ir.types import FLOAT, INT, PTR, Type, VOID, type_from_name
from repro.ir.values import (
    Argument,
    Constant,
    GlobalVariable,
    Undef,
    Value,
    const_float,
    const_int,
)
from repro.ir.verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Alloca",
    "Argument",
    "BasicBlock",
    "BinaryOp",
    "Boundary",
    "Br",
    "BUILTIN_FUNCTIONS",
    "Call",
    "CMP_PREDS",
    "Constant",
    "Fcmp",
    "FLOAT",
    "FLOAT_BINOPS",
    "Ftoi",
    "Function",
    "Gep",
    "GlobalVariable",
    "INT",
    "INT_BINOPS",
    "IRBuilder",
    "IRSyntaxError",
    "Icmp",
    "Instruction",
    "Itof",
    "Jump",
    "Load",
    "Module",
    "PTR",
    "Phi",
    "Ret",
    "Select",
    "Store",
    "Type",
    "Undef",
    "VOID",
    "Value",
    "VerificationError",
    "const_float",
    "const_int",
    "format_function",
    "format_instruction",
    "format_module",
    "parse_module",
    "type_from_name",
    "verify_function",
    "verify_module",
]
