"""Textual printer for the repro IR.

The format round-trips through :mod:`repro.ir.parser`. Example::

    global @table 16 = [1, 2, 3]

    func @sum(%p: ptr, %n: int) -> int {
    entry:
      %i0 = alloca 1
      store 0, %i0
      jmp loop
    loop:
      ...
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Boundary,
    Br,
    Call,
    Fcmp,
    Ftoi,
    Gep,
    Icmp,
    Instruction,
    Itof,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Undef, Value


def format_operand(value: Value) -> str:
    """Spell a value in operand position."""
    if isinstance(value, Undef):
        return f"undef:{value.type}"
    return value.ref()


def format_instruction(inst: Instruction) -> str:
    """One-line textual form of ``inst`` (without indentation)."""
    ops = [format_operand(op) for op in inst.operands]
    if isinstance(inst, BinaryOp):
        return f"%{inst.name} = {inst.opcode} {ops[0]}, {ops[1]}"
    if isinstance(inst, Icmp):
        return f"%{inst.name} = icmp {inst.pred} {ops[0]}, {ops[1]}"
    if isinstance(inst, Fcmp):
        return f"%{inst.name} = fcmp {inst.pred} {ops[0]}, {ops[1]}"
    if isinstance(inst, Select):
        return f"%{inst.name} = select {ops[0]}, {ops[1]}, {ops[2]}"
    if isinstance(inst, Itof):
        return f"%{inst.name} = itof {ops[0]}"
    if isinstance(inst, Ftoi):
        return f"%{inst.name} = ftoi {ops[0]}"
    if isinstance(inst, Alloca):
        return f"%{inst.name} = alloca {inst.size}"
    if isinstance(inst, Load):
        return f"%{inst.name} = load {inst.type}, {ops[0]}"
    if isinstance(inst, Store):
        return f"store {ops[0]}, {ops[1]}"
    if isinstance(inst, Gep):
        return f"%{inst.name} = gep {ops[0]}, {ops[1]}"
    if isinstance(inst, Br):
        return f"br {ops[0]}, {inst.then_block.name}, {inst.else_block.name}"
    if isinstance(inst, Jump):
        return f"jmp {inst.target.name}"
    if isinstance(inst, Ret):
        return f"ret {ops[0]}" if ops else "ret"
    if isinstance(inst, Phi):
        pairs = ", ".join(
            f"[{format_operand(value)}, {block.name}]" for value, block in inst.incoming
        )
        return f"%{inst.name} = phi {inst.type} {pairs}"
    if isinstance(inst, Call):
        arglist = ", ".join(ops)
        if inst.type.is_void:
            return f"call void @{inst.callee}({arglist})"
        return f"%{inst.name} = call {inst.type} @{inst.callee}({arglist})"
    if isinstance(inst, Boundary):
        return "boundary"
    raise TypeError(f"cannot print instruction {inst!r}")


def format_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {format_instruction(inst)}")
    return "\n".join(lines)


def format_function(func: Function) -> str:
    sig = ", ".join(f"%{a.name}: {a.type}" for a in func.args)
    arrow = f" -> {func.return_type}" if not func.return_type.is_void else ""
    if func.is_declaration:
        return f"declare @{func.name}({sig}){arrow}"
    lines = [f"func @{func.name}({sig}){arrow} {{"]
    for block in func.blocks:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts: List[str] = []
    for var in module.globals.values():
        if var.initializer is not None:
            init = ", ".join(str(v) for v in var.initializer)
            parts.append(f"global @{var.name} {var.size} = [{init}]")
        else:
            parts.append(f"global @{var.name} {var.size}")
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts) + "\n"


def print_module(module: Module) -> str:
    """Alias of :func:`format_module` for discoverability."""
    return format_module(module)
