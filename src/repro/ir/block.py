"""Basic blocks of the repro IR control flow graph."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.ir.instructions import Br, Instruction, Jump, Phi

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class BasicBlock:
    """A straight-line instruction sequence ending in a single terminator.

    Successor edges live on the terminator (:class:`Br`/:class:`Jump`);
    predecessor edges are computed on demand by scanning the function, which
    keeps block surgery simple at the cost of O(blocks) queries. Analyses
    that need fast predecessor access build a
    :class:`repro.analysis.cfg.CFG` snapshot instead.
    """

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    # ------------------------------------------------------------------
    # Instruction management
    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        """Add ``inst`` at the end of the block."""
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert ``inst`` at position ``index``."""
        inst.parent = self
        self.instructions.insert(index, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately before ``anchor`` (must be in block)."""
        return self.insert(self.instructions.index(anchor), inst)

    def insert_after_phis(self, inst: Instruction) -> Instruction:
        """Insert ``inst`` after the φ-node prefix of the block."""
        index = 0
        while index < len(self.instructions) and self.instructions[index].is_phi:
            index += 1
        return self.insert(index, inst)

    def index_of(self, inst: Instruction) -> int:
        return self.instructions.index(inst)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's final instruction if it is a terminator, else None."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> List["BasicBlock"]:
        # Inlined terminator check: this is the hottest structure query
        # (every CFG snapshot and fallback walk reads it per block).
        instructions = self.instructions
        if instructions and instructions[-1].is_terminator:
            return list(instructions[-1].targets)
        return []

    @property
    def predecessors(self) -> List["BasicBlock"]:
        if self.parent is None:
            return []
        preds = []
        for block in self.parent.blocks:
            if self in block.successors:
                preds.append(block)
        return preds

    def phis(self) -> Iterator[Phi]:
        """The φ-nodes at the head of this block."""
        for inst in self.instructions:
            if inst.is_phi:
                yield inst
            else:
                break

    def non_phi_instructions(self) -> Iterator[Instruction]:
        for inst in self.instructions:
            if not inst.is_phi:
                yield inst

    @property
    def first_non_phi(self) -> Optional[Instruction]:
        for inst in self.instructions:
            if not inst.is_phi:
                return inst
        return None

    def replace_successor(self, old: "BasicBlock", new: "BasicBlock") -> None:
        """Retarget this block's terminator edge(s) from ``old`` to ``new``."""
        term = self.terminator
        if isinstance(term, (Br, Jump)):
            term.replace_target(old, new)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
