"""Type system for the repro IR.

The IR is deliberately small: a 64-bit integer type (which doubles as the
boolean type — comparisons produce 0/1), a double-precision float type, an
opaque pointer type, and void for instructions that produce no value.

Types are singletons; compare them with ``is`` or ``==`` interchangeably.
"""

from __future__ import annotations


class Type:
    """Base class for IR types. Instances are interned singletons."""

    _name = "type"

    def __repr__(self) -> str:
        return self._name

    def __str__(self) -> str:
        return self._name

    @property
    def is_int(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_ptr(self) -> bool:
        return isinstance(self, PtrType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_value_type(self) -> bool:
        """True for types a register can hold (everything but void)."""
        return not self.is_void


class IntType(Type):
    """64-bit signed integer. Also the boolean type (0 = false, 1 = true)."""

    _name = "int"


class FloatType(Type):
    """Double-precision floating point."""

    _name = "float"


class PtrType(Type):
    """Opaque pointer into word-addressed memory."""

    _name = "ptr"


class VoidType(Type):
    """Absence of a value (stores, branches, void calls)."""

    _name = "void"


INT = IntType()
FLOAT = FloatType()
PTR = PtrType()
VOID = VoidType()

_BY_NAME = {"int": INT, "float": FLOAT, "ptr": PTR, "void": VOID}


def type_from_name(name: str) -> Type:
    """Look up a type by its textual name, raising ``KeyError`` if unknown."""
    return _BY_NAME[name]
