"""Convenience builder for constructing IR programmatically.

The builder keeps an insertion point (a block) and offers one method per
instruction kind; results are automatically given fresh names so that
programmatic construction never collides with parsed names.

Example::

    module = Module("demo")
    func = module.add_function("double", [("x", INT)], INT)
    b = IRBuilder(func)
    entry = b.new_block("entry")
    b.set_block(entry)
    doubled = b.add(func.args[0], b.const(2) if False else const_int(2))
    b.ret(doubled)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Boundary,
    Br,
    Call,
    Fcmp,
    Ftoi,
    Gep,
    Icmp,
    Instruction,
    Itof,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.types import FLOAT, INT, Type
from repro.ir.values import Constant, Value, const_float, const_int


class IRBuilder:
    """Builds instructions into a current block of a function."""

    def __init__(self, func: Function, block: Optional[BasicBlock] = None) -> None:
        self.func = func
        self.block = block

    # ------------------------------------------------------------------
    # Positioning
    # ------------------------------------------------------------------
    def new_block(self, name: str) -> BasicBlock:
        return self.func.add_block(name)

    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def _emit(self, inst: Instruction, name: str = "") -> Instruction:
        if self.block is None:
            raise ValueError("IRBuilder has no current block")
        if inst.type.is_value_type:
            inst.name = self.func.unique_value_name(name or inst.opcode)
        self.block.append(inst)
        return inst

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    @staticmethod
    def const(value) -> Constant:
        """Make an int or float constant from a Python number."""
        if isinstance(value, bool):
            return const_int(int(value))
        if isinstance(value, int):
            return const_int(value)
        if isinstance(value, float):
            return const_float(value)
        raise TypeError(f"cannot make a constant from {value!r}")

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def binop(self, opcode: str, lhs: Value, rhs: Value, name: str = "") -> BinaryOp:
        return self._emit(BinaryOp(opcode, lhs, rhs), name)

    def add(self, lhs, rhs, name=""):
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=""):
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=""):
        return self.binop("mul", lhs, rhs, name)

    def div(self, lhs, rhs, name=""):
        return self.binop("div", lhs, rhs, name)

    def rem(self, lhs, rhs, name=""):
        return self.binop("rem", lhs, rhs, name)

    def and_(self, lhs, rhs, name=""):
        return self.binop("and", lhs, rhs, name)

    def or_(self, lhs, rhs, name=""):
        return self.binop("or", lhs, rhs, name)

    def xor(self, lhs, rhs, name=""):
        return self.binop("xor", lhs, rhs, name)

    def shl(self, lhs, rhs, name=""):
        return self.binop("shl", lhs, rhs, name)

    def shr(self, lhs, rhs, name=""):
        return self.binop("shr", lhs, rhs, name)

    def fadd(self, lhs, rhs, name=""):
        return self.binop("fadd", lhs, rhs, name)

    def fsub(self, lhs, rhs, name=""):
        return self.binop("fsub", lhs, rhs, name)

    def fmul(self, lhs, rhs, name=""):
        return self.binop("fmul", lhs, rhs, name)

    def fdiv(self, lhs, rhs, name=""):
        return self.binop("fdiv", lhs, rhs, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Icmp:
        return self._emit(Icmp(pred, lhs, rhs), name)

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> Fcmp:
        return self._emit(Fcmp(pred, lhs, rhs), name)

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Select:
        return self._emit(Select(cond, a, b), name)

    def itof(self, value: Value, name: str = "") -> Itof:
        return self._emit(Itof(value), name)

    def ftoi(self, value: Value, name: str = "") -> Ftoi:
        return self._emit(Ftoi(value), name)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def alloca(self, size: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(size), name or "slot")

    def load(self, type_: Type, ptr: Value, name: str = "") -> Load:
        return self._emit(Load(type_, ptr), name)

    def store(self, value: Value, ptr: Value) -> Store:
        return self._emit(Store(value, ptr))

    def gep(self, base: Value, index, name: str = "") -> Gep:
        if isinstance(index, int):
            index = const_int(index)
        return self._emit(Gep(base, index), name)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    def br(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> Br:
        return self._emit(Br(cond, then_block, else_block))

    def jmp(self, target: BasicBlock) -> Jump:
        return self._emit(Jump(target))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._emit(Ret(value))

    def phi(self, type_: Type, incoming=(), name: str = "") -> Phi:
        return self._emit(Phi(type_, incoming), name)

    def call(self, type_: Type, callee: str, args: Sequence[Value], name: str = "") -> Call:
        return self._emit(Call(type_, callee, args), name)

    def boundary(self) -> Boundary:
        return self._emit(Boundary())
