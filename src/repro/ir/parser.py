"""Parser for the textual repro IR.

Accepts the format produced by :mod:`repro.ir.printer` and round-trips it.
Forward references (needed for φ-nodes and loop-carried values) are resolved
with placeholder patching after the function body is read.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Boundary,
    Br,
    CMP_PREDS,
    Call,
    Fcmp,
    FLOAT_BINOPS,
    Ftoi,
    Gep,
    Icmp,
    INT_BINOPS,
    Instruction,
    Itof,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import Type, VOID, type_from_name
from repro.ir.values import Undef, Value, const_float, const_int


class IRSyntaxError(ValueError):
    """Raised on malformed IR text, with a line number."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|;[^\n]*)
  | (?P<float>-?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)(?![\w.])|-?\d+\.\d*(?![\w])|-?\.\d+(?![\w]))
  | (?P<int>-?\d+)
  | (?P<global>@[A-Za-z_][\w.]*)
  | (?P<local>%[A-Za-z_][\w.]*)
  | (?P<word>[A-Za-z_][\w.]*)
  | (?P<punct>->|[{}()\[\]=:,])
    """,
    re.VERBOSE,
)


class _Placeholder(Value):
    """Stand-in for a not-yet-defined local value (forward reference)."""

    def __init__(self, name: str) -> None:
        super().__init__(VOID, name)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self.kind} {self.text!r} @{self.line}>"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise IRSyntaxError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup
        text = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    tokens.append(_Token("eof", "", line))
    return tokens


class _FunctionContext:
    """Per-function parse state: name tables and patch lists."""

    def __init__(self, func: Function, module_globals: Dict[str, Value]) -> None:
        self.func = func
        self.module_globals = module_globals
        self.values: Dict[str, Value] = {arg.name: arg for arg in func.args}
        self.blocks: Dict[str, BasicBlock] = {}
        self.placeholders: Dict[str, _Placeholder] = {}
        # Blocks referenced before their labels appear.
        self.pending_blocks: Dict[str, BasicBlock] = {}

    def lookup_value(self, name: str) -> Value:
        if name in self.values:
            return self.values[name]
        placeholder = self.placeholders.get(name)
        if placeholder is None:
            placeholder = _Placeholder(name)
            self.placeholders[name] = placeholder
        return placeholder

    def define_value(self, name: str, value: Value, line: int) -> None:
        if name in self.values:
            raise IRSyntaxError(f"%{name} defined twice", line)
        self.values[name] = value
        self.func.claim_name(name)
        placeholder = self.placeholders.pop(name, None)
        if placeholder is not None:
            placeholder.replace_all_uses_with(value)

    def lookup_block(self, name: str) -> BasicBlock:
        if name in self.blocks:
            return self.blocks[name]
        if name not in self.pending_blocks:
            self.pending_blocks[name] = BasicBlock(name, parent=self.func)
        return self.pending_blocks[name]

    def start_block(self, name: str, line: int) -> BasicBlock:
        if name in self.blocks:
            raise IRSyntaxError(f"block {name} defined twice", line)
        block = self.pending_blocks.pop(name, None)
        if block is None:
            block = BasicBlock(name, parent=self.func)
        self.blocks[name] = block
        self.func.blocks.append(block)
        return block

    def finish(self, line: int) -> None:
        if self.placeholders:
            missing = ", ".join(f"%{n}" for n in sorted(self.placeholders))
            raise IRSyntaxError(f"undefined value(s): {missing}", line)
        if self.pending_blocks:
            missing = ", ".join(sorted(self.pending_blocks))
            raise IRSyntaxError(f"undefined block label(s): {missing}", line)


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, source: str) -> None:
        self.tokens = _tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def tok(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tok
        self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.tok
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise IRSyntaxError(f"expected {wanted!r}, got {token.text!r}", token.line)
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.tok
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect_word(self, text: str) -> _Token:
        return self.expect("word", text)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_module(self, name: str = "module") -> Module:
        module = Module(name)
        while self.tok.kind != "eof":
            if self.tok.kind == "word" and self.tok.text == "global":
                self._parse_global(module)
            elif self.tok.kind == "word" and self.tok.text in ("func", "declare"):
                self._parse_function(module)
            else:
                raise IRSyntaxError(
                    f"expected 'global', 'func' or 'declare', got {self.tok.text!r}",
                    self.tok.line,
                )
        return module

    def _parse_global(self, module: Module) -> None:
        self.expect_word("global")
        name = self.expect("global").text[1:]
        size = int(self.expect("int").text)
        initializer = None
        if self.accept("punct", "="):
            self.expect("punct", "[")
            initializer = []
            if not self.accept("punct", "]"):
                while True:
                    initializer.append(self._parse_number())
                    if self.accept("punct", "]"):
                        break
                    self.expect("punct", ",")
        module.add_global(name, size, initializer)

    def _parse_number(self):
        token = self.tok
        if token.kind == "int":
            self.advance()
            return int(token.text)
        if token.kind == "float":
            self.advance()
            return float(token.text)
        raise IRSyntaxError(f"expected number, got {token.text!r}", token.line)

    def _parse_params(self) -> List[Tuple[str, Type]]:
        self.expect("punct", "(")
        params: List[Tuple[str, Type]] = []
        if self.accept("punct", ")"):
            return params
        while True:
            pname = self.expect("local").text[1:]
            self.expect("punct", ":")
            ptype = self._parse_type()
            params.append((pname, ptype))
            if self.accept("punct", ")"):
                return params
            self.expect("punct", ",")

    def _parse_type(self) -> Type:
        token = self.expect("word")
        try:
            return type_from_name(token.text)
        except KeyError:
            raise IRSyntaxError(f"unknown type {token.text!r}", token.line) from None

    def _parse_function(self, module: Module) -> None:
        is_decl = self.tok.text == "declare"
        self.advance()
        name = self.expect("global").text[1:]
        params = self._parse_params()
        return_type = VOID
        if self.accept("punct", "->"):
            return_type = self._parse_type()
        func = module.add_function(name, params, return_type)
        if is_decl:
            return
        self.expect("punct", "{")
        ctx = _FunctionContext(func, module.globals)
        current: Optional[BasicBlock] = None
        while not self.accept("punct", "}"):
            token = self.tok
            if token.kind == "word" and self.tokens[self.pos + 1].text == ":" and token.text not in (
                "store", "br", "jmp", "ret", "call", "boundary",
            ):
                self.advance()
                self.expect("punct", ":")
                current = ctx.start_block(token.text, token.line)
                continue
            if current is None:
                raise IRSyntaxError("instruction before first block label", token.line)
            self._parse_instruction(ctx, current)
        ctx.finish(self.tok.line)

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def _parse_operand(self, ctx: _FunctionContext) -> Value:
        token = self.tok
        if token.kind == "local":
            self.advance()
            return ctx.lookup_value(token.text[1:])
        if token.kind == "global":
            self.advance()
            name = token.text[1:]
            module_global = ctx.module_globals.get(name)
            if module_global is None:
                raise IRSyntaxError(f"unknown global @{name}", token.line)
            return module_global
        if token.kind == "int":
            self.advance()
            return const_int(int(token.text))
        if token.kind == "float":
            self.advance()
            return const_float(float(token.text))
        if token.kind == "word" and token.text == "undef":
            self.advance()
            self.expect("punct", ":")
            return Undef(self._parse_type())
        raise IRSyntaxError(f"expected operand, got {token.text!r}", token.line)

    def _parse_instruction(self, ctx: _FunctionContext, block: BasicBlock) -> None:
        token = self.tok
        if token.kind == "local":
            self._parse_assignment(ctx, block)
            return
        word = self.expect("word").text
        if word == "store":
            value = self._parse_operand(ctx)
            self.expect("punct", ",")
            ptr = self._parse_operand(ctx)
            block.append(Store(value, ptr))
        elif word == "br":
            cond = self._parse_operand(ctx)
            self.expect("punct", ",")
            then_name = self.expect("word").text
            self.expect("punct", ",")
            else_name = self.expect("word").text
            block.append(Br(cond, ctx.lookup_block(then_name), ctx.lookup_block(else_name)))
        elif word == "jmp":
            target = self.expect("word").text
            block.append(Jump(ctx.lookup_block(target)))
        elif word == "ret":
            if self.tok.kind in ("local", "global", "int", "float") or (
                self.tok.kind == "word" and self.tok.text == "undef"
            ):
                block.append(Ret(self._parse_operand(ctx)))
            else:
                block.append(Ret())
        elif word == "call":
            self.expect_word("void")
            callee = self.expect("global").text[1:]
            args = self._parse_call_args(ctx)
            block.append(Call(VOID, callee, args))
        elif word == "boundary":
            block.append(Boundary())
        else:
            raise IRSyntaxError(f"unknown instruction {word!r}", token.line)

    def _parse_call_args(self, ctx: _FunctionContext) -> List[Value]:
        self.expect("punct", "(")
        args: List[Value] = []
        if self.accept("punct", ")"):
            return args
        while True:
            args.append(self._parse_operand(ctx))
            if self.accept("punct", ")"):
                return args
            self.expect("punct", ",")

    def _parse_assignment(self, ctx: _FunctionContext, block: BasicBlock) -> None:
        name_token = self.expect("local")
        name = name_token.text[1:]
        self.expect("punct", "=")
        op_token = self.expect("word")
        opcode = op_token.text
        inst: Instruction
        if opcode in INT_BINOPS or opcode in FLOAT_BINOPS:
            lhs = self._parse_operand(ctx)
            self.expect("punct", ",")
            rhs = self._parse_operand(ctx)
            inst = BinaryOp(opcode, lhs, rhs, name)
        elif opcode in ("icmp", "fcmp"):
            pred = self.expect("word").text
            if pred not in CMP_PREDS:
                raise IRSyntaxError(f"unknown predicate {pred!r}", op_token.line)
            lhs = self._parse_operand(ctx)
            self.expect("punct", ",")
            rhs = self._parse_operand(ctx)
            inst = Icmp(pred, lhs, rhs, name) if opcode == "icmp" else Fcmp(pred, lhs, rhs, name)
        elif opcode == "select":
            cond = self._parse_operand(ctx)
            self.expect("punct", ",")
            a = self._parse_operand(ctx)
            self.expect("punct", ",")
            b = self._parse_operand(ctx)
            inst = Select(cond, a, b, name)
        elif opcode == "itof":
            inst = Itof(self._parse_operand(ctx), name)
        elif opcode == "ftoi":
            inst = Ftoi(self._parse_operand(ctx), name)
        elif opcode == "alloca":
            size = int(self.expect("int").text)
            inst = Alloca(size, name)
        elif opcode == "load":
            type_ = self._parse_type()
            self.expect("punct", ",")
            ptr = self._parse_operand(ctx)
            inst = Load(type_, ptr, name)
        elif opcode == "gep":
            base = self._parse_operand(ctx)
            self.expect("punct", ",")
            index = self._parse_operand(ctx)
            inst = Gep(base, index, name)
        elif opcode == "phi":
            type_ = self._parse_type()
            inst = Phi(type_, [], name)
            while True:
                self.expect("punct", "[")
                value = self._parse_operand(ctx)
                self.expect("punct", ",")
                label = self.expect("word").text
                self.expect("punct", "]")
                inst.add_incoming(value, ctx.lookup_block(label))
                if not self.accept("punct", ","):
                    break
        elif opcode == "call":
            type_ = self._parse_type()
            callee = self.expect("global").text[1:]
            args = self._parse_call_args(ctx)
            inst = Call(type_, callee, args, name)
        else:
            raise IRSyntaxError(f"unknown opcode {opcode!r}", op_token.line)
        ctx.define_value(name, inst, name_token.line)
        block.append(inst)


def parse_module(source: str, name: str = "module") -> Module:
    """Parse IR text into a :class:`Module`."""
    return Parser(source).parse_module(name)
