"""Core value hierarchy for the repro IR.

Every operand in the IR is a :class:`Value`. Values track their users so
that transforms can rewrite programs with ``replace_all_uses_with``. The
leaf kinds defined here are constants, undef, function arguments, and
global variables; instructions (which are also values) live in
:mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.ir.types import FLOAT, INT, PTR, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.ir.instructions import Instruction


class Value:
    """Base class for everything that can appear as an operand.

    Attributes:
        type: the :class:`~repro.ir.types.Type` of the value.
        name: optional printable name (``%name`` for locals, ``@name`` for
            globals and functions).
    """

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name
        # Uses are stored as (instruction, operand_index) pairs. A list, not
        # a set: one instruction may use the same value in several slots.
        self._uses: List["Use"] = []

    # ------------------------------------------------------------------
    # Use tracking
    # ------------------------------------------------------------------
    @property
    def uses(self) -> List["Use"]:
        """The live (instruction, index) pairs that reference this value."""
        return list(self._uses)

    @property
    def users(self) -> List["Instruction"]:
        """Instructions that reference this value (deduplicated, ordered)."""
        seen = []
        for use in self._uses:
            if use.user not in seen:
                seen.append(use.user)
        return seen

    def add_use(self, use: "Use") -> None:
        self._uses.append(use)

    def remove_use(self, use: "Use") -> None:
        self._uses.remove(use)

    @property
    def is_used(self) -> bool:
        return bool(self._uses)

    def replace_all_uses_with(self, new: "Value") -> None:
        """Rewrite every use of ``self`` to reference ``new`` instead."""
        if new is self:
            return
        for use in list(self._uses):
            use.user.set_operand(use.index, new)

    # ------------------------------------------------------------------
    # Printing
    # ------------------------------------------------------------------
    def ref(self) -> str:
        """The operand-position spelling of this value (e.g. ``%x``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ref()}>"


class Use:
    """A single operand slot: instruction ``user`` reads ``value`` at ``index``."""

    __slots__ = ("user", "index", "value")

    def __init__(self, user: "Instruction", index: int, value: Value) -> None:
        self.user = user
        self.index = index
        self.value = value


class Constant(Value):
    """An immediate integer or float constant."""

    def __init__(self, type_: Type, value) -> None:
        super().__init__(type_, name="")
        self.value = value

    def ref(self) -> str:
        if self.type.is_float:
            text = repr(float(self.value))
            # Ensure floats always round-trip as floats in the parser.
            if "." not in text and "e" not in text and "inf" not in text and "nan" not in text:
                text += ".0"
            return text
        return str(int(self.value))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((id(self.type), self.value))

    def __repr__(self) -> str:
        return f"<Constant {self.type} {self.value}>"


def const_int(value: int) -> Constant:
    """Make an integer constant."""
    return Constant(INT, int(value))


def const_float(value: float) -> Constant:
    """Make a float constant."""
    return Constant(FLOAT, float(value))


class Undef(Value):
    """An undefined value of a given type (used by SSA construction)."""

    def __init__(self, type_: Type) -> None:
        super().__init__(type_, name="")

    def ref(self) -> str:
        return "undef"

    def __repr__(self) -> str:
        return f"<Undef {self.type}>"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, name: str, type_: Type, index: int) -> None:
        super().__init__(type_, name)
        self.index = index

    def __repr__(self) -> str:
        return f"<Argument %{self.name}: {self.type}>"


class GlobalVariable(Value):
    """A module-level variable: a fixed-size block of word-addressed memory.

    The value of a ``GlobalVariable`` operand is the *address* of the block,
    so its type is always ``ptr``.

    Attributes:
        size: number of words reserved.
        initializer: optional list of initial word values (ints/floats);
            padded with zeros to ``size`` at interpretation time.
    """

    def __init__(self, name: str, size: int, initializer: Optional[list] = None) -> None:
        super().__init__(PTR, name)
        if size <= 0:
            raise ValueError(f"global @{name} must have positive size, got {size}")
        if initializer is not None and len(initializer) > size:
            raise ValueError(
                f"global @{name}: initializer has {len(initializer)} words "
                f"but size is {size}"
            )
        self.size = size
        self.initializer = list(initializer) if initializer is not None else None

    def ref(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        return f"<GlobalVariable @{self.name} size={self.size}>"


def operand_values(values: Iterator[Value]) -> List[Value]:
    """Materialize an operand iterator as a list (small helper for callers)."""
    return list(values)
