"""Constant folding and algebraic simplification.

Folds operations whose operands are compile-time constants and a few
always-safe identities. Semantics mirror the interpreter exactly (64-bit
wrapping ints, C-style division); folding must never change what the
machine would compute.
"""

from __future__ import annotations

from typing import Optional

from repro.interp.interpreter import _int_div, _int_rem, wrap64
from repro.ir.function import Function
from repro.ir.instructions import (
    BinaryOp,
    Br,
    Fcmp,
    Ftoi,
    Icmp,
    Instruction,
    Itof,
    Jump,
    Select,
)
from repro.ir.values import Constant, Value, const_float, const_int

_COMPARE = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_INT_FOLD = {
    "add": lambda a, b: wrap64(a + b),
    "sub": lambda a, b: wrap64(a - b),
    "mul": lambda a, b: wrap64(a * b),
    "and": lambda a, b: wrap64(a & b),
    "or": lambda a, b: wrap64(a | b),
    "xor": lambda a, b: wrap64(a ^ b),
    "shl": lambda a, b: wrap64(a << (b & 63)),
    "shr": lambda a, b: wrap64(a >> (b & 63)),
}

_FLOAT_FOLD = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
}


def _fold_instruction(inst: Instruction) -> Optional[Value]:
    """The constant/simplified replacement for ``inst``, or None."""
    if isinstance(inst, BinaryOp):
        lhs, rhs = inst.lhs, inst.rhs
        lconst = lhs.value if isinstance(lhs, Constant) else None
        rconst = rhs.value if isinstance(rhs, Constant) else None

        if lconst is not None and rconst is not None:
            opcode = inst.opcode
            if opcode in _INT_FOLD:
                return const_int(_INT_FOLD[opcode](lconst, rconst))
            if opcode == "div" and rconst != 0:
                return const_int(wrap64(_int_div(lconst, rconst)))
            if opcode == "rem" and rconst != 0:
                return const_int(wrap64(_int_rem(lconst, rconst)))
            if opcode in _FLOAT_FOLD:
                return const_float(_FLOAT_FOLD[opcode](lconst, rconst))
            if opcode == "fdiv" and rconst != 0.0:
                return const_float(lconst / rconst)
            return None

        # Algebraic identities (always safe for wrapping integers).
        opcode = inst.opcode
        if opcode == "add":
            if rconst == 0:
                return lhs
            if lconst == 0:
                return rhs
        elif opcode == "sub" and rconst == 0:
            return lhs
        elif opcode == "mul":
            if rconst == 1:
                return lhs
            if lconst == 1:
                return rhs
            if rconst == 0 or lconst == 0:
                return const_int(0)
        elif opcode in ("shl", "shr") and rconst == 0:
            return lhs
        elif opcode == "and":
            if rconst == 0 or lconst == 0:
                return const_int(0)
            if rconst == -1:
                return lhs
            if lconst == -1:
                return rhs
        elif opcode == "or":
            if rconst == 0:
                return lhs
            if lconst == 0:
                return rhs
        elif opcode == "xor":
            if rconst == 0:
                return lhs
            if lconst == 0:
                return rhs
        return None

    if isinstance(inst, (Icmp, Fcmp)):
        if isinstance(inst.lhs, Constant) and isinstance(inst.rhs, Constant):
            return const_int(int(_COMPARE[inst.pred](inst.lhs.value, inst.rhs.value)))
        return None

    if isinstance(inst, Select) and isinstance(inst.cond, Constant):
        return inst.true_value if inst.cond.value else inst.false_value

    if isinstance(inst, Itof) and isinstance(inst.operand(0), Constant):
        return const_float(float(inst.operand(0).value))

    if isinstance(inst, Ftoi) and isinstance(inst.operand(0), Constant):
        return const_int(wrap64(int(inst.operand(0).value)))

    return None


def fold_constants(func: Function) -> int:
    """Fold to fixpoint; returns the number of instructions replaced.

    Also simplifies conditional branches whose condition is constant into
    unconditional jumps (the dead arm becomes unreachable and is cleaned
    up by :func:`repro.analysis.cfg.remove_unreachable_blocks`).
    """
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, Br) and isinstance(inst.cond, Constant):
                    target = inst.then_block if inst.cond.value else inst.else_block
                    dead = inst.else_block if inst.cond.value else inst.then_block
                    if dead is not target:
                        for phi in dead.phis():
                            phi.remove_incoming(block)
                    block.instructions.remove(inst)
                    inst.drop_operands()
                    block.append(Jump(target))
                    folded += 1
                    changed = True
                    continue
                replacement = _fold_instruction(inst)
                if replacement is not None and replacement is not inst:
                    inst.replace_all_uses_with(replacement)
                    inst.remove_from_parent()
                    folded += 1
                    changed = True
    return folded
