"""Loop unroll-by-one, used by the region construction (paper §5).

"Before inserting cuts, we attempt to unroll the containing loop once if
possible. ... By unrolling the loop once, we can place the second necessary
cut in the unrolled iteration. This effectively preserves region sizes on
average." (§5, Cutting self-dependent pseudoregister antidependences.)

The transform duplicates the loop body so each traversal runs two logical
iterations: ``H → ... → T → H' → ... → T' → H``. Preconditions (checked by
:func:`can_unroll_once`): a single latch, and reducible structure (natural
loop from :mod:`repro.analysis.loops`). Values defined in the loop and used
outside are routed through φ-nodes in dedicated exit blocks (LCSSA-style)
so SSA dominance survives having two copies of each definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.loops import Loop
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Value
from repro.transforms.clone import clone_blocks, split_edge


def can_unroll_once(loop: Loop) -> bool:
    """Check the structural preconditions for :func:`unroll_once`."""
    return len(set(loop.latches)) == 1


def _ensure_dedicated_exits(func: Function, loop: Loop) -> List[Tuple[BasicBlock, BasicBlock]]:
    """Split exit edges so each exit block has exactly one, in-loop pred.

    Returns (in-loop block, dedicated exit block) pairs.
    """
    dedicated = []
    for inside, outside in loop.exits():
        exit_block = split_edge(func, inside, outside)
        dedicated.append((inside, exit_block))
    return dedicated


class UnrollNotSupported(RuntimeError):
    """Raised when a loop does not meet unroll preconditions."""


def unroll_once(func: Function, loop: Loop) -> Dict[BasicBlock, BasicBlock]:
    """Duplicate ``loop``'s body (two iterations per traversal).

    Returns the block map original→clone. Raises :class:`UnrollNotSupported`
    if preconditions fail; callers fall back to inserting extra cuts
    (paper §4.2.2 case 3 without the enhancement).
    """
    if not can_unroll_once(loop):
        raise UnrollNotSupported(f"loop at {loop.header.name} has multiple latches")

    header = loop.header
    latch = loop.latches[0]

    # 1. Dedicated exits + LCSSA φs for values escaping the loop.
    dedicated = _ensure_dedicated_exits(func, loop)
    _rewrite_escaping_values(func, loop, dedicated)

    # 2. Clone the body.
    layout_index = {block: i for i, block in enumerate(func.blocks)}
    body = sorted(loop.blocks, key=layout_index.__getitem__)
    bmap, vmap = clone_blocks(func, body, suffix="u")
    header_clone = bmap[header]
    latch_clone = bmap[latch]

    # 3. Redirect the original latch to the cloned header; the cloned latch
    #    back-edges to the original header.
    latch.replace_successor(header, header_clone)
    latch_clone.replace_successor(header_clone, header)

    # 4. Fix header φs.
    #    Capture the iteration-1 back-edge values before rewiring anything.
    first_iter_values: Dict[Phi, Value] = {
        phi: phi.incoming_for(latch) for phi in header.phis()
    }
    #    Original header now receives its back edge from the cloned latch;
    #    the in-loop incoming value is the *cloned* (iteration-2) computation.
    for phi, value in first_iter_values.items():
        phi.replace_incoming_block(latch, latch_clone)
        phi.set_incoming_for(latch_clone, vmap.get(value, value))
    #    The cloned header's only predecessor is the original latch; its φs
    #    collapse to the value flowing out of the first iteration.
    for phi in list(header_clone.phis()):
        original_phi = next(p for p, c in vmap.items() if c is phi)
        replacement = first_iter_values[original_phi]
        phi.replace_all_uses_with(replacement)
        phi.remove_from_parent()
        # Later consumers of the value map (exit-φ patching below) must see
        # the surviving replacement, not the deleted clone.
        vmap[original_phi] = replacement

    # 5. Cloned exit edges point at the dedicated exit blocks; add their φ
    #    entries for the new predecessors.
    for inside, exit_block in dedicated:
        inside_clone = bmap[inside]
        if exit_block in inside_clone.successors:
            for phi in exit_block.phis():
                value = phi.incoming_for(inside)
                phi.add_incoming(vmap.get(value, value), inside_clone)

    return bmap


def _rewrite_escaping_values(
    func: Function,
    loop: Loop,
    dedicated: List[Tuple[BasicBlock, BasicBlock]],
) -> None:
    """LCSSA: uses outside the loop read a φ in the dominating exit block.

    For each loop-defined value with outside uses, place a single-incoming
    φ in every dedicated exit block and rewrite each outside use to the φ
    of an exit block that dominates the use. If no exit block dominates a
    use (the use point merges several exits), the value must already flow
    through a φ at that merge; we then rewrite the matching incoming edges
    instead — handled naturally because φ uses are classified by their
    incoming block.
    """
    exit_blocks = [exit_block for _, exit_block in dedicated]
    exit_set = set(exit_blocks)
    # A dedicated exit block has exactly one predecessor: the in-loop
    # block it was split from (no O(blocks) predecessor scan needed).
    exit_pred = {exit_block: inside for inside, exit_block in dedicated}

    # Dominance via removal-reachability: an exit block E dominates a
    # reachable block P iff P cannot be reached from the entry once E is
    # deleted (and no block dominates an unreachable P).  The handful of
    # single-source DFS sweeps this needs is much cheaper than building a
    # full dominator tree of the post-split graph, and the block graph is
    # stable for the whole rewrite (only φs are inserted), so each sweep
    # is computed at most once.
    reach_without: Dict[Optional[BasicBlock], Set[BasicBlock]] = {}

    def _reachable_avoiding(banned: Optional[BasicBlock]) -> Set[BasicBlock]:
        reach = reach_without.get(banned)
        if reach is None:
            reach = set()
            entry = func.entry
            if entry is not banned:
                reach.add(entry)
                stack = [entry]
                while stack:
                    for succ in stack.pop().successors:
                        if succ is not banned and succ not in reach:
                            reach.add(succ)
                            stack.append(succ)
            reach_without[banned] = reach
        return reach

    def _exit_dominates(exit_block: BasicBlock, position: BasicBlock) -> bool:
        if position not in _reachable_avoiding(None):
            return False
        if position is exit_block:
            return True
        return position not in _reachable_avoiding(exit_block)

    for block in list(loop.blocks):
        for inst in list(block.instructions):
            if not inst.type.is_value_type:
                continue
            outside_uses = []
            for use in inst.uses:
                user = use.user
                if isinstance(user, Phi):
                    position = user.incoming_blocks[use.index]
                else:
                    position = user.parent
                if position not in loop.blocks and position not in exit_set:
                    outside_uses.append(use)
            if not outside_uses:
                continue
            phis: Dict[BasicBlock, Phi] = {}
            for exit_block in exit_blocks:
                phi = Phi(inst.type, [(inst, exit_pred[exit_block])],
                          name=func.unique_value_name(f"{inst.name}.lcssa"))
                exit_block.insert(0, phi)
                phis[exit_block] = phi
            for use in outside_uses:
                user = use.user
                if isinstance(user, Phi):
                    position = user.incoming_blocks[use.index]
                else:
                    position = user.parent
                chosen = None
                for exit_block in exit_blocks:
                    if _exit_dominates(exit_block, position):
                        chosen = phis[exit_block]
                        break
                if chosen is None:
                    raise UnrollNotSupported(
                        f"no dominating exit for use of %{inst.name} in "
                        f"{position.name}"
                    )
                user.set_operand(use.index, chosen)
            # Drop φs that ended up unused.
            for phi in phis.values():
                if not phi.is_used:
                    phi.remove_from_parent()
