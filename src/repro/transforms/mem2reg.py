"""SSA construction: promote scalar allocas to pseudoregister values.

This is the paper's first program transformation (§4.1): "the conversion of
all pseudoregister assignments to static single assignment (SSA) form.
After this transformation ... all artificial clobber antidependences are
effectively eliminated" (except self-dependent loop φs, handled later by
the region construction).

Frontend output keeps every local variable in an ``alloca`` slot accessed
by ``load``/``store`` (the moral equivalent of the paper's mutable
pseudoregisters t0, t1, ...). Promotion is the classic
Cytron-et-al-by-dominance-frontiers algorithm:

1. a scalar, non-escaping alloca whose address is only used directly by
   loads and stores is *promotable*;
2. φ-nodes are placed at the iterated dominance frontier of its defining
   blocks (semi-pruned: single-block allocas skip φ placement entirely);
3. a dominator-tree walk renames loads to the reaching definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree, compute_dominance_frontiers
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Instruction, Load, Phi, Store
from repro.ir.types import Type
from repro.ir.values import Undef, Value


def promotable_allocas(func: Function) -> List[Alloca]:
    """Allocas that can be rewritten into SSA values.

    Requirements: size 1 (scalar), every use is a ``load`` from it or a
    ``store`` *to* it (never storing the address itself), and all accesses
    agree on a single value type.
    """
    result = []
    for inst in func.entry.instructions if func.blocks else []:
        if not isinstance(inst, Alloca) or inst.size != 1:
            continue
        if _promotion_type(inst) is not None:
            result.append(inst)
    return result


def _promotion_type(alloca: Alloca) -> Optional[Type]:
    value_type: Optional[Type] = None
    for use in alloca.uses:
        user = use.user
        if isinstance(user, Load) and user.ptr is alloca:
            candidate = user.type
        elif isinstance(user, Store) and user.ptr is alloca and user.value is not alloca:
            candidate = user.value.type
        else:
            return None  # address escapes (gep, call arg, stored value, ...)
        if value_type is None:
            value_type = candidate
        elif type(candidate) is not type(value_type):
            return None
    return value_type


class _AllocaPromotion:
    """Rename state for one alloca during the dominator-tree walk."""

    def __init__(self, alloca: Alloca, value_type: Type) -> None:
        self.alloca = alloca
        self.type = value_type
        self.phis: Set[Phi] = set()


def promote_to_ssa(func: Function, am=None) -> int:
    """Promote all promotable allocas; returns the number promoted.

    ``am`` (an :class:`repro.analysis.manager.AnalysisManager`) supplies
    cached CFG/dominator/frontier snapshots when available.  The pass
    inserts φ-nodes and rewrites loads/stores but never touches block
    structure or terminators, so it always preserves the CFG tier; the
    caller owns the invalidation call.
    """
    # Inline the promotability scan so the value type is computed once per
    # alloca (``promotable_allocas`` + a second ``_promotion_type`` call
    # would walk every use list twice).
    promotable: List[tuple] = []
    for inst in func.entry.instructions if func.blocks else []:
        if inst.__class__ is Alloca and inst.size == 1:
            value_type = _promotion_type(inst)
            if value_type is not None:
                promotable.append((inst, value_type))
    if not promotable:
        return 0
    allocas = [alloca for alloca, _ in promotable]

    if am is not None:
        cfg = am.cfg(func)
        domtree = am.domtree(func)
        frontiers = am.frontiers(func)
    else:
        cfg = CFG(func)
        domtree = DominatorTree.compute_from_cfg(cfg)
        frontiers = compute_dominance_frontiers(domtree)

    promotions: Dict[Alloca, _AllocaPromotion] = {}
    phi_owner: Dict[Phi, _AllocaPromotion] = {}

    for alloca, value_type in promotable:
        promo = _AllocaPromotion(alloca, value_type)
        promotions[alloca] = promo

        defining_blocks = {
            use.user.parent
            for use in alloca.uses
            if isinstance(use.user, Store) and cfg.is_reachable(use.user.parent)
        }
        # Iterated dominance frontier.  Visit blocks in RPO order — the
        # frontier sets iterate in id-hash order, which varies run to
        # run, and φ insertion order drives the value-name counters; RPO
        # keeps the output byte-stable across runs and cache modes.
        worklist = sorted(defining_blocks, key=cfg.rpo_index, reverse=True)
        placed: Set[BasicBlock] = set()
        while worklist:
            block = worklist.pop()
            for frontier_block in sorted(frontiers.get(block, ()), key=cfg.rpo_index):
                if frontier_block in placed:
                    continue
                placed.add(frontier_block)
                phi = Phi(value_type, [], name=func.unique_value_name(alloca.name))
                frontier_block.insert(0, phi)
                promo.phis.add(phi)
                phi_owner[phi] = promo
                if frontier_block not in defining_blocks:
                    worklist.append(frontier_block)

    # ------------------------------------------------------------------
    # Renaming walk over the dominator tree.
    # ------------------------------------------------------------------
    def current_value(stack: List[Value], promo: _AllocaPromotion) -> Value:
        return stack[-1] if stack else Undef(promo.type)

    stacks: Dict[Alloca, List[Value]] = {alloca: [] for alloca in allocas}
    dead: List[Instruction] = []

    def rename(block: BasicBlock) -> None:
        pushed: List[Alloca] = []
        # Exact-type tests: the IR has no instruction subclasses, and the
        # common case (an unrelated instruction) exits on three pointer
        # comparisons instead of three isinstance calls.  Dead loads and
        # stores are only recorded here and removed after the walk, so
        # iterating the live list is safe.
        for inst in block.instructions:
            cls = inst.__class__
            if cls is Phi:
                promo = phi_owner.get(inst)
                if promo is not None:
                    stacks[promo.alloca].append(inst)
                    pushed.append(promo.alloca)
                continue
            if cls is Load:
                promo = promotions.get(inst.ptr)
                if promo is not None:
                    inst.replace_all_uses_with(current_value(stacks[promo.alloca], promo))
                    dead.append(inst)
                continue
            if cls is Store:
                promo = promotions.get(inst.ptr)
                if promo is not None:
                    stacks[promo.alloca].append(inst.value)
                    pushed.append(promo.alloca)
                    dead.append(inst)
                continue
        # The pass never edits terminators, so the snapshot adjacency is
        # the live one — skip the per-block terminator re-scan.  Most
        # successors have no φs at all; testing the first instruction
        # avoids spinning up the phis() generator for them.
        for succ in cfg.successors[block]:
            succ_instructions = succ.instructions
            if not succ_instructions or succ_instructions[0].__class__ is not Phi:
                continue
            for phi in succ.phis():
                promo = phi_owner.get(phi)
                if promo is not None:
                    phi.add_incoming(current_value(stacks[promo.alloca], promo), block)
        for child in domtree.children.get(block, ()):
            rename(child)
        for alloca in pushed:
            stacks[alloca].pop()

    # The dominator tree can be deep for long block chains; use an explicit
    # stack to avoid Python recursion limits.
    _rename_iterative(func, domtree, rename_block=rename)

    for inst in dead:
        inst.remove_from_parent()
    for alloca in allocas:
        # Accesses in unreachable blocks were never visited by the renaming
        # walk; scrub them so the alloca really is dead.
        for use in alloca.uses:
            user = use.user
            if isinstance(user, Load):
                user.replace_all_uses_with(Undef(user.type))
                user.remove_from_parent()
            elif isinstance(user, Store):
                user.remove_from_parent()
        assert not alloca.is_used, f"alloca %{alloca.name} still used after promotion"
        alloca.remove_from_parent()

    _prune_dead_phis(func, set(phi_owner))
    return len(allocas)


def _rename_iterative(func: Function, domtree: DominatorTree, rename_block) -> None:
    """Drive ``rename_block`` with the recursion inside it.

    ``rename_block`` recurses over dominator-tree children itself; for the
    function sizes in this project Python's default recursion limit is
    sufficient except for pathological chains, so we simply raise the limit
    around the walk.
    """
    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000 + len(func.blocks) * 4))
    try:
        rename_block(func.entry)
    finally:
        sys.setrecursionlimit(old_limit)


def _prune_dead_phis(func: Function, inserted: Set[Phi]) -> None:
    """Remove inserted φs that are unused (semi-pruned leftovers)."""
    hosts = {phi.parent for phi in inserted}
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            if block not in hosts:
                continue
            for phi in list(block.phis()):
                if phi in inserted and not phi.is_used:
                    phi.remove_from_parent()
                    changed = True
                elif phi in inserted and all(u is phi for u in phi.users):
                    phi.replace_all_uses_with(Undef(phi.type))
                    phi.remove_from_parent()
                    changed = True
