"""CFG simplification: jump threading and block merging.

Two classic cleanups, both φ-aware:

- **forwarding-block elimination**: a block containing only ``jmp T``
  is bypassed (predecessors retarget to ``T``), provided φ-nodes in ``T``
  can be rewired unambiguously;
- **linear merge**: a block with a unique predecessor whose terminator is
  an unconditional jump to it is folded into that predecessor.

Run after constant folding, which creates both shapes.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.cfg import remove_unreachable_blocks
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Jump, Phi


def _is_forwarding(block: BasicBlock) -> Optional[BasicBlock]:
    """Target block if ``block`` is just an unconditional jump."""
    if len(block.instructions) == 1 and isinstance(block.instructions[0], Jump):
        return block.instructions[0].target
    return None


def _can_bypass(block: BasicBlock, target: BasicBlock) -> bool:
    """Safe to send ``block``'s predecessors directly to ``target``?

    φ-nodes in ``target`` must gain one entry per new predecessor; that is
    ambiguous if a predecessor already reaches ``target`` directly (it
    would need two entries with possibly different values), so we bail.
    """
    if target is block:
        return False  # self-loop
    preds = block.predecessors
    if not preds:
        return False
    target_preds = set(map(id, target.predecessors))
    for pred in preds:
        if id(pred) in target_preds:
            return False
        # A pred branching to `block` twice is fine (same value flows).
    return True


def _bypass_forwarding_block(func: Function, block: BasicBlock, target: BasicBlock) -> None:
    preds = block.predecessors
    for phi in target.phis():
        value = phi.incoming_for(block)
        phi.remove_incoming(block)
        for pred in preds:
            phi.add_incoming(value, pred)
    for pred in preds:
        pred.replace_successor(block, target)
    # ``block`` is now unreachable; drop it.
    block.instructions[0].drop_operands()
    func.remove_block(block)


def _merge_into_predecessor(func: Function, block: BasicBlock, pred: BasicBlock) -> None:
    """Fold ``block`` into its unique jump-predecessor ``pred``."""
    jump = pred.terminator
    pred.instructions.remove(jump)
    jump.drop_operands()
    # Single predecessor: φs are degenerate — replace with their value.
    for phi in list(block.phis()):
        phi.replace_all_uses_with(phi.incoming_for(pred))
        phi.remove_from_parent()
    for inst in list(block.instructions):
        inst.parent = pred
        pred.instructions.append(inst)
    block.instructions = []
    for succ in pred.successors:
        for phi in succ.phis():
            phi.replace_incoming_block(block, pred)
    func.remove_block(block)


def simplify_cfg(func: Function) -> int:
    """Apply both cleanups to fixpoint; returns blocks eliminated."""
    if func.is_declaration:
        return 0
    removed = remove_unreachable_blocks(func)
    changed = True
    while changed:
        changed = False
        for block in list(func.blocks):
            if block is func.entry:
                continue
            target = _is_forwarding(block)
            if target is not None and _can_bypass(block, target):
                _bypass_forwarding_block(func, block, target)
                removed += 1
                changed = True
                break
        for block in list(func.blocks):
            if block is func.entry:
                continue
            preds = block.predecessors
            if len(preds) != 1:
                continue
            pred = preds[0]
            if pred is block:
                continue
            term = pred.terminator
            if isinstance(term, Jump) and term.target is block:
                _merge_into_predecessor(func, block, pred)
                removed += 1
                changed = True
                break
    return removed
