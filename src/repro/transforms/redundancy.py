"""Store-to-load forwarding (redundancy elimination, paper §4.1, Fig. 5).

After SSA conversion, memory antidependences that are *not* clobber
antidependences are always of the form ``store x; ... load x; ... store x``
— the load is made redundant by the flow dependence that precedes the
antidependence. Eliminating the redundant load (replacing its uses with the
stored pseudoregister) makes every *remaining* memory antidependence a
potential clobber antidependence, which breaks the circular dependence
between region identification and live-in identification (§2.2).

Implementation: a forward "available memory values" dataflow. Locations are
``(abstract object, constant word offset)`` pairs from the alias analysis;
the meet is intersection with value agreement. Stores and loads generate
availability; potentially-aliasing stores and opaque calls kill it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.alias import AliasAnalysis, MemoryObject
from repro.analysis.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Load, Store
from repro.ir.values import Value

#: A concrete memory location: (abstract object, known word offset).
Location = Tuple[MemoryObject, int]

#: Calls that never overwrite program-visible memory.
_NON_CLOBBERING_CALLS = {
    "malloc",  # returns fresh memory
    "print_int",
    "print_float",
    "abs",
    "fabs",
    "sqrt",
    "exp",
    "log",
    "min",
    "max",
    "fmin",
    "fmax",
}


class _AvailableValues:
    """Map from location to the SSA value memory is known to hold there."""

    def __init__(self, entries: Optional[Dict[Location, Value]] = None) -> None:
        self.entries: Dict[Location, Value] = dict(entries or {})

    def copy(self) -> "_AvailableValues":
        return _AvailableValues(self.entries)

    def meet(self, other: "_AvailableValues") -> "_AvailableValues":
        merged = {
            loc: value
            for loc, value in self.entries.items()
            if other.entries.get(loc) is value
        }
        return _AvailableValues(merged)

    def __eq__(self, other) -> bool:
        if not isinstance(other, _AvailableValues):
            return NotImplemented
        if self.entries.keys() != other.entries.keys():
            return False
        return all(other.entries[k] is v for k, v in self.entries.items())

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result


def _kill_for_store(avail: _AvailableValues, aa: AliasAnalysis, obj: MemoryObject, off: Optional[int]) -> None:
    """Remove entries a store to (obj, off) may overwrite."""
    concrete = (MemoryObject.KIND_STACK, MemoryObject.KIND_GLOBAL, MemoryObject.KIND_HEAP)
    for loc in list(avail.entries):
        loc_obj, loc_off = loc
        if loc_obj is obj:
            if off is None or loc_off == off:
                del avail.entries[loc]
            continue
        if loc_obj.kind in concrete and obj.kind in concrete:
            continue  # distinct named objects never overlap
        # One side is unknown: it may alias anything except a non-escaping
        # stack object.
        safe = False
        for side in (loc_obj, obj):
            if side.kind == MemoryObject.KIND_STACK and not aa.alloca_escapes(side.origin):
                other = obj if side is loc_obj else loc_obj
                if other.kind == MemoryObject.KIND_UNKNOWN:
                    safe = True
        if not safe:
            del avail.entries[loc]


def _kill_for_call(avail: _AvailableValues, aa: AliasAnalysis, call: Call) -> None:
    if call.callee in _NON_CLOBBERING_CALLS:
        return
    for loc in list(avail.entries):
        obj, _ = loc
        if obj.kind == MemoryObject.KIND_STACK and not aa.alloca_escapes(obj.origin):
            continue  # callee cannot address a non-escaping local
        del avail.entries[loc]


# Memory-event kinds: the pre-resolved per-block instruction summaries
# the dataflow sweeps instead of the raw instruction stream.
_EV_STORE, _EV_LOAD, _EV_CALL = 0, 1, 2


def _apply_event(
    avail: _AvailableValues,
    aa: AliasAnalysis,
    kind: int,
    inst: Instruction,
    obj: Optional[MemoryObject],
    off: Optional[int],
    forward: Optional[Dict[Load, Value]] = None,
) -> None:
    """Apply one memory event; optionally record forwardable loads."""
    if kind == _EV_STORE:
        _kill_for_store(avail, aa, obj, off)
        if off is not None:
            avail.entries[(obj, off)] = inst.value
    elif kind == _EV_LOAD:
        if off is not None:
            known = avail.entries.get((obj, off))
            if known is not None and type(known.type) is type(inst.type):
                if forward is not None:
                    forward[inst] = known
            else:
                avail.entries[(obj, off)] = inst
    else:  # _EV_CALL
        _kill_for_call(avail, aa, inst)


def forward_stores_to_loads(func: Function, am=None) -> int:
    """Eliminate loads whose value is available; returns loads removed.

    ``am`` (an :class:`repro.analysis.manager.AnalysisManager`) supplies a
    cached CFG snapshot when available.  The pass rewrites loads only —
    it always preserves the CFG tier; the caller owns the invalidation.

    Each block's memory events (stores, loads, clobbering calls) are
    resolved through the alias analysis once, up front; the fixpoint then
    sweeps only those events, never the full instruction stream.
    """
    if func.is_declaration:
        return 0
    aa = AliasAnalysis(func)
    cfg = am.cfg(func) if am is not None else CFG(func)
    blocks = cfg.reverse_post_order

    events: Dict[object, list] = {}
    n_loads = 0
    for block in blocks:
        block_events = []
        for inst in block.instructions:
            cls = inst.__class__  # exact: the IR has no inst subclasses
            if cls is Store:
                obj, off = aa.resolve(inst.ptr)
                block_events.append((_EV_STORE, inst, obj, off))
            elif cls is Load:
                obj, off = aa.resolve(inst.ptr)
                block_events.append((_EV_LOAD, inst, obj, off))
                n_loads += 1
            elif cls is Call and inst.callee not in _NON_CLOBBERING_CALLS:
                block_events.append((_EV_CALL, inst, None, None))
        events[block] = block_events
    if n_loads == 0:
        return 0  # nothing to forward; skip the fixpoint entirely

    block_out: Dict[object, Optional[_AvailableValues]] = {b: None for b in blocks}

    def block_in_state(block) -> _AvailableValues:
        state: Optional[_AvailableValues] = None
        for pred in cfg.predecessors[block]:
            if pred not in block_out:
                continue
            pred_out = block_out[pred]
            if pred_out is None:
                continue  # optimistic: unprocessed predecessor
            state = pred_out.copy() if state is None else state.meet(pred_out)
        return state if state is not None else _AvailableValues()

    changed = True
    while changed:
        changed = False
        for block in blocks:
            state = block_in_state(block)
            for kind, inst, obj, off in events[block]:
                _apply_event(state, aa, kind, inst, obj, off)
            if block_out[block] is None or block_out[block] != state:
                block_out[block] = state
                changed = True

    # Final pass: compute block-in states and rewrite forwardable loads.
    removed = 0
    for block in blocks:
        state = block_in_state(block)
        forward: Dict[Load, Value] = {}
        for kind, inst, obj, off in events[block]:
            _apply_event(state, aa, kind, inst, obj, off, forward)
            replacement = forward.get(inst)
            if replacement is not None:
                inst.replace_all_uses_with(replacement)
                inst.remove_from_parent()
                removed += 1
    return removed
