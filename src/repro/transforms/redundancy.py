"""Store-to-load forwarding (redundancy elimination, paper §4.1, Fig. 5).

After SSA conversion, memory antidependences that are *not* clobber
antidependences are always of the form ``store x; ... load x; ... store x``
— the load is made redundant by the flow dependence that precedes the
antidependence. Eliminating the redundant load (replacing its uses with the
stored pseudoregister) makes every *remaining* memory antidependence a
potential clobber antidependence, which breaks the circular dependence
between region identification and live-in identification (§2.2).

Implementation: a forward "available memory values" dataflow. Locations are
``(abstract object, constant word offset)`` pairs from the alias analysis;
the meet is intersection with value agreement. Stores and loads generate
availability; potentially-aliasing stores and opaque calls kill it.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.alias import AliasAnalysis, MemoryObject
from repro.analysis.cfg import CFG
from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Load, Store
from repro.ir.values import Value

#: A concrete memory location: (abstract object, known word offset).
Location = Tuple[MemoryObject, int]

#: Calls that never overwrite program-visible memory.
_NON_CLOBBERING_CALLS = {
    "malloc",  # returns fresh memory
    "print_int",
    "print_float",
    "abs",
    "fabs",
    "sqrt",
    "exp",
    "log",
    "min",
    "max",
    "fmin",
    "fmax",
}


class _AvailableValues:
    """Map from location to the SSA value memory is known to hold there."""

    def __init__(self, entries: Optional[Dict[Location, Value]] = None) -> None:
        self.entries: Dict[Location, Value] = dict(entries or {})

    def copy(self) -> "_AvailableValues":
        return _AvailableValues(self.entries)

    def meet(self, other: "_AvailableValues") -> "_AvailableValues":
        merged = {
            loc: value
            for loc, value in self.entries.items()
            if other.entries.get(loc) is value
        }
        return _AvailableValues(merged)

    def __eq__(self, other) -> bool:
        if not isinstance(other, _AvailableValues):
            return NotImplemented
        if self.entries.keys() != other.entries.keys():
            return False
        return all(other.entries[k] is v for k, v in self.entries.items())

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result


def _kill_for_store(avail: _AvailableValues, aa: AliasAnalysis, obj: MemoryObject, off: Optional[int]) -> None:
    """Remove entries a store to (obj, off) may overwrite."""
    concrete = (MemoryObject.KIND_STACK, MemoryObject.KIND_GLOBAL, MemoryObject.KIND_HEAP)
    for loc in list(avail.entries):
        loc_obj, loc_off = loc
        if loc_obj is obj:
            if off is None or loc_off == off:
                del avail.entries[loc]
            continue
        if loc_obj.kind in concrete and obj.kind in concrete:
            continue  # distinct named objects never overlap
        # One side is unknown: it may alias anything except a non-escaping
        # stack object.
        safe = False
        for side in (loc_obj, obj):
            if side.kind == MemoryObject.KIND_STACK and not aa.alloca_escapes(side.origin):
                other = obj if side is loc_obj else loc_obj
                if other.kind == MemoryObject.KIND_UNKNOWN:
                    safe = True
        if not safe:
            del avail.entries[loc]


def _kill_for_call(avail: _AvailableValues, aa: AliasAnalysis, call: Call) -> None:
    if call.callee in _NON_CLOBBERING_CALLS:
        return
    for loc in list(avail.entries):
        obj, _ = loc
        if obj.kind == MemoryObject.KIND_STACK and not aa.alloca_escapes(obj.origin):
            continue  # callee cannot address a non-escaping local
        del avail.entries[loc]


def _transfer(
    avail: _AvailableValues,
    aa: AliasAnalysis,
    inst: Instruction,
    forward: Optional[Dict[Load, Value]] = None,
) -> None:
    """Apply one instruction's effect; optionally record forwardable loads."""
    if isinstance(inst, Store):
        obj, off = aa.resolve(inst.ptr)
        _kill_for_store(avail, aa, obj, off)
        if off is not None:
            avail.entries[(obj, off)] = inst.value
    elif isinstance(inst, Load):
        obj, off = aa.resolve(inst.ptr)
        if off is not None:
            known = avail.entries.get((obj, off))
            if known is not None and type(known.type) is type(inst.type):
                if forward is not None:
                    forward[inst] = known
            else:
                avail.entries[(obj, off)] = inst
    elif isinstance(inst, Call):
        _kill_for_call(avail, aa, inst)


def forward_stores_to_loads(func: Function, am=None) -> int:
    """Eliminate loads whose value is available; returns loads removed.

    ``am`` (an :class:`repro.analysis.manager.AnalysisManager`) supplies a
    cached CFG snapshot when available.  The pass rewrites loads only —
    it always preserves the CFG tier; the caller owns the invalidation.
    """
    if func.is_declaration:
        return 0
    aa = AliasAnalysis(func)
    cfg = am.cfg(func) if am is not None else CFG(func)
    blocks = cfg.reverse_post_order

    block_out: Dict[object, Optional[_AvailableValues]] = {b: None for b in blocks}

    changed = True
    while changed:
        changed = False
        for block in blocks:
            preds = [p for p in cfg.preds(block) if p in block_out]
            state: Optional[_AvailableValues] = None
            for pred in preds:
                pred_out = block_out[pred]
                if pred_out is None:
                    continue  # optimistic: unprocessed predecessor
                state = pred_out.copy() if state is None else state.meet(pred_out)
            if state is None:
                state = _AvailableValues()
            for inst in block.instructions:
                _transfer(state, aa, inst)
            if block_out[block] is None or block_out[block] != state:
                block_out[block] = state
                changed = True

    # Final pass: compute block-in states and rewrite forwardable loads.
    removed = 0
    for block in blocks:
        preds = [p for p in cfg.preds(block) if p in block_out]
        state = None
        for pred in preds:
            pred_out = block_out[pred]
            if pred_out is None:
                continue
            state = pred_out.copy() if state is None else state.meet(pred_out)
        if state is None:
            state = _AvailableValues()
        forward: Dict[Load, Value] = {}
        for inst in list(block.instructions):
            _transfer(state, aa, inst, forward)
            replacement = forward.get(inst)
            if replacement is not None:
                inst.replace_all_uses_with(replacement)
                inst.remove_from_parent()
                removed += 1
    return removed
