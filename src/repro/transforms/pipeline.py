"""Standard optimization pipeline driven before region construction.

Order follows paper §4.1: SSA conversion first (mem2reg), then elimination
of non-clobber memory antidependences (store-to-load forwarding), plus
routine cleanups (unreachable code removal, DCE).

Each pass runs under a ``transforms.<pass>`` span and publishes its
statistic to the :mod:`repro.obs` metrics registry as
``transforms.<stat>{func=...}``, so pass productivity is visible in
``repro stats`` even for the many callers that ignore the returned
dict.  The dict itself is still returned for direct inspection.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import obs
from repro.analysis.cfg import remove_unreachable_blocks
from repro.analysis.manager import AnalysisManager, CFG_ANALYSES
from repro.ir.function import Function
from repro.ir.module import Module
from repro.transforms.constfold import fold_constants
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.mem2reg import promote_to_ssa
from repro.transforms.redundancy import forward_stores_to_loads
from repro.transforms.simplifycfg import simplify_cfg

#: What a pass declares about the CFG tier (cfg/domtree/frontiers/loops/
#: reachability — see :data:`repro.analysis.manager.CFG_ANALYSES`):
#: ``"always"`` — the pass edits instructions only, never blocks or
#: terminators; ``"if_zero"`` — it preserves the tier only when it
#: reports zero changes (e.g. unreachable-block removal, CFG
#: simplification, constant folding of conditional branches).  Liveness
#: depends on instructions too, so it never survives a productive pass.
_PRESERVES_CFG = "always"
_PRESERVES_CFG_IF_ZERO = "if_zero"

#: Pipeline tables: (stat name, pass callable, CFG declaration,
#: accepts the analysis manager), in execution order.
_LEVEL1_PASSES = (
    ("unreachable_blocks", remove_unreachable_blocks, _PRESERVES_CFG_IF_ZERO, True),
    ("promoted_allocas", promote_to_ssa, _PRESERVES_CFG, True),
    ("forwarded_loads", forward_stores_to_loads, _PRESERVES_CFG, True),
    ("dead_instructions", eliminate_dead_code, _PRESERVES_CFG, False),
)
_LEVEL2_PASSES = (
    ("folded_constants", fold_constants, _PRESERVES_CFG_IF_ZERO, False),
    ("simplified_blocks", simplify_cfg, _PRESERVES_CFG_IF_ZERO, False),
    ("dead_instructions", eliminate_dead_code, _PRESERVES_CFG, False),
)


def publish_pass_stats(func_name: str, stats: Dict[str, int]) -> None:
    """Feed one function's pass-stat dict into the metrics registry."""
    for stat, value in stats.items():
        if value:
            obs.counter(f"transforms.{stat}").inc(value, func=func_name)


def optimize_function(
    func: Function, level: int = 1, am: Optional[AnalysisManager] = None
) -> Dict[str, int]:
    """Run the standard pipeline on one function; returns pass statistics.

    Level 1 is the paper-aligned default (SSA + redundancy elimination +
    cleanups); level 2 additionally folds constants and simplifies the
    CFG — a stronger conventional baseline, available for experiments but
    not used by the recorded results.

    With ``am``, passes share the manager's cached CFG/dominator/frontier
    snapshots and each pass's declared preservation (see the pipeline
    tables above) drives :meth:`AnalysisManager.invalidate` after it
    runs; a pass reporting zero changes left the function untouched and
    invalidates nothing.
    """
    if func.is_declaration:
        return {}
    stats: Dict[str, int] = {}
    passes = _LEVEL1_PASSES + (_LEVEL2_PASSES if level >= 2 else ())
    for stat, run_pass, cfg_decl, takes_am in passes:
        with obs.span(f"transforms.{stat}", func=func.name):
            if takes_am and am is not None:
                changed = run_pass(func, am=am)
            else:
                changed = run_pass(func)
        stats[stat] = stats.get(stat, 0) + changed
        if am is not None and changed:
            preserved = cfg_decl == _PRESERVES_CFG
            am.invalidate(func, preserve=CFG_ANALYSES if preserved else ())
    publish_pass_stats(func.name, stats)
    return stats


def optimize_module(
    module: Module, level: int = 1, am: Optional[AnalysisManager] = None
) -> Dict[str, Dict[str, int]]:
    """Run the standard pipeline on every defined function."""
    return {
        func.name: optimize_function(func, level, am=am)
        for func in module.defined_functions
    }
