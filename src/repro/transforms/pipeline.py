"""Standard optimization pipeline driven before region construction.

Order follows paper §4.1: SSA conversion first (mem2reg), then elimination
of non-clobber memory antidependences (store-to-load forwarding), plus
routine cleanups (unreachable code removal, DCE).

Each pass runs under a ``transforms.<pass>`` span and publishes its
statistic to the :mod:`repro.obs` metrics registry as
``transforms.<stat>{func=...}``, so pass productivity is visible in
``repro stats`` even for the many callers that ignore the returned
dict.  The dict itself is still returned for direct inspection.
"""

from __future__ import annotations

from typing import Dict

from repro import obs
from repro.analysis.cfg import remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.module import Module
from repro.transforms.constfold import fold_constants
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.mem2reg import promote_to_ssa
from repro.transforms.redundancy import forward_stores_to_loads
from repro.transforms.simplifycfg import simplify_cfg

#: Level-1 pipeline: (stat name, pass callable), in execution order.
_LEVEL1_PASSES = (
    ("unreachable_blocks", remove_unreachable_blocks),
    ("promoted_allocas", promote_to_ssa),
    ("forwarded_loads", forward_stores_to_loads),
    ("dead_instructions", eliminate_dead_code),
)


def publish_pass_stats(func_name: str, stats: Dict[str, int]) -> None:
    """Feed one function's pass-stat dict into the metrics registry."""
    for stat, value in stats.items():
        if value:
            obs.counter(f"transforms.{stat}").inc(value, func=func_name)


def optimize_function(func: Function, level: int = 1) -> Dict[str, int]:
    """Run the standard pipeline on one function; returns pass statistics.

    Level 1 is the paper-aligned default (SSA + redundancy elimination +
    cleanups); level 2 additionally folds constants and simplifies the
    CFG — a stronger conventional baseline, available for experiments but
    not used by the recorded results.
    """
    if func.is_declaration:
        return {}
    stats: Dict[str, int] = {}
    for stat, run_pass in _LEVEL1_PASSES:
        with obs.span(f"transforms.{stat}", func=func.name):
            stats[stat] = run_pass(func)
    if level >= 2:
        with obs.span("transforms.folded_constants", func=func.name):
            stats["folded_constants"] = fold_constants(func)
        with obs.span("transforms.simplified_blocks", func=func.name):
            stats["simplified_blocks"] = simplify_cfg(func)
        with obs.span("transforms.dead_instructions", func=func.name):
            stats["dead_instructions"] += eliminate_dead_code(func)
    publish_pass_stats(func.name, stats)
    return stats


def optimize_module(module: Module, level: int = 1) -> Dict[str, Dict[str, int]]:
    """Run the standard pipeline on every defined function."""
    return {
        func.name: optimize_function(func, level)
        for func in module.defined_functions
    }
