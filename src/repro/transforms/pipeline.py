"""Standard optimization pipeline driven before region construction.

Order follows paper §4.1: SSA conversion first (mem2reg), then elimination
of non-clobber memory antidependences (store-to-load forwarding), plus
routine cleanups (unreachable code removal, DCE).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cfg import remove_unreachable_blocks
from repro.ir.function import Function
from repro.ir.module import Module
from repro.transforms.constfold import fold_constants
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.mem2reg import promote_to_ssa
from repro.transforms.redundancy import forward_stores_to_loads
from repro.transforms.simplifycfg import simplify_cfg


def optimize_function(func: Function, level: int = 1) -> Dict[str, int]:
    """Run the standard pipeline on one function; returns pass statistics.

    Level 1 is the paper-aligned default (SSA + redundancy elimination +
    cleanups); level 2 additionally folds constants and simplifies the
    CFG — a stronger conventional baseline, available for experiments but
    not used by the recorded results.
    """
    if func.is_declaration:
        return {}
    stats = {
        "unreachable_blocks": remove_unreachable_blocks(func),
        "promoted_allocas": promote_to_ssa(func),
        "forwarded_loads": forward_stores_to_loads(func),
        "dead_instructions": eliminate_dead_code(func),
    }
    if level >= 2:
        stats["folded_constants"] = fold_constants(func)
        stats["simplified_blocks"] = simplify_cfg(func)
        stats["dead_instructions"] += eliminate_dead_code(func)
    return stats


def optimize_module(module: Module, level: int = 1) -> Dict[str, Dict[str, int]]:
    """Run the standard pipeline on every defined function."""
    return {
        func.name: optimize_function(func, level)
        for func in module.defined_functions
    }
