"""Cloning and CFG-surgery utilities shared by loop transforms."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Boundary,
    Br,
    Call,
    Fcmp,
    Ftoi,
    Gep,
    Icmp,
    Instruction,
    Itof,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.values import Value


def clone_instruction(
    inst: Instruction,
    vmap: Dict[Value, Value],
    bmap: Dict[BasicBlock, BasicBlock],
    name_hint: str = "",
) -> Instruction:
    """Create a copy of ``inst`` with operands and block targets remapped.

    Operands not present in ``vmap`` are shared with the original (values
    defined outside the cloned region). φ incoming values are copied as-is
    and must be patched by the caller once the whole region is cloned.
    """
    m = vmap.get
    mb = bmap.get

    # Exact-type dispatch (the IR has no instruction subclasses; the
    # parser/builder only ever construct these leaf classes).
    cls = inst.__class__
    if cls is BinaryOp:
        lhs, rhs = inst.lhs, inst.rhs
        copy: Instruction = BinaryOp(inst.opcode, m(lhs, lhs), m(rhs, rhs), name_hint)
    elif cls is Icmp:
        lhs, rhs = inst.lhs, inst.rhs
        copy = Icmp(inst.pred, m(lhs, lhs), m(rhs, rhs), name_hint)
    elif cls is Fcmp:
        lhs, rhs = inst.lhs, inst.rhs
        copy = Fcmp(inst.pred, m(lhs, lhs), m(rhs, rhs), name_hint)
    elif cls is Select:
        c, t, f = inst.cond, inst.true_value, inst.false_value
        copy = Select(m(c, c), m(t, t), m(f, f), name_hint)
    elif cls is Itof:
        v = inst.operand(0)
        copy = Itof(m(v, v), name_hint)
    elif cls is Ftoi:
        v = inst.operand(0)
        copy = Ftoi(m(v, v), name_hint)
    elif cls is Alloca:
        copy = Alloca(inst.size, name_hint)
    elif cls is Load:
        p = inst.ptr
        copy = Load(inst.type, m(p, p), name_hint)
    elif cls is Store:
        v, p = inst.value, inst.ptr
        copy = Store(m(v, v), m(p, p))
    elif cls is Gep:
        b, i = inst.base, inst.index
        copy = Gep(m(b, b), m(i, i), name_hint)
    elif cls is Br:
        c, t, e = inst.cond, inst.then_block, inst.else_block
        copy = Br(m(c, c), mb(t, t), mb(e, e))
    elif cls is Jump:
        t = inst.target
        copy = Jump(mb(t, t))
    elif cls is Ret:
        v = inst.value
        copy = Ret(m(v, v) if v is not None else None)
    elif cls is Phi:
        copy = Phi(
            inst.type, [(m(v, v), mb(b, b)) for v, b in inst.incoming], name_hint
        )
    elif cls is Call:
        copy = Call(inst.type, inst.callee, [m(a, a) for a in inst.args], name_hint)
    elif cls is Boundary:
        copy = Boundary()
    else:
        raise TypeError(f"cannot clone instruction {inst!r}")
    return copy


def clone_blocks(
    func: Function,
    blocks: Iterable[BasicBlock],
    suffix: str,
) -> Tuple[Dict[BasicBlock, BasicBlock], Dict[Value, Value]]:
    """Clone ``blocks`` into ``func``; returns (block map, value map).

    Branch targets and φ incoming blocks *within* the cloned set are
    remapped to the clones; edges leaving the set keep their original
    targets. φ operands referring to cloned values are patched after all
    instructions exist (two-pass), so forward references work.
    """
    blocks = list(blocks)
    block_set = set(blocks)
    bmap: Dict[BasicBlock, BasicBlock] = {}
    vmap: Dict[Value, Value] = {}
    for block in blocks:
        bmap[block] = func.add_block(f"{block.name}.{suffix}")

    cloned_phis: List[Tuple[Phi, Phi]] = []
    # Forward references: operands defined later in the region (always
    # possible for φs, possible for others across blocks when the region
    # has internal cycles) are not in ``vmap`` yet at clone time; record
    # them and patch once every clone exists.
    deferred: List[Tuple[Instruction, int, Value]] = []
    for block in blocks:
        new_block = bmap[block]
        for inst in block.instructions:
            hint = f"{inst.name}.{suffix}" if inst.name else ""
            copy = clone_instruction(inst, vmap, bmap, hint)
            if copy.type.is_value_type:
                copy.name = func.unique_value_name(hint or copy.opcode)
            new_block.append(copy)
            if inst.type.is_value_type:
                vmap[inst] = copy
            if inst.__class__ is Phi:
                cloned_phis.append((inst, copy))
            else:
                for i, use in enumerate(inst._operands):
                    value = use.value
                    if (
                        isinstance(value, Instruction)
                        and value not in vmap
                        and value.parent in block_set
                    ):
                        deferred.append((copy, i, value))

    # Second pass: resolve the recorded forward references.
    for original, copy in cloned_phis:
        for i, value in enumerate(original.operands):
            mapped = vmap.get(value, value)
            if copy.operand(i) is not mapped:
                copy.set_operand(i, mapped)
    for copy, i, value in deferred:
        mapped = vmap.get(value, value)
        if copy.operand(i) is not mapped:
            copy.set_operand(i, mapped)
    return bmap, vmap


def split_edge(func: Function, pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the edge ``pred → succ`` and return it.

    φ-nodes in ``succ`` are retargeted to the new block. Used to give loops
    dedicated exit blocks before unrolling.
    """
    middle = func.add_block(f"{pred.name}.{succ.name}.edge", after=pred)
    middle.append(Jump(succ))
    pred.replace_successor(succ, middle)
    for phi in succ.phis():
        phi.replace_incoming_block(pred, middle)
    return middle
