"""Cloning and CFG-surgery utilities shared by loop transforms."""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Boundary,
    Br,
    Call,
    Fcmp,
    Ftoi,
    Gep,
    Icmp,
    Instruction,
    Itof,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.values import Value


def clone_instruction(
    inst: Instruction,
    vmap: Dict[Value, Value],
    bmap: Dict[BasicBlock, BasicBlock],
    name_hint: str = "",
) -> Instruction:
    """Create a copy of ``inst`` with operands and block targets remapped.

    Operands not present in ``vmap`` are shared with the original (values
    defined outside the cloned region). φ incoming values are copied as-is
    and must be patched by the caller once the whole region is cloned.
    """

    def m(value: Value) -> Value:
        return vmap.get(value, value)

    def mb(block: BasicBlock) -> BasicBlock:
        return bmap.get(block, block)

    if isinstance(inst, BinaryOp):
        copy: Instruction = BinaryOp(inst.opcode, m(inst.lhs), m(inst.rhs), name_hint)
    elif isinstance(inst, Icmp):
        copy = Icmp(inst.pred, m(inst.lhs), m(inst.rhs), name_hint)
    elif isinstance(inst, Fcmp):
        copy = Fcmp(inst.pred, m(inst.lhs), m(inst.rhs), name_hint)
    elif isinstance(inst, Select):
        copy = Select(m(inst.cond), m(inst.true_value), m(inst.false_value), name_hint)
    elif isinstance(inst, Itof):
        copy = Itof(m(inst.operand(0)), name_hint)
    elif isinstance(inst, Ftoi):
        copy = Ftoi(m(inst.operand(0)), name_hint)
    elif isinstance(inst, Alloca):
        copy = Alloca(inst.size, name_hint)
    elif isinstance(inst, Load):
        copy = Load(inst.type, m(inst.ptr), name_hint)
    elif isinstance(inst, Store):
        copy = Store(m(inst.value), m(inst.ptr))
    elif isinstance(inst, Gep):
        copy = Gep(m(inst.base), m(inst.index), name_hint)
    elif isinstance(inst, Br):
        copy = Br(m(inst.cond), mb(inst.then_block), mb(inst.else_block))
    elif isinstance(inst, Jump):
        copy = Jump(mb(inst.target))
    elif isinstance(inst, Ret):
        copy = Ret(m(inst.value) if inst.value is not None else None)
    elif isinstance(inst, Phi):
        copy = Phi(inst.type, [(m(v), mb(b)) for v, b in inst.incoming], name_hint)
    elif isinstance(inst, Call):
        copy = Call(inst.type, inst.callee, [m(a) for a in inst.args], name_hint)
    elif isinstance(inst, Boundary):
        copy = Boundary()
    else:
        raise TypeError(f"cannot clone instruction {inst!r}")
    return copy


def clone_blocks(
    func: Function,
    blocks: Iterable[BasicBlock],
    suffix: str,
) -> Tuple[Dict[BasicBlock, BasicBlock], Dict[Value, Value]]:
    """Clone ``blocks`` into ``func``; returns (block map, value map).

    Branch targets and φ incoming blocks *within* the cloned set are
    remapped to the clones; edges leaving the set keep their original
    targets. φ operands referring to cloned values are patched after all
    instructions exist (two-pass), so forward references work.
    """
    blocks = list(blocks)
    bmap: Dict[BasicBlock, BasicBlock] = {}
    vmap: Dict[Value, Value] = {}
    for block in blocks:
        bmap[block] = func.add_block(f"{block.name}.{suffix}")

    cloned_phis: List[Tuple[Phi, Phi]] = []
    for block in blocks:
        new_block = bmap[block]
        for inst in block.instructions:
            hint = f"{inst.name}.{suffix}" if inst.name else ""
            copy = clone_instruction(inst, vmap, bmap, hint)
            if copy.type.is_value_type:
                copy.name = func.unique_value_name(hint or copy.opcode)
            new_block.append(copy)
            if inst.type.is_value_type:
                vmap[inst] = copy
            if isinstance(inst, Phi):
                cloned_phis.append((inst, copy))

    # Second pass: φ operands may reference values that were cloned after
    # the φ itself; remap them now.
    for original, copy in cloned_phis:
        for i, value in enumerate(original.operands):
            mapped = vmap.get(value, value)
            if copy.operand(i) is not mapped:
                copy.set_operand(i, mapped)
    # Same for non-φ instructions whose operands were defined later in the
    # region (possible across blocks when the region has internal cycles).
    for block in blocks:
        new_block = bmap[block]
        for original, copy in zip(block.instructions, new_block.instructions):
            if isinstance(original, Phi):
                continue
            for i, value in enumerate(original.operands):
                mapped = vmap.get(value, value)
                if copy.operand(i) is not mapped:
                    copy.set_operand(i, mapped)
    return bmap, vmap


def split_edge(func: Function, pred: BasicBlock, succ: BasicBlock) -> BasicBlock:
    """Insert a fresh block on the edge ``pred → succ`` and return it.

    φ-nodes in ``succ`` are retargeted to the new block. Used to give loops
    dedicated exit blocks before unrolling.
    """
    middle = func.add_block(f"{pred.name}.{succ.name}.edge", after=pred)
    middle.append(Jump(succ))
    pred.replace_successor(succ, middle)
    for phi in succ.phis():
        phi.replace_incoming_block(pred, middle)
    return middle
