"""repro.transforms — IR-to-IR transformations.

- :func:`promote_to_ssa` — mem2reg/SSA construction (paper §4.1 transform 1)
- :func:`forward_stores_to_loads` — redundancy elimination of non-clobber
  memory antidependences (paper §4.1 transform 2, Fig. 5)
- :func:`unroll_once` — loop unroll-by-one (paper §5 enhancement)
- :func:`eliminate_dead_code` — cleanup
- :func:`optimize_function` / :func:`optimize_module` — standard pipeline
"""

from repro.transforms.clone import clone_blocks, clone_instruction, split_edge
from repro.transforms.constfold import fold_constants
from repro.transforms.simplifycfg import simplify_cfg
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.inline import can_inline, inline_call, inline_small_functions
from repro.transforms.mem2reg import promotable_allocas, promote_to_ssa
from repro.transforms.pipeline import optimize_function, optimize_module
from repro.transforms.redundancy import forward_stores_to_loads
from repro.transforms.unroll import UnrollNotSupported, can_unroll_once, unroll_once

__all__ = [
    "UnrollNotSupported",
    "can_unroll_once",
    "clone_blocks",
    "clone_instruction",
    "eliminate_dead_code",
    "can_inline",
    "fold_constants",
    "inline_call",
    "inline_small_functions",
    "simplify_cfg",
    "forward_stores_to_loads",
    "optimize_function",
    "optimize_module",
    "promotable_allocas",
    "promote_to_ssa",
    "split_edge",
    "unroll_once",
]
