"""Function inlining.

Motivated by the paper's inter-procedural limit study (§3): region
boundaries at calls cost roughly an order of magnitude of idempotent path
length, and "very aggressive inlining can be performed such that this
obstacle is weakened or removed". Inlining small callees before region
construction removes their call boundaries and lets the intra-procedural
algorithm build regions that span the former call.

Mechanics: the call block is split at the call site; the callee's blocks
are cloned into the caller with arguments substituted; returns become
jumps to the continuation with a φ merging return values. Recursive
(directly or transitively) callees are never inlined.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Alloca, Call, Instruction, Jump, Phi, Ret
from repro.ir.module import Module
from repro.ir.values import Undef, Value
from repro.transforms.clone import clone_blocks


class InlineError(RuntimeError):
    pass


def _call_targets(func: Function, module: Module) -> Set[str]:
    targets = set()
    for inst in func.instructions():
        if isinstance(inst, Call) and inst.callee in module.functions:
            targets.add(inst.callee)
    return targets


def _reaches_recursively(module: Module, start: str) -> Set[str]:
    """Function names reachable from ``start`` through direct calls."""
    seen: Set[str] = set()
    stack = [start]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        func = module.functions.get(name)
        if func is not None and not func.is_declaration:
            stack.extend(_call_targets(func, module))
    return seen


def can_inline(module: Module, caller: Function, callee_name: str) -> bool:
    """Inlinable: defined, non-recursive, does not (transitively) call caller."""
    callee = module.functions.get(callee_name)
    if callee is None or callee.is_declaration:
        return False
    # Recursion check: does the callee reach itself through its callees?
    reachable_from_body: Set[str] = set()
    for target in _call_targets(callee, module):
        reachable_from_body |= _reaches_recursively(module, target)
    if callee_name in reachable_from_body:
        return False  # recursive (directly or through a cycle)
    if caller.name in reachable_from_body or caller.name == callee_name:
        return False  # would re-introduce the caller inside itself
    return True


def inline_call(module: Module, caller: Function, call: Call) -> None:
    """Inline one call site in place. The call must target a module function."""
    callee = module.functions.get(call.callee)
    if callee is None or callee.is_declaration:
        raise InlineError(f"cannot inline call to @{call.callee}")

    call_block = call.parent
    call_index = call_block.index_of(call)

    # 1. Split the call block: everything after the call moves to a
    #    continuation block.
    continuation = caller.add_block(f"{call_block.name}.ret", after=call_block)
    moved = call_block.instructions[call_index + 1:]
    call_block.instructions = call_block.instructions[: call_index + 1]
    for inst in moved:
        inst.parent = continuation
        continuation.instructions.append(inst)
    for succ in continuation.successors:
        for phi in succ.phis():
            phi.replace_incoming_block(call_block, continuation)

    # 2. Clone the callee body into the caller.
    bmap, vmap = clone_blocks(caller, callee.blocks, suffix=f"inl.{callee.name}")
    entry_clone = bmap[callee.entry]

    # 3. Substitute arguments: cloned instructions still reference the
    #    callee's Argument objects; rewrite them to the actual operands.
    for formal, actual in zip(callee.args, call.args):
        for block in bmap.values():
            for inst in block.instructions:
                for i, op in enumerate(inst.operands):
                    if op is formal:
                        inst.set_operand(i, actual)

    # 4. Rewrite cloned returns into jumps to the continuation, collecting
    #    return values for the result φ.
    returning: List[Tuple[Value, BasicBlock]] = []
    for block in bmap.values():
        term = block.terminator
        if isinstance(term, Ret):
            value = term.value
            term.remove_from_parent()
            block.append(Jump(continuation))
            if not call.type.is_void:
                returning.append((value if value is not None else Undef(call.type), block))

    # 5. Replace the call's result with a φ (or the single return value).
    if not call.type.is_void:
        if not returning:
            call.replace_all_uses_with(Undef(call.type))
        elif len(returning) == 1:
            call.replace_all_uses_with(returning[0][0])
        else:
            phi = Phi(call.type, returning, name=caller.unique_value_name(f"{call.callee}.ret"))
            continuation.insert(0, phi)
            call.replace_all_uses_with(phi)

    # 6. The call itself becomes a jump into the cloned entry.
    call.remove_from_parent()
    call_block.append(Jump(entry_clone))

    # 7. Callee allocas must live in the caller's entry block.
    entry = caller.entry
    for block in bmap.values():
        for inst in list(block.instructions):
            if isinstance(inst, Alloca) and block is not entry:
                block.instructions.remove(inst)
                index = 0
                while index < len(entry.instructions) and isinstance(
                    entry.instructions[index], Alloca
                ):
                    index += 1
                inst.parent = entry
                entry.instructions.insert(index, inst)


def inline_small_functions(
    module: Module,
    max_instructions: int = 40,
    max_growth: int = 8,
) -> int:
    """Inline every call to a small, non-recursive callee; returns count.

    ``max_instructions`` bounds the callee size; ``max_growth`` bounds how
    many times a single caller may inline (protecting against blowup in
    call-dense code).
    """
    inlined = 0
    for caller in list(module.defined_functions):
        budget = max_growth
        changed = True
        while changed and budget > 0:
            changed = False
            for inst in list(caller.instructions()):
                if not isinstance(inst, Call):
                    continue
                callee = module.functions.get(inst.callee)
                if callee is None or callee.is_declaration:
                    continue
                if callee.instruction_count() > max_instructions:
                    continue
                if not can_inline(module, caller, inst.callee):
                    continue
                inline_call(module, caller, inst)
                inlined += 1
                budget -= 1
                changed = True
                break
    return inlined
