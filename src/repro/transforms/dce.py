"""Dead code elimination: drop unused side-effect-free instructions."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Alloca, Instruction, Load, Phi
from repro.ir.values import Undef


def _is_removable(inst: Instruction) -> bool:
    if inst.is_used:
        return False
    if inst.is_terminator or inst.has_side_effects:
        return False
    if isinstance(inst, Alloca):
        # Dead only if no loads/stores reference it — is_used covers that.
        return True
    if isinstance(inst, Load):
        return True  # loads are pure in our memory model
    return not inst.type.is_void


def eliminate_dead_code(func: Function) -> int:
    """Iteratively remove dead instructions; returns how many were removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in reversed(list(block.instructions)):
                if _is_removable(inst):
                    inst.remove_from_parent()
                    removed += 1
                    changed = True
        # φ-webs that only feed each other are dead as a group; handle the
        # common self-cycle case (φ used only by itself).
        for block in func.blocks:
            for phi in list(block.phis()):
                users = phi.users
                if users and all(u is phi for u in users):
                    phi.replace_all_uses_with(Undef(phi.type))
                    phi.remove_from_parent()
                    removed += 1
                    changed = True
    return removed
