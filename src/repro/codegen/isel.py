"""Instruction selection: repro IR → machine IR with virtual registers.

Near 1:1 lowering (no combining), matching the "conventional compiler"
baseline the paper measures against. The two interesting jobs:

- **φ lowering** — after removing degenerate φs and splitting critical
  edges, each φ becomes parallel copies at the end of its predecessors.
  Copies are placed *after* any trailing ``rcb`` (region boundary), which
  is what positions φ-web writes at region starts and makes the loop cut
  invariant of :mod:`repro.core.selfdep` sufficient (see DESIGN.md).
- **calling convention** — up to four int and four float arguments in
  ``r0``–``r3`` / ``f0``–``f3``; results in ``r0``/``f0``. Physical-register
  lifetimes are kept to single copies around calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.codegen.machine import (
    CLASS_FLOAT,
    CLASS_INT,
    FLOAT_ARG_REGS,
    FLOAT_RET_REG,
    INT_ARG_REGS,
    INT_RET_REG,
    MachineBlock,
    MachineFunction,
    MachineInstr,
    MachineProgram,
    Reg,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Alloca,
    BinaryOp,
    Boundary,
    Br,
    Call,
    Fcmp,
    Ftoi,
    Gep,
    Icmp,
    Instruction,
    Itof,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Module
from repro.ir.values import Argument, Constant, GlobalVariable, Undef, Value


class ISelError(RuntimeError):
    """Unsupported construct reached instruction selection."""


# ----------------------------------------------------------------------
# IR preparation
# ----------------------------------------------------------------------
def remove_degenerate_phis(func: Function) -> int:
    """Replace single-incoming φs with their value; returns count removed."""
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for phi in list(block.phis()):
                if phi.num_operands == 1:
                    phi.replace_all_uses_with(phi.operand(0))
                    phi.remove_from_parent()
                    removed += 1
                    changed = True
    return removed


def split_critical_edges(func: Function) -> int:
    """Split edges from multi-successor blocks into φ-bearing blocks."""
    from repro.transforms.clone import split_edge

    split = 0
    for block in list(func.blocks):
        succs = block.successors
        if len(set(map(id, succs))) <= 1:
            continue
        for succ in list(dict.fromkeys(succs)):
            if any(True for _ in succ.phis()):
                split_edge(func, block, succ)
                split += 1
    return split


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
_INT_CMP = {"eq": "cmpeq", "ne": "cmpne", "lt": "cmplt", "le": "cmple", "gt": "cmpgt", "ge": "cmpge"}
_FLOAT_CMP = {"eq": "fcmpeq", "ne": "fcmpne", "lt": "fcmplt", "le": "fcmple", "gt": "fcmpgt", "ge": "fcmpge"}


class FunctionSelector:
    """Lowers one IR function to machine code."""

    def __init__(self, func: Function) -> None:
        self.func = func
        int_args = sum(1 for a in func.args if not a.type.is_float)
        float_args = sum(1 for a in func.args if a.type.is_float)
        if int_args > len(INT_ARG_REGS) or float_args > len(FLOAT_ARG_REGS):
            raise ISelError(
                f"@{func.name}: too many arguments for the calling convention"
            )
        self.mfunc = MachineFunction(
            func.name,
            int_args,
            float_args,
            returns_float=func.return_type.is_float,
            returns_value=not func.return_type.is_void,
        )
        self.vreg_map: Dict[Value, Reg] = {}
        self.block_map: Dict[BasicBlock, MachineBlock] = {}
        self.alloca_slots: Dict[Alloca, int] = {}
        self.current: Optional[MachineBlock] = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def emit(self, opcode: str, dst=None, srcs=(), imm=None, callee=None) -> MachineInstr:
        assert self.current is not None
        return self.current.append(MachineInstr(opcode, dst, srcs, imm, callee))

    @staticmethod
    def class_of(value: Value) -> str:
        return CLASS_FLOAT if value.type.is_float else CLASS_INT

    def value_reg(self, value: Value) -> Reg:
        """Materialize ``value`` into a register at the current point."""
        if isinstance(value, Constant):
            reg = self.mfunc.new_vreg(CLASS_FLOAT if value.type.is_float else CLASS_INT)
            opcode = "fmovi" if value.type.is_float else "movi"
            self.emit(opcode, dst=reg, imm=value.value)
            return reg
        if isinstance(value, GlobalVariable):
            reg = self.mfunc.new_vreg(CLASS_INT)
            self.emit("ga", dst=reg, imm=value.name)
            return reg
        if isinstance(value, Undef):
            reg = self.mfunc.new_vreg(self.class_of(value))
            opcode = "fmovi" if value.type.is_float else "movi"
            self.emit(opcode, dst=reg, imm=0.0 if value.type.is_float else 0)
            return reg
        found = self.vreg_map.get(value)
        if found is None:
            raise ISelError(f"@{self.func.name}: no vreg for {value!r}")
        return found

    def def_reg(self, inst: Instruction) -> Reg:
        reg = self.vreg_map.get(inst)
        if reg is None:
            reg = self.mfunc.new_vreg(self.class_of(inst))
            self.vreg_map[inst] = reg
        return reg

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def select(self) -> MachineFunction:
        remove_degenerate_phis(self.func)
        split_critical_edges(self.func)

        for block in self.func.blocks:
            self.block_map[block] = self.mfunc.add_block(block.name)

        # Pre-create result vregs for every instruction: block layout order
        # need not be dominance order, so a use (φ copy especially) may be
        # emitted before its defining block is visited.
        for block in self.func.blocks:
            for inst in block.instructions:
                if inst.type.is_value_type:
                    self.vreg_map[inst] = self.mfunc.new_vreg(self.class_of(inst))

        # Frame slots for allocas.
        for inst in self.func.entry.instructions:
            if isinstance(inst, Alloca):
                self.alloca_slots[inst] = self.mfunc.frame.add_slot(
                    inst.size, inst.name
                )

        for i, block in enumerate(self.func.blocks):
            self.current = self.block_map[block]
            if i == 0:
                self._emit_arg_copies()
            for inst in block.non_phi_instructions():
                if inst.is_terminator:
                    self._emit_phi_copies(block)
                    self._select_terminator(block, inst)
                else:
                    self._select(inst)
        return self.mfunc

    def _emit_arg_copies(self) -> None:
        int_index = 0
        float_index = 0
        for arg in self.func.args:
            if arg.type.is_float:
                phys = FLOAT_ARG_REGS[float_index]
                float_index += 1
                reg = self.mfunc.new_vreg(CLASS_FLOAT)
                self.emit("fmov", dst=reg, srcs=[phys])
            else:
                phys = INT_ARG_REGS[int_index]
                int_index += 1
                reg = self.mfunc.new_vreg(CLASS_INT)
                self.emit("mov", dst=reg, srcs=[phys])
            self.vreg_map[arg] = reg

    # ------------------------------------------------------------------
    # φ copies
    # ------------------------------------------------------------------
    def _emit_phi_copies(self, block: BasicBlock) -> None:
        """Parallel copies for every successor φ, sequenced cycle-safely.

        After critical-edge splitting, any successor with φs is this
        block's only successor, so the copies belong at this block's end —
        after a trailing boundary's ``rcb``, which the natural emission
        order already guarantees (the boundary was selected before the
        terminator was reached).
        """
        succ_phis: List[Tuple[Phi, Value]] = []
        for succ in dict.fromkeys(block.successors):
            phis = list(succ.phis())
            if not phis:
                continue
            if len(set(map(id, block.successors))) > 1:
                raise ISelError(
                    f"@{self.func.name}: unsplit critical edge "
                    f"{block.name} -> {succ.name}"
                )
            for phi in phis:
                succ_phis.append((phi, phi.incoming_for(block)))
        if not succ_phis:
            return

        # Materialize constant/global sources first.
        pending: List[Tuple[Reg, Reg, str]] = []  # (dst, src, class)
        for phi, value in succ_phis:
            dst = self.vreg_map[phi]
            src = self.value_reg(value)
            if src != dst:
                pending.append((dst, src, self.class_of(phi)))

        # Idempotence requires the copy group to never read a location it
        # also writes: with a region boundary just before the group,
        # re-execution would re-read an already-overwritten input (the
        # φ-of-φ hazard). Hoist every source that is also a destination
        # into a fresh temporary *above* the trailing ``rcb``, so the temp
        # is region-internal state and the overlapped register is dead at
        # the boundary. This also removes copy cycles as a side effect.
        dests = {dst for dst, _, _ in pending}
        overlapping = {src for _, src, _ in pending if src in dests}
        if overlapping:
            assert self.current is not None
            insert_at = len(self.current.instructions)
            if insert_at and self.current.instructions[-1].opcode == "rcb":
                insert_at -= 1
            temp_for: Dict[Reg, Reg] = {}
            for src in overlapping:
                temp = self.mfunc.new_vreg(src.rclass)
                opcode = "fmov" if src.rclass == CLASS_FLOAT else "mov"
                self.current.instructions.insert(
                    insert_at, MachineInstr(opcode, dst=temp, srcs=[src])
                )
                insert_at += 1
                temp_for[src] = temp
            pending = [
                (dst, temp_for.get(src, src), rclass)
                for dst, src, rclass in pending
            ]

        # Sources and destinations are now disjoint: emit in any order.
        for dst, src, rclass in pending:
            opcode = "fmov" if rclass == CLASS_FLOAT else "mov"
            self.emit(opcode, dst=dst, srcs=[src])

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def _select(self, inst: Instruction) -> None:
        if isinstance(inst, BinaryOp):
            lhs = self.value_reg(inst.lhs)
            rhs = self.value_reg(inst.rhs)
            self.emit(inst.opcode, dst=self.def_reg(inst), srcs=[lhs, rhs])
        elif isinstance(inst, Icmp):
            lhs = self.value_reg(inst.lhs)
            rhs = self.value_reg(inst.rhs)
            self.emit(_INT_CMP[inst.pred], dst=self.def_reg(inst), srcs=[lhs, rhs])
        elif isinstance(inst, Fcmp):
            lhs = self.value_reg(inst.lhs)
            rhs = self.value_reg(inst.rhs)
            self.emit(_FLOAT_CMP[inst.pred], dst=self.def_reg(inst), srcs=[lhs, rhs])
        elif isinstance(inst, Select):
            cond = self.value_reg(inst.cond)
            a = self.value_reg(inst.true_value)
            b = self.value_reg(inst.false_value)
            self.emit("csel", dst=self.def_reg(inst), srcs=[cond, a, b])
        elif isinstance(inst, Itof):
            self.emit("itof", dst=self.def_reg(inst), srcs=[self.value_reg(inst.operand(0))])
        elif isinstance(inst, Ftoi):
            self.emit("ftoi", dst=self.def_reg(inst), srcs=[self.value_reg(inst.operand(0))])
        elif isinstance(inst, Alloca):
            self.emit("lea", dst=self.def_reg(inst), imm=self.alloca_slots[inst])
        elif isinstance(inst, Load):
            addr = self.value_reg(inst.ptr)
            self.emit("ld", dst=self.def_reg(inst), srcs=[addr])
        elif isinstance(inst, Store):
            value = self.value_reg(inst.value)
            addr = self.value_reg(inst.ptr)
            self.emit("st", srcs=[value, addr])
        elif isinstance(inst, Gep):
            base = self.value_reg(inst.base)
            index = self.value_reg(inst.index)
            self.emit("add", dst=self.def_reg(inst), srcs=[base, index])
        elif isinstance(inst, Call):
            self._select_call(inst)
        elif isinstance(inst, Boundary):
            self.emit("rcb")
        else:
            raise ISelError(f"cannot select {inst!r}")

    def _select_call(self, inst: Call) -> None:
        from repro.ir.instructions import BUILTIN_FUNCTIONS

        int_index = 0
        float_index = 0
        moves: List[Tuple[Reg, Reg, str]] = []
        for arg in inst.args:
            src = self.value_reg(arg)
            if arg.type.is_float:
                if float_index >= len(FLOAT_ARG_REGS):
                    raise ISelError(f"too many float args in call to @{inst.callee}")
                moves.append((FLOAT_ARG_REGS[float_index], src, CLASS_FLOAT))
                float_index += 1
            else:
                if int_index >= len(INT_ARG_REGS):
                    raise ISelError(f"too many int args in call to @{inst.callee}")
                moves.append((INT_ARG_REGS[int_index], src, CLASS_INT))
                int_index += 1
        for dst, src, rclass in moves:
            self.emit("fmov" if rclass == CLASS_FLOAT else "mov", dst=dst, srcs=[src])
        arg_regs = [dst for dst, _, _ in moves]
        opcode = "callb" if inst.callee in BUILTIN_FUNCTIONS else "call"
        self.emit(opcode, srcs=arg_regs, callee=inst.callee)
        if inst.type.is_value_type:
            dst = self.def_reg(inst)
            if inst.type.is_float:
                self.emit("fmov", dst=dst, srcs=[FLOAT_RET_REG])
            else:
                self.emit("mov", dst=dst, srcs=[INT_RET_REG])

    def _select_terminator(self, block: BasicBlock, inst: Instruction) -> None:
        if isinstance(inst, Jump):
            self.emit("b", imm=self.block_map[inst.target].name)
        elif isinstance(inst, Br):
            cond = self.value_reg(inst.cond)
            self.emit("bnz", srcs=[cond], imm=self.block_map[inst.then_block].name)
            self.emit("b", imm=self.block_map[inst.else_block].name)
        elif isinstance(inst, Ret):
            if inst.value is not None:
                src = self.value_reg(inst.value)
                if inst.value.type.is_float:
                    self.emit("fmov", dst=FLOAT_RET_REG, srcs=[src])
                else:
                    self.emit("mov", dst=INT_RET_REG, srcs=[src])
            self.emit("ret")
        else:
            raise ISelError(f"unknown terminator {inst!r}")


def select_function(func: Function) -> MachineFunction:
    """Lower one IR function (mutates it: edge splitting, φ cleanup)."""
    with obs.span("codegen.isel", func=func.name):
        mfunc = FunctionSelector(func).select()
    obs.counter("codegen.machine_instructions").inc(
        mfunc.instruction_count(), func=func.name
    )
    return mfunc


def select_module(module: Module) -> MachineProgram:
    """Lower a whole module to machine code with virtual registers."""
    program = MachineProgram(module.name)
    for var in module.globals.values():
        program.globals[var.name] = (var.size, var.initializer)
    for func in module.defined_functions:
        program.add_function(select_function(func))
    return program
