"""Linear-scan register allocation with the idempotence constraint.

Standard Poletto/Sarkar linear scan over coarse live intervals, extended
with the paper's §4.4 rule: *every pseudoregister live-in to an idempotent
region is treated as live-out of it*. Concretely, when allocating an
idempotent binary we extend the interval of each region live-in to cover
the entire region, so no definition inside the region can share its
register (or its spill slot — slots are never shared between vregs). The
same allocator without the extension produces the "original" binary the
paper compares against; the extension is precisely where the 2–12%
overhead (Fig. 10) comes from.

Calling convention: all registers are caller-saved. Intervals crossing a
call are spilled to frame slots (the callee runs in its own frame, so
memory-resident values are safe); intervals crossing only a builtin call
merely avoid the argument/return registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.codegen.machine import (
    CLASS_FLOAT,
    CLASS_INT,
    FLOAT_ALLOCATABLE,
    FLOAT_SCRATCH,
    INT_ALLOCATABLE,
    INT_SCRATCH,
    MachineBlock,
    MachineFunction,
    MachineInstr,
    Reg,
    preg,
)


class RegAllocError(RuntimeError):
    """Raised when allocation cannot make progress (a compiler bug)."""


# ----------------------------------------------------------------------
# Linearization and liveness
# ----------------------------------------------------------------------
class Linearized:
    """Flat view: positions, block ranges, successor edges."""

    def __init__(self, mfunc: MachineFunction) -> None:
        self.mfunc = mfunc
        self.instrs: List[MachineInstr] = []
        self.block_start: Dict[str, int] = {}
        self.block_end: Dict[str, int] = {}  # exclusive
        for block in mfunc.blocks:
            self.block_start[block.name] = len(self.instrs)
            self.instrs.extend(block.instructions)
            self.block_end[block.name] = len(self.instrs)
        self.position: Dict[int, int] = {
            id(instr): i for i, instr in enumerate(self.instrs)
        }

    def successors(self, block: MachineBlock) -> List[str]:
        return block.successor_names()


def block_liveness(mfunc: MachineFunction) -> Tuple[Dict[str, Set[Reg]], Dict[str, Set[Reg]]]:
    """Live-in/live-out *virtual* register sets per machine block."""
    use_sets: Dict[str, Set[Reg]] = {}
    def_sets: Dict[str, Set[Reg]] = {}
    for block in mfunc.blocks:
        uses: Set[Reg] = set()
        defs: Set[Reg] = set()
        for instr in block.instructions:
            for src in instr.regs_read():
                if not src.is_physical and src not in defs:
                    uses.add(src)
            for dst in instr.regs_written():
                if not dst.is_physical:
                    defs.add(dst)
        use_sets[block.name] = uses
        def_sets[block.name] = defs

    live_in: Dict[str, Set[Reg]] = {b.name: set() for b in mfunc.blocks}
    live_out: Dict[str, Set[Reg]] = {b.name: set() for b in mfunc.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(mfunc.blocks):
            out: Set[Reg] = set()
            for succ in block.successor_names():
                out |= live_in[succ]
            new_in = use_sets[block.name] | (out - def_sets[block.name])
            if out != live_out[block.name] or new_in != live_in[block.name]:
                live_out[block.name] = out
                live_in[block.name] = new_in
                changed = True
    return live_in, live_out


@dataclass
class Interval:
    reg: Reg
    start: int
    end: int
    crosses_call: bool = False
    crosses_builtin: bool = False
    assigned: Optional[int] = None  # physical index
    slot: Optional[int] = None      # spill slot offset
    #: estimated dynamic access cost (uses/defs weighted by loop depth);
    #: the allocator spills cheap intervals first
    weight: float = 0.0

    @property
    def spilled(self) -> bool:
        return self.slot is not None


def _machine_loop_depths(mfunc: MachineFunction) -> Dict[str, int]:
    """Loop-nesting depth per machine block (natural loops on block names)."""
    names = [b.name for b in mfunc.blocks]
    if not names:
        return {}
    succs = {b.name: b.successor_names() for b in mfunc.blocks}
    preds: Dict[str, List[str]] = {name: [] for name in names}
    for name, targets in succs.items():
        for target in targets:
            preds[target].append(name)

    # Reverse post-order + iterative dominators (Cooper-Harvey-Kennedy).
    order: List[str] = []
    seen: Set[str] = set()
    stack = [(names[0], iter(succs[names[0]]))]
    seen.add(names[0])
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, iter(succs[nxt])))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    index = {name: i for i, name in enumerate(order)}
    idom: Dict[str, Optional[str]] = {order[0]: order[0]}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for name in order[1:]:
            new_idom = None
            for pred in preds[name]:
                if pred in idom and pred in index:
                    new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(name) != new_idom:
                idom[name] = new_idom
                changed = True

    def dominates(a: str, b: str) -> bool:
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return node == a
            node = parent

    depths = {name: 0 for name in names}
    for tail, targets in succs.items():
        if tail not in index:
            continue
        for header in targets:
            if not dominates(header, tail):
                continue
            # Collect the natural loop body and bump its depth.
            body = {header}
            work = [tail]
            while work:
                node = work.pop()
                if node in body:
                    continue
                body.add(node)
                work.extend(p for p in preds[node] if p in index)
            for node in body:
                depths[node] += 1
    return depths


def build_intervals(mfunc: MachineFunction, lin: Linearized) -> Dict[Reg, Interval]:
    """Coarse [first, last] position intervals for every virtual register."""
    live_in, live_out = block_liveness(mfunc)
    intervals: Dict[Reg, Interval] = {}

    def touch(reg: Reg, pos: int) -> None:
        interval = intervals.get(reg)
        if interval is None:
            intervals[reg] = Interval(reg, pos, pos)
        else:
            interval.start = min(interval.start, pos)
            interval.end = max(interval.end, pos)

    depths = _machine_loop_depths(mfunc)
    for block in mfunc.blocks:
        start = lin.block_start[block.name]
        end = lin.block_end[block.name]
        access_weight = 10.0 ** min(depths.get(block.name, 0), 4)
        for reg in live_in[block.name]:
            touch(reg, start)
        for reg in live_out[block.name]:
            touch(reg, max(start, end - 1))
        for i in range(start, end):
            instr = lin.instrs[i]
            for src in instr.regs_read():
                if not src.is_physical:
                    touch(src, i)
                    intervals[src].weight += access_weight
            for dst in instr.regs_written():
                if not dst.is_physical:
                    touch(dst, i)
                    intervals[dst].weight += access_weight

    call_positions = [
        i for i, instr in enumerate(lin.instrs) if instr.opcode == "call"
    ]
    builtin_positions = [
        i for i, instr in enumerate(lin.instrs) if instr.opcode == "callb"
    ]
    for interval in intervals.values():
        interval.crosses_call = any(
            interval.start < p < interval.end for p in call_positions
        )
        interval.crosses_builtin = any(
            interval.start < p < interval.end for p in builtin_positions
        )
    return intervals


def physical_ranges(mfunc: MachineFunction, lin: Linearized) -> Dict[Tuple[str, int], List[Tuple[int, int]]]:
    """Micro live ranges of physical registers (arg/result plumbing).

    Physical registers are only live within single blocks in isel output:
    from their def (or block start, for incoming arguments) to their last
    use. Returns ``(class, index) -> [(start, end)]``.
    """
    ranges: Dict[Tuple[str, int], List[Tuple[int, int]]] = {}
    for block in mfunc.blocks:
        start = lin.block_start[block.name]
        last_def: Dict[Tuple[str, int], int] = {}
        if block is mfunc.blocks[0]:
            for i in range(mfunc.int_args):
                last_def[(CLASS_INT, i)] = start - 1
            for i in range(mfunc.float_args):
                last_def[(CLASS_FLOAT, i)] = start - 1
        for pos in range(start, lin.block_end[block.name]):
            instr = lin.instrs[pos]
            for src in instr.regs_read():
                if src.is_physical:
                    key = (src.rclass, src.index)
                    begin = last_def.get(key, start - 1)
                    ranges.setdefault(key, []).append((begin, pos))
            if instr.opcode == "ret" and mfunc.returns_value:
                key = (CLASS_FLOAT, 0) if mfunc.returns_float else (CLASS_INT, 0)
                begin = last_def.get(key, start - 1)
                ranges.setdefault(key, []).append((begin, pos))
            for dst in instr.regs_written():
                if dst.is_physical:
                    last_def[(dst.rclass, dst.index)] = pos
            if instr.is_call:
                # Calls produce their result in r0/f0.
                last_def[(CLASS_INT, 0)] = pos
                last_def[(CLASS_FLOAT, 0)] = pos
    return ranges


# ----------------------------------------------------------------------
# Machine-level regions (for the idempotence constraint)
# ----------------------------------------------------------------------
_REGION_ENDERS = ("rcb", "call", "callb")


def machine_regions(mfunc: MachineFunction, lin: Linearized) -> List[Tuple[int, Set[int]]]:
    """Per-region ``(header position, member position set)`` pairs.

    Headers sit at the function start and immediately after every restart
    point: ``rcb`` markers and calls (call/return/builtin are implicit
    boundaries — see :mod:`repro.sim.simulator`). A region's members can
    include positions *before* its header in layout order (blocks reached
    through back edges).
    """
    headers: List[int] = [0] if lin.instrs else []
    for i, instr in enumerate(lin.instrs):
        if instr.opcode in _REGION_ENDERS and i + 1 < len(lin.instrs):
            headers.append(i + 1)

    block_of_pos: Dict[int, MachineBlock] = {}
    for block in mfunc.blocks:
        for pos in range(lin.block_start[block.name], lin.block_end[block.name]):
            block_of_pos[pos] = block

    regions: List[Tuple[int, Set[int]]] = []
    for header in headers:
        members: Set[int] = set()
        stack = [header]
        seen: Set[int] = set()
        while stack:
            pos = stack.pop()
            if pos in seen or pos >= len(lin.instrs):
                continue
            seen.add(pos)
            block = block_of_pos[pos]
            end = lin.block_end[block.name]
            i = pos
            stopped = False
            while i < end:
                instr = lin.instrs[i]
                if instr.opcode in _REGION_ENDERS:
                    members.add(i)  # the boundary op re-executes on recovery
                    stopped = True
                    break
                members.add(i)
                i += 1
            if not stopped:
                for succ in block.successor_names():
                    stack.append(lin.block_start[succ])
        regions.append((header, members))
    return regions


def _live_vregs_at(
    mfunc: MachineFunction,
    lin: Linearized,
    live_out: Dict[str, Set[Reg]],
    pos: int,
) -> Set[Reg]:
    """Precise virtual-register liveness just before position ``pos``."""
    block = None
    for candidate in mfunc.blocks:
        if lin.block_start[candidate.name] <= pos < lin.block_end[candidate.name]:
            block = candidate
            break
    assert block is not None
    live = set(live_out[block.name])
    for i in range(lin.block_end[block.name] - 1, pos - 1, -1):
        instr = lin.instrs[i]
        for dst in instr.regs_written():
            if not dst.is_physical:
                live.discard(dst)
        for src in instr.regs_read():
            if not src.is_physical:
                live.add(src)
    return live


def extend_for_idempotence(
    mfunc: MachineFunction, lin: Linearized, intervals: Dict[Reg, Interval]
) -> int:
    """§4.4: region live-ins stay live across the whole region.

    A vreg live at a region's header (precise dataflow liveness, not the
    coarse interval) gets its interval widened to the region's full layout
    span, so nothing defined inside the region can reuse its register or
    spill slot. Returns the number of extensions. Liveness is a property
    of the code, not of the intervals, so one pass suffices.
    """
    _, live_out = block_liveness(mfunc)
    extended = 0
    for header, members in machine_regions(mfunc, lin):
        if not members:
            continue
        lo = min(members)
        hi = max(members)
        for reg in _live_vregs_at(mfunc, lin, live_out, header):
            interval = intervals.get(reg)
            if interval is None:
                continue
            if interval.start > lo or interval.end < hi:
                interval.start = min(interval.start, lo)
                interval.end = max(interval.end, hi)
                extended += 1
    call_positions = [i for i, ins in enumerate(lin.instrs) if ins.opcode == "call"]
    builtin_positions = [i for i, ins in enumerate(lin.instrs) if ins.opcode == "callb"]
    for interval in intervals.values():
        interval.crosses_call = any(
            interval.start < p < interval.end for p in call_positions
        )
        interval.crosses_builtin = any(
            interval.start < p < interval.end for p in builtin_positions
        )
    return extended


def _extend_physical_inputs(
    mfunc: MachineFunction,
    lin: Linearized,
    phys_ranges: Dict[Tuple[str, int], List[Tuple[int, int]]],
) -> None:
    """Protect physical argument/return registers through their region.

    The entry region reads the incoming argument registers and a post-call
    point reads ``r0``/``f0``; re-executing those regions re-reads them, so
    they are region inputs just like vreg live-ins. We widen each physical
    micro-range that starts at function entry or at a call to span its
    enclosing region, preventing any vreg from clobbering it mid-region.
    """
    regions = machine_regions(mfunc, lin)
    call_positions = {
        i for i, instr in enumerate(lin.instrs) if instr.is_call
    }
    for key, ranges in phys_ranges.items():
        widened: List[Tuple[int, int]] = []
        for begin, end in ranges:
            if begin == -1 or begin in call_positions:
                read_pos = begin + 1
                for _, members in regions:
                    if read_pos in members:
                        end = max(end, max(members))
            widened.append((begin, end))
        phys_ranges[key] = widened


# ----------------------------------------------------------------------
# Allocation
# ----------------------------------------------------------------------
@dataclass
class AllocationStats:
    vregs: int = 0
    spilled: int = 0
    extended: int = 0
    spill_loads: int = 0
    spill_stores: int = 0


def allocate_function(mfunc: MachineFunction, idempotent: bool = False) -> AllocationStats:
    """Assign physical registers in place; insert spill code."""
    lin = Linearized(mfunc)
    intervals = build_intervals(mfunc, lin)
    stats = AllocationStats(vregs=len(intervals))

    if idempotent:
        stats.extended = extend_for_idempotence(mfunc, lin, intervals)

    phys_ranges = physical_ranges(mfunc, lin)
    if idempotent:
        _extend_physical_inputs(mfunc, lin, phys_ranges)

    def overlaps_physical(interval: Interval, index: int) -> bool:
        for begin, end in phys_ranges.get((interval.reg.rclass, index), ()):
            if interval.start <= end and begin <= interval.end:
                return True
        return False

    allocatable = {CLASS_INT: INT_ALLOCATABLE, CLASS_FLOAT: FLOAT_ALLOCATABLE}
    arg_reg_count = 4

    # Total order: interval ties must not fall back to dict insertion
    # order, which follows Set[Reg] iteration (= string hashing) in
    # build_intervals and therefore varies across interpreter processes.
    ordered = sorted(
        intervals.values(),
        key=lambda iv: (iv.start, iv.end, iv.reg.rclass, iv.reg.index),
    )
    active: List[Interval] = []

    for interval in ordered:
        active = [iv for iv in active if iv.end >= interval.start]
        if interval.crosses_call:
            interval.slot = mfunc.frame.add_slot(1, f"spill.{interval.reg}")
            stats.spilled += 1
            continue
        in_use = {iv.assigned for iv in active if iv.reg.rclass == interval.reg.rclass}
        candidates = [
            index
            for index in allocatable[interval.reg.rclass]
            if index not in in_use
            and not overlaps_physical(interval, index)
            and not (interval.crosses_builtin and index < arg_reg_count)
        ]
        if candidates:
            # Prefer high registers to keep arg registers free.
            interval.assigned = candidates[-1]
            active.append(interval)
            continue
        # No free register: evict the *cheapest* conflicting interval
        # (fewest loop-depth-weighted accesses) — possibly ourselves.
        stealable = [
            iv
            for iv in active
            if iv.reg.rclass == interval.reg.rclass
            and not overlaps_physical(interval, iv.assigned)
            and not (interval.crosses_builtin and iv.assigned < arg_reg_count)
        ]
        victim = min(stealable, key=lambda iv: iv.weight, default=None)
        if victim is not None and victim.weight < interval.weight:
            victim.slot = mfunc.frame.add_slot(1, f"spill.{victim.reg}")
            stats.spilled += 1
            interval.assigned = victim.assigned
            victim.assigned = None
            active.remove(victim)
            active.append(interval)
        else:
            interval.slot = mfunc.frame.add_slot(1, f"spill.{interval.reg}")
            stats.spilled += 1

    _rewrite(mfunc, intervals, stats)
    return stats


def _remat_defs(mfunc: MachineFunction, intervals: Dict[Reg, Interval]) -> Dict[Reg, MachineInstr]:
    """Spilled vregs whose value can be recomputed instead of reloaded.

    A vreg with exactly one definition by a constant-producing op
    (``movi``/``fmovi``/``ga``/``lea`` — all operand-free) never needs a
    slot: each use re-emits the def into a scratch register (1 cycle, no
    memory port) and the store at the def disappears. This is standard
    linear-scan rematerialization; without it, the §4.4 extension makes
    the allocator spill loop-invariant table addresses that then cost a
    2-cycle reload per use in hot loops.
    """
    _REMAT_OPS = ("movi", "fmovi", "ga", "lea")
    defs: Dict[Reg, List[MachineInstr]] = {}
    for instr in mfunc.instructions():
        if instr.dst is not None and not instr.dst.is_physical:
            defs.setdefault(instr.dst, []).append(instr)
    remat: Dict[Reg, MachineInstr] = {}
    for reg, interval in intervals.items():
        if not interval.spilled:
            continue
        reg_defs = defs.get(reg, [])
        if len(reg_defs) == 1 and reg_defs[0].opcode in _REMAT_OPS:
            remat[reg] = reg_defs[0]
    return remat


def _rewrite(mfunc: MachineFunction, intervals: Dict[Reg, Interval], stats: AllocationStats) -> None:
    """Substitute physical registers and materialize spill code."""
    scratch_pool = {CLASS_INT: INT_SCRATCH, CLASS_FLOAT: FLOAT_SCRATCH}
    remat = _remat_defs(mfunc, intervals)

    for block in mfunc.blocks:
        new_instrs: List[MachineInstr] = []
        for instr in block.instructions:
            scratch_used = {CLASS_INT: 0, CLASS_FLOAT: 0}
            pre: List[MachineInstr] = []
            post: List[MachineInstr] = []

            def map_reg(reg: Reg, is_def: bool) -> Reg:
                if reg.is_physical:
                    return reg
                interval = intervals[reg]
                if interval.assigned is not None:
                    return preg(reg.rclass, interval.assigned)
                assert interval.slot is not None
                pool = scratch_pool[reg.rclass]
                index = scratch_used[reg.rclass]
                if index >= len(pool):
                    if is_def:
                        # The destination is written after every source has
                        # been read, so it may reuse a source's scratch.
                        index = 0
                    else:
                        raise RegAllocError(
                            f"out of scratch registers rewriting {instr!r}"
                        )
                else:
                    scratch_used[reg.rclass] += 1
                scratch = preg(reg.rclass, pool[index])
                remat_def = remat.get(reg)
                if remat_def is not None:
                    if is_def:
                        pass  # value is recomputed at uses; no slot write
                    else:
                        pre.append(
                            MachineInstr(
                                remat_def.opcode,
                                dst=scratch,
                                imm=remat_def.imm,
                            )
                        )
                elif is_def:
                    post.append(
                        MachineInstr("stslot", srcs=[scratch], imm=interval.slot)
                    )
                    stats.spill_stores += 1
                else:
                    pre.append(
                        MachineInstr("ldslot", dst=scratch, imm=interval.slot)
                    )
                    stats.spill_loads += 1
                return scratch

            # Reuse one scratch when the same spilled vreg appears twice.
            seen_srcs: Dict[Reg, Reg] = {}
            new_srcs = []
            for src in instr.srcs:
                if src in seen_srcs:
                    new_srcs.append(seen_srcs[src])
                    continue
                mapped = map_reg(src, is_def=False)
                seen_srcs[src] = mapped
                new_srcs.append(mapped)
            instr.srcs = new_srcs
            if instr.dst is not None:
                # A spilled dst may reuse a source scratch register safely
                # only after all sources are read — which is the case since
                # the dst write happens last; use a fresh scratch anyway.
                instr.dst = map_reg(instr.dst, is_def=True)

            new_instrs.extend(pre)
            new_instrs.append(instr)
            new_instrs.extend(post)
        block.instructions = new_instrs


def allocate_program(program, idempotent: bool = False) -> Dict[str, AllocationStats]:
    """Allocate every function of a :class:`MachineProgram`."""
    from repro import obs

    flavour = "idempotent" if idempotent else "original"
    stats: Dict[str, AllocationStats] = {}
    for name, mfunc in program.functions.items():
        with obs.span("codegen.regalloc", func=name, flavour=flavour):
            stats[name] = allocate_function(mfunc, idempotent=idempotent)
        for field in ("vregs", "spilled", "extended", "spill_loads", "spill_stores"):
            value = getattr(stats[name], field)
            if value:
                obs.counter(f"codegen.regalloc.{field}").inc(value, flavour=flavour)
    return stats
