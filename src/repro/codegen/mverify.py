"""Machine-level idempotence verifier.

Independent post-allocation oracle for the whole compilation pipeline: for
every machine region (re-execution window), check that no *input* of the
region — a register or stack slot readable before any write on some path
from the region header — is overwritten anywhere in the region. This is
the register/stack-slot half of the idempotence property; the memory half
is checked at the IR level (:mod:`repro.core.verify`) plus the store
buffer's commit discipline.

Used in tests and by :func:`repro.compiler.compile_minic` (opt-in) to
catch construction or allocation bugs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.codegen.machine import MachineFunction, MachineInstr
from repro.codegen.regalloc import Linearized, machine_regions, _REGION_ENDERS

#: an abstract storage location
Loc = Tuple[str, int]


def _reads_of(instr: MachineInstr, mfunc: MachineFunction) -> List[Loc]:
    reads: List[Loc] = [(src.rclass, src.index) for src in instr.srcs]
    if instr.opcode == "ldslot":
        reads.append(("slot", instr.imm))
    if instr.opcode == "ret" and mfunc.returns_value:
        reads.append(("f" if mfunc.returns_float else "i", 0))
    return reads


def _writes_of(instr: MachineInstr) -> List[Loc]:
    writes: List[Loc] = []
    if instr.dst is not None:
        writes.append((instr.dst.rclass, instr.dst.index))
    if instr.opcode == "stslot":
        writes.append(("slot", instr.imm))
    return writes


class MachineIdempotenceViolation:
    def __init__(self, func: str, header: int, loc: Loc, read_pos: int, write_pos: int) -> None:
        self.func = func
        self.header = header
        self.loc = loc
        self.read_pos = read_pos
        self.write_pos = write_pos

    def __repr__(self) -> str:
        return (
            f"<MViolation @{self.func} region@{self.header}: {self.loc} "
            f"read@{self.read_pos} written@{self.write_pos}>"
        )


def verify_machine_function(mfunc: MachineFunction) -> List[MachineIdempotenceViolation]:
    """All region-input overwrites in ``mfunc`` (empty list = idempotent)."""
    lin = Linearized(mfunc)
    violations: List[MachineIdempotenceViolation] = []

    for header, members in machine_regions(mfunc, lin):
        if not members:
            continue
        inputs, read_positions = _region_inputs(mfunc, lin, header, members)
        ender_positions = {
            p for p in members if lin.instrs[p].opcode in _REGION_ENDERS
        }
        writes: Dict[Loc, int] = {}
        for pos in members:
            if pos in ender_positions:
                continue  # the ender's write lands in the next window
            instr = lin.instrs[pos]
            if instr.opcode in ("mov", "fmov") and instr.dst == instr.srcs[0]:
                continue  # self-move is idempotent
            for loc in _writes_of(instr):
                writes.setdefault(loc, pos)
        for loc in inputs & set(writes):
            violations.append(
                MachineIdempotenceViolation(
                    mfunc.name, header, loc, read_positions[loc], writes[loc]
                )
            )
    return violations


def _region_inputs(
    mfunc: MachineFunction,
    lin: Linearized,
    header: int,
    members: Set[int],
) -> Tuple[Set[Loc], Dict[Loc, int]]:
    """Locations read before being definitely written, and a witness read.

    Forward dataflow inside the region: ``definitely_written[pos]`` is the
    intersection over header→pos paths of locations written so far. A read
    of a location outside that set marks it as a region input.
    """
    # Map each position to its block's end (exclusive) and successor starts.
    block_end_of: Dict[int, int] = {}
    succs_of_pos: Dict[int, List[int]] = {}
    for block in mfunc.blocks:
        start = lin.block_start[block.name]
        end = lin.block_end[block.name]
        succ_starts = [lin.block_start[name] for name in block.successor_names()]
        for pos in range(start, end):
            block_end_of[pos] = end
            succs_of_pos[pos] = succ_starts

    # State at a segment start = locations definitely written since the
    # region header on every path (meet = intersection).
    state_at: Dict[int, FrozenSet[Loc]] = {header: frozenset()}
    worklist: List[int] = [header]
    inputs: Set[Loc] = set()
    witness: Dict[Loc, int] = {}

    while worklist:
        start = worklist.pop()
        current: Set[Loc] = set(state_at[start])
        pos = start
        hit_ender = False
        while pos in members:
            instr = lin.instrs[pos]
            for loc in _reads_of(instr, mfunc):
                if loc not in current and loc not in inputs:
                    inputs.add(loc)
                    witness[loc] = pos
            if instr.opcode in _REGION_ENDERS:
                hit_ender = True
                break
            for loc in _writes_of(instr):
                current.add(loc)
            if pos + 1 >= block_end_of[pos]:
                break  # end of block: fall through to successors
            pos += 1
        if hit_ender or pos not in members:
            continue
        frozen = frozenset(current)
        for succ_start in succs_of_pos[pos]:
            if succ_start not in members:
                continue
            old = state_at.get(succ_start)
            if old is None:
                state_at[succ_start] = frozen
                worklist.append(succ_start)
            else:
                met = old & frozen
                if met != old:
                    state_at[succ_start] = met
                    worklist.append(succ_start)
    return inputs, witness


def verify_machine_program(program) -> List[MachineIdempotenceViolation]:
    violations = []
    for mfunc in program.functions.values():
        violations.extend(verify_machine_function(mfunc))
    return violations
