"""repro.codegen — machine code generation.

- :mod:`repro.codegen.machine` — the ARM-flavoured virtual ISA
- :mod:`repro.codegen.isel` — IR → machine lowering (φ copies, calls)
- :mod:`repro.codegen.regalloc` — linear scan, with the §4.4 idempotence
  constraint when ``idempotent=True``
- :mod:`repro.codegen.mverify` — post-allocation idempotence oracle
"""

from repro.codegen.isel import ISelError, select_function, select_module
from repro.codegen.machine import (
    CLASS_FLOAT,
    CLASS_INT,
    DEFAULT_LATENCY,
    MachineBlock,
    MachineFunction,
    MachineInstr,
    MachineProgram,
    Reg,
    format_machine_function,
    preg,
    vreg,
)
from repro.codegen.mverify import (
    MachineIdempotenceViolation,
    verify_machine_function,
    verify_machine_program,
)
from repro.codegen.regalloc import (
    AllocationStats,
    RegAllocError,
    allocate_function,
    allocate_program,
)

__all__ = [
    "AllocationStats",
    "CLASS_FLOAT",
    "CLASS_INT",
    "DEFAULT_LATENCY",
    "ISelError",
    "MachineBlock",
    "MachineFunction",
    "MachineIdempotenceViolation",
    "MachineInstr",
    "MachineProgram",
    "Reg",
    "RegAllocError",
    "allocate_function",
    "allocate_program",
    "format_machine_function",
    "preg",
    "select_function",
    "select_module",
    "verify_machine_function",
    "verify_machine_program",
    "vreg",
]
