"""Machine IR: an ARM-flavoured virtual ISA.

The target models the paper's evaluation machine (ARMv7, two-issue): 16
integer registers vs 32 floating-point registers — the asymmetry §6.2
blames for SPEC INT's higher overheads — a load/store architecture, and a
restart-pointer register ``rp`` written by region boundary markers
(``rcb``). The stack is modeled as per-activation frames of word slots;
frame management is part of call/ret semantics (the paper's §3
"calling-convention antidependences" are defined away, as its limit study
also assumes).

Register file:

- integer ``r0``–``r15``: ``r0``–``r3`` argument/return, ``r0``–``r11``
  allocatable, ``r12``/``r13`` reserved spill scratch, ``r14`` = ``rp``
  (restart pointer), ``r15`` = ``lp`` (checkpoint-log pointer).
- float ``f0``–``f31``: ``f0``–``f3`` argument/return, ``f0``–``f29``
  allocatable, ``f30``/``f31`` reserved spill scratch.

Before register allocation, operands are virtual registers (class "i" or
"f"); physical registers appear pre-colored around calls and after
allocation everywhere.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Union

# ----------------------------------------------------------------------
# Registers
# ----------------------------------------------------------------------
CLASS_INT = "i"
CLASS_FLOAT = "f"


class Reg:
    """A register operand: virtual (``%i7``) or physical (``r3`` / ``f12``)."""

    __slots__ = ("rclass", "index", "is_physical")

    def __init__(self, rclass: str, index: int, is_physical: bool) -> None:
        self.rclass = rclass
        self.index = index
        self.is_physical = is_physical

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Reg)
            and other.rclass == self.rclass
            and other.index == self.index
            and other.is_physical == self.is_physical
        )

    def __hash__(self) -> int:
        return hash((self.rclass, self.index, self.is_physical))

    def __repr__(self) -> str:
        if self.is_physical:
            prefix = "r" if self.rclass == CLASS_INT else "f"
            return f"{prefix}{self.index}"
        return f"%{self.rclass}{self.index}"


def vreg(rclass: str, index: int) -> Reg:
    return Reg(rclass, index, is_physical=False)


def preg(rclass: str, index: int) -> Reg:
    return Reg(rclass, index, is_physical=True)


NUM_INT_REGS = 16
NUM_FLOAT_REGS = 32

INT_ARG_REGS = [preg(CLASS_INT, i) for i in range(4)]
FLOAT_ARG_REGS = [preg(CLASS_FLOAT, i) for i in range(4)]
INT_RET_REG = preg(CLASS_INT, 0)
FLOAT_RET_REG = preg(CLASS_FLOAT, 0)

INT_ALLOCATABLE = list(range(0, 12))
FLOAT_ALLOCATABLE = list(range(0, 30))
INT_SCRATCH = [12, 13]
FLOAT_SCRATCH = [30, 31]
RP_REG = preg(CLASS_INT, 14)
LP_REG = preg(CLASS_INT, 15)


# ----------------------------------------------------------------------
# Opcodes
# ----------------------------------------------------------------------
INT_ALU_OPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr")
FLOAT_ALU_OPS = ("fadd", "fsub", "fmul", "fdiv")
INT_CMP_OPS = tuple(f"cmp{p}" for p in ("eq", "ne", "lt", "le", "gt", "ge"))
FLOAT_CMP_OPS = tuple(f"fcmp{p}" for p in ("eq", "ne", "lt", "le", "gt", "ge"))

#: opcode -> result latency in cycles (issue width handled by the simulator)
DEFAULT_LATENCY: Dict[str, int] = {
    "mov": 1, "fmov": 1, "movi": 1, "fmovi": 1,
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1, "shl": 1, "shr": 1,
    "mul": 3, "div": 12, "rem": 12,
    "fadd": 3, "fsub": 3, "fmul": 3, "fdiv": 16,
    "itof": 2, "ftoi": 2,
    "ld": 2, "st": 1, "ldslot": 2, "stslot": 1, "lea": 1, "ga": 1,
    "csel": 1,
    "stlog": 1, "advlp": 1,  # checkpoint-and-log instrumentation (§6.3)
    "b": 1, "bnz": 1, "ret": 1, "call": 1, "callb": 1,
    "rcb": 1, "check": 1, "majority": 1,
}
for _op in INT_CMP_OPS + FLOAT_CMP_OPS:
    DEFAULT_LATENCY[_op] = 1


class MachineInstr:
    """One machine instruction.

    Fields are operand slots whose use depends on ``opcode``:

    - ``dst``: destination register (None for stores/branches/...)
    - ``srcs``: source registers, in order
    - ``imm``: immediate (int/float), slot index, or branch target name
    - ``callee``: function/builtin name for ``call``/``callb``
    """

    __slots__ = ("opcode", "dst", "srcs", "imm", "callee")

    def __init__(
        self,
        opcode: str,
        dst: Optional[Reg] = None,
        srcs: Sequence[Reg] = (),
        imm: Union[int, float, str, None] = None,
        callee: Optional[str] = None,
    ) -> None:
        self.opcode = opcode
        self.dst = dst
        self.srcs = list(srcs)
        self.imm = imm
        self.callee = callee

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    @property
    def is_branch(self) -> bool:
        return self.opcode in ("b", "bnz", "ret")

    @property
    def is_memory(self) -> bool:
        return self.opcode in ("ld", "st", "ldslot", "stslot", "stlog")

    @property
    def is_call(self) -> bool:
        return self.opcode in ("call", "callb")

    @property
    def is_alu(self) -> bool:
        return (
            self.opcode in INT_ALU_OPS
            or self.opcode in FLOAT_ALU_OPS
            or self.opcode in INT_CMP_OPS
            or self.opcode in FLOAT_CMP_OPS
            or self.opcode in ("mov", "fmov", "movi", "fmovi", "itof", "ftoi", "lea")
        )

    def regs_read(self) -> List[Reg]:
        return list(self.srcs)

    def regs_written(self) -> List[Reg]:
        return [self.dst] if self.dst is not None else []

    def __repr__(self) -> str:
        parts = [self.opcode]
        if self.dst is not None:
            parts.append(repr(self.dst))
        parts.extend(repr(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(repr(self.imm))
        if self.callee is not None:
            parts.append(f"@{self.callee}")
        return " ".join(parts)


class MachineBlock:
    """A labeled straight-line run of machine instructions."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[MachineInstr] = []

    def append(self, instr: MachineInstr) -> MachineInstr:
        self.instructions.append(instr)
        return instr

    def __iter__(self) -> Iterator[MachineInstr]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def successor_names(self) -> List[str]:
        """Targets of the final branch; fall-through is not allowed."""
        names = []
        for instr in self.instructions:
            if instr.opcode == "b":
                names.append(instr.imm)
            elif instr.opcode == "bnz":
                names.append(instr.imm)
        return names

    def __repr__(self) -> str:
        return f"<MachineBlock {self.name} ({len(self.instructions)})>"


class Frame:
    """Stack frame layout: named word slots (allocas + spills)."""

    def __init__(self) -> None:
        self.slot_sizes: List[int] = []
        self.slot_names: List[str] = []

    def add_slot(self, size: int = 1, name: str = "") -> int:
        """Reserve ``size`` words; returns the slot's word offset."""
        offset = self.size
        self.slot_sizes.append(size)
        self.slot_names.append(name or f"slot{len(self.slot_sizes)}")
        return offset

    @property
    def size(self) -> int:
        return sum(self.slot_sizes)


class MachineFunction:
    """A compiled function: blocks, frame, and argument metadata."""

    def __init__(self, name: str, int_args: int, float_args: int, returns_float: bool, returns_value: bool) -> None:
        self.name = name
        self.int_args = int_args
        self.float_args = float_args
        self.returns_float = returns_float
        self.returns_value = returns_value
        self.blocks: List[MachineBlock] = []
        self.frame = Frame()
        self._vreg_counter = itertools.count()

    def new_vreg(self, rclass: str) -> Reg:
        return vreg(rclass, next(self._vreg_counter))

    def add_block(self, name: str) -> MachineBlock:
        existing = {b.name for b in self.blocks}
        unique = name
        i = 0
        while unique in existing:
            unique = f"{name}.m{i}"
            i += 1
        block = MachineBlock(unique)
        self.blocks.append(block)
        return block

    def block_by_name(self, name: str) -> MachineBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no machine block {name!r} in {self.name}")

    def block_index(self, name: str) -> int:
        for i, block in enumerate(self.blocks):
            if block.name == name:
                return i
        raise KeyError(name)

    def instructions(self) -> Iterator[MachineInstr]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks)

    def __repr__(self) -> str:
        return f"<MachineFunction {self.name}: {len(self.blocks)} blocks>"


class MachineProgram:
    """A whole compiled module plus its global data layout."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, MachineFunction] = {}
        #: global name -> (size, initializer or None)
        self.globals: Dict[str, tuple] = {}

    def add_function(self, func: MachineFunction) -> MachineFunction:
        self.functions[func.name] = func
        return func

    def __repr__(self) -> str:
        return f"<MachineProgram {self.name}: {len(self.functions)} functions>"


def format_machine_function(func: MachineFunction) -> str:
    lines = [f"func {func.name} (iargs={func.int_args}, fargs={func.float_args}, "
             f"frame={func.frame.size}):"]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for instr in block.instructions:
            lines.append(f"  {instr!r}")
    return "\n".join(lines)
