"""repro.bench — the committed performance trajectory of the compiler.

``python -m repro bench`` times the pipeline's phases (frontend,
transforms, region construction with its sub-phases, codegen, simulator)
per workload via the :mod:`repro.obs` span tracer, and writes a
schema-tagged ``BENCH_<label>.json`` that ``repro stats`` validates like
any other observability artifact.

Two consumption modes:

- **trajectory** — ``BENCH_baseline.json`` is committed at the repo root;
  every perf-relevant PR regenerates it so the history of phase timings
  lives in version control;
- **regression gate** — ``repro bench --baseline FILE --max-regression
  PCT`` exits nonzero when any phase slowed down by more than the
  threshold (CI runs this informationally with a generous threshold).

See ``docs/performance.md`` for the workflow and the JSON schema.
"""

from repro.bench.campaign_cache import (
    CAMPAIGN_CACHE_SCHEMA,
    load_campaign_cache_file,
    run_campaign_cache_bench,
    summarize_campaign_cache,
    validate_campaign_cache_file,
    write_campaign_cache_json,
)
from repro.bench.compare import BenchRegression, compare_bench, format_comparison
from repro.bench.recovery import (
    RECOVERY_BENCH_SCHEMA,
    load_recovery_bench_file,
    recovery_bench_payload,
    summarize_recovery_bench,
    validate_recovery_bench_file,
    write_recovery_bench_json,
)
from repro.bench.serve import (
    SERVE_BENCH_SCHEMA,
    load_serve_bench_file,
    serve_bench_payload,
    summarize_serve_bench,
    validate_serve_bench_file,
    write_serve_bench_json,
)
from repro.bench.runner import (
    BENCH_SCHEMA,
    FAST_SUBSET,
    BenchError,
    default_workloads,
    load_bench_file,
    run_bench,
    summarize_bench,
    validate_bench_file,
    write_bench_json,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchError",
    "BenchRegression",
    "CAMPAIGN_CACHE_SCHEMA",
    "FAST_SUBSET",
    "RECOVERY_BENCH_SCHEMA",
    "SERVE_BENCH_SCHEMA",
    "compare_bench",
    "default_workloads",
    "format_comparison",
    "load_bench_file",
    "load_campaign_cache_file",
    "load_recovery_bench_file",
    "load_serve_bench_file",
    "recovery_bench_payload",
    "run_bench",
    "run_campaign_cache_bench",
    "serve_bench_payload",
    "summarize_bench",
    "summarize_campaign_cache",
    "summarize_recovery_bench",
    "summarize_serve_bench",
    "validate_bench_file",
    "validate_campaign_cache_file",
    "validate_recovery_bench_file",
    "validate_serve_bench_file",
    "write_bench_json",
    "write_campaign_cache_json",
    "write_recovery_bench_json",
]
