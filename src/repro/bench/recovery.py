"""``BENCH_recovery.json`` — the recovery-zoo benchmark schema.

Where ``repro.bench/1`` dumps record *compiler phase* wall-times and
``repro.serve.bench/1`` records service throughput, a
``repro.recovery.bench/1`` dump records the Fig. 12 trade-off as
measured by ``repro recovery compare``: per-backend dynamic overhead
(geomean vs the DMR baseline) against the fault-campaign outcome
buckets, plus the static predictor's mean absolute error over the
per-region predicted-vs-measured comparison.  ``repro stats FILE``
validates and summarizes these like every other observability artifact.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Optional

from repro.bench.runner import BenchError

#: Schema tag stamped into recovery bench dumps (bump on layout change).
RECOVERY_BENCH_SCHEMA = "repro.recovery.bench/1"

#: Required integer bucket counters of each backend row.
_BUCKET_FIELDS = ("trials", "injected", "recovered", "wrong", "crashed",
                  "undetected")

#: Required fields of the ``predictor`` section.
_PREDICTOR_FIELDS = ("mae", "regions", "flagged", "threshold")


def recovery_bench_payload(
    label: str,
    version: str,
    seed: int,
    trials: int,
    latency: int,
    kind: str,
    threshold: float,
    workloads: List[str],
    backends: List[Dict[str, object]],
    predictor: Dict[str, object],
) -> dict:
    """Assemble a schema-complete recovery bench dump.

    Each ``backends`` row carries a backend name, its geomean fault-free
    ``overhead`` vs DMR, the campaign bucket totals, the measured and
    predicted recovery rates (``measured_rate`` is ``None`` when nothing
    was injected — the NaN path of ``CampaignResult.recovery_rate``),
    and the per-region ``mae`` (``None`` with no comparable regions).
    """
    rows = []
    for backend in backends:
        row = {
            "name": str(backend["name"]),
            "overhead": round(float(backend["overhead"]), 6),
            "predicted_rate": round(float(backend["predicted_rate"]), 6),
            "measured_rate": (
                None if backend["measured_rate"] is None
                else round(float(backend["measured_rate"]), 6)
            ),
            "mae": (
                None if backend["mae"] is None
                else round(float(backend["mae"]), 6)
            ),
        }
        for name in _BUCKET_FIELDS:
            row[name] = int(backend[name])
        rows.append(row)
    return {
        "schema": RECOVERY_BENCH_SCHEMA,
        "label": label,
        "version": version,
        "seed": int(seed),
        "trials": int(trials),
        "latency": int(latency),
        "kind": str(kind),
        "threshold": float(threshold),
        "workloads": [str(name) for name in workloads],
        "backends": rows,
        "predictor": {
            "mae": (
                None if predictor["mae"] is None
                else round(float(predictor["mae"]), 6)
            ),
            "regions": int(predictor["regions"]),
            "flagged": int(predictor["flagged"]),
            "threshold": float(predictor["threshold"]),
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def write_recovery_bench_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_recovery_bench_file(path: str) -> dict:
    """Read and schema-validate a recovery bench dump; returns the payload."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchError(f"{path}: unreadable recovery bench dump ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("schema") != RECOVERY_BENCH_SCHEMA:
        schema = payload.get("schema") if isinstance(payload, dict) else None
        raise BenchError(
            f"{path}: not a {RECOVERY_BENCH_SCHEMA} dump (schema={schema!r})"
        )
    for field in ("label", "version", "kind"):
        if not isinstance(payload.get(field), str):
            raise BenchError(f"{path}: missing string {field!r}")
    for field in ("seed", "trials", "latency"):
        if not isinstance(payload.get(field), int):
            raise BenchError(f"{path}: missing integer {field!r}")
    if not isinstance(payload.get("threshold"), (int, float)):
        raise BenchError(f"{path}: missing numeric 'threshold'")
    workloads = payload.get("workloads")
    if not isinstance(workloads, list) or not all(
        isinstance(name, str) for name in workloads
    ):
        raise BenchError(f"{path}: missing workloads list")
    backends = payload.get("backends")
    if not isinstance(backends, list) or not backends:
        raise BenchError(f"{path}: missing non-empty backends list")
    for row in backends:
        if not isinstance(row, dict) or not isinstance(row.get("name"), str):
            raise BenchError(f"{path}: backend row lacks a name")
        name = row["name"]
        for field in ("overhead", "predicted_rate"):
            if not isinstance(row.get(field), (int, float)):
                raise BenchError(
                    f"{path}: backend {name!r} lacks numeric {field!r}"
                )
        for field in ("measured_rate", "mae"):
            value = row.get(field, "absent")
            if value is not None and not isinstance(value, (int, float)):
                raise BenchError(
                    f"{path}: backend {name!r} {field!r} must be numeric or null"
                )
        for field in _BUCKET_FIELDS:
            if not isinstance(row.get(field), int):
                raise BenchError(
                    f"{path}: backend {name!r} lacks integer {field!r}"
                )
    predictor = payload.get("predictor")
    if not isinstance(predictor, dict):
        raise BenchError(f"{path}: missing predictor section")
    for field in _PREDICTOR_FIELDS:
        if field not in predictor:
            raise BenchError(f"{path}: predictor lacks {field!r}")
    mae = predictor["mae"]
    if mae is not None and not isinstance(mae, (int, float)):
        raise BenchError(f"{path}: predictor mae must be numeric or null")
    for field in ("regions", "flagged"):
        if not isinstance(predictor.get(field), int):
            raise BenchError(f"{path}: predictor lacks integer {field!r}")
    return payload


def validate_recovery_bench_file(path: str) -> int:
    """Schema-check a recovery bench dump; returns its backend count."""
    return len(load_recovery_bench_file(path)["backends"])


def _rate(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value:.0%}"


def summarize_recovery_bench(payload: dict) -> str:
    """Human rendering of a recovery bench dump (``repro stats`` view)."""
    predictor = payload["predictor"]
    lines = [
        f"label: {payload['label']}  version: {payload['version']}"
        f"  seed: {payload['seed']}  trials: {payload['trials']}/backend"
        f"  kind: {payload['kind']}  latency: {payload['latency']}",
        f"  workloads  {', '.join(payload['workloads'])}",
    ]
    for row in payload["backends"]:
        lines.append(
            f"  {row['name']:<15s} overhead {row['overhead']:+7.1%}   "
            f"recovered {row['recovered']}/{row['injected']} "
            f"(wrong {row['wrong']}, crashed {row['crashed']}, "
            f"undetected {row['undetected']})   "
            f"measured {_rate(row['measured_rate'])} "
            f"vs predicted {row['predicted_rate']:.0%}"
        )
    mae = predictor["mae"]
    lines.append(
        "  predictor  "
        + (
            "MAE n/a (no injected regions)"
            if mae is None
            else f"MAE {mae:.3f} over {predictor['regions']} regions "
            f"({predictor['flagged']} flagged at "
            f"threshold {predictor['threshold']:.2f})"
        )
    )
    return "\n".join(lines)
