"""The ``repro bench`` measurement core.

One measurement = compile a workload from source (idempotent flavour,
no artifact cache) and execute it on the machine simulator, under an
enabled span tracer; phase wall-times are then read back out of the
span buffer.  Each workload is measured ``repeats`` times and the
*minimum* per phase is kept (the minimum is the standard noise filter
for wall-clock microbenchmarks: every measurement carries additive
noise, so the smallest observation is the closest to the true cost).

Phases are derived from span names, not ad-hoc timers, so the numbers
line up with what ``--profile`` traces show in Perfetto:

==========================  ============================================
phase                       spans summed
==========================  ============================================
``compile``                 ``compile.minic`` (whole build)
``frontend``                ``frontend.compile``
``construction``            ``construction.module`` (all §4 phases)
``construction.<sub>``      ``construction.{ssa,antideps,cuts,loops,
                            regions,verify}`` per function
``codegen``                 ``codegen.isel`` + ``codegen.regalloc``
``sim``                     ``sim.run``
==========================  ============================================
"""

from __future__ import annotations

import json
import os
import platform
from typing import Dict, List, Optional, Sequence

from repro.obs.context import Observer, set_observer

#: Schema tag stamped into bench dumps (bump on breaking layout change).
BENCH_SCHEMA = "repro.bench/1"

#: The ``REPRO_BENCH_FULL=0`` subset: two workloads per suite, the same
#: selection ``benchmarks/conftest.py`` uses for the fast pytest pass.
FAST_SUBSET = ["bzip2", "mcf", "soplex", "sphinx", "blackscholes", "canneal"]

#: Span names whose durations are summed into each phase row.
_PHASE_SPANS: Dict[str, Sequence[str]] = {
    "compile": ("compile.minic",),
    "frontend": ("frontend.compile",),
    "construction": ("construction.module",),
    "construction.ssa": ("construction.ssa",),
    "construction.antideps": ("construction.antideps",),
    "construction.cuts": ("construction.cuts",),
    "construction.loops": ("construction.loops",),
    "construction.regions": ("construction.regions",),
    "construction.verify": ("construction.verify",),
    "codegen": ("codegen.isel", "codegen.regalloc"),
    "sim": ("sim.run",),
}


class BenchError(ValueError):
    """A bench dump failed schema validation."""


def default_workloads() -> Optional[List[str]]:
    """The default bench selection: ``FAST_SUBSET``, or the full suite
    when ``REPRO_BENCH_FULL`` is set (``None`` means "all")."""
    if os.environ.get("REPRO_BENCH_FULL"):
        return None
    return list(FAST_SUBSET)


def _resolve_workloads(names: Optional[Sequence[str]]):
    from repro.workloads import all_workloads

    available = {w.name: w for w in all_workloads()}
    if names is None:
        return list(available.values())
    missing = [n for n in names if n not in available]
    if missing:
        raise BenchError(f"unknown workload(s): {', '.join(missing)}")
    return [available[n] for n in names]


def _measure_once(workload, analysis_cache: bool) -> Dict[str, float]:
    """One traced compile+simulate; returns seconds per phase."""
    from repro.compiler import compile_minic
    from repro.sim import Simulator

    observer = Observer(enabled=True)
    previous = set_observer(observer)
    try:
        result = compile_minic(workload.source, idempotent=True,
                               name=workload.name,
                               analysis_cache=analysis_cache)
        Simulator(result.program).run(workload.entry)
    finally:
        set_observer(previous)

    by_name: Dict[str, int] = {}
    for span in observer.tracer.spans():
        by_name[span.name] = by_name.get(span.name, 0) + span.dur_ns
    return {
        phase: sum(by_name.get(name, 0) for name in spans) / 1e9
        for phase, spans in _PHASE_SPANS.items()
    }


def run_bench(
    names: Optional[Sequence[str]] = None,
    repeats: int = 3,
    label: str = "local",
    analysis_cache: bool = True,
) -> dict:
    """Measure every selected workload; returns the bench payload."""
    if repeats < 1:
        raise BenchError(f"repeats must be >= 1, got {repeats}")
    workloads = _resolve_workloads(names)

    per_workload: Dict[str, Dict[str, float]] = {}
    for workload in workloads:
        best: Dict[str, float] = {}
        for _ in range(repeats):
            sample = _measure_once(workload, analysis_cache)
            for phase, seconds in sample.items():
                if phase not in best or seconds < best[phase]:
                    best[phase] = seconds
        per_workload[workload.name] = best

    phases = {
        phase: {
            "seconds": round(
                sum(per_workload[w][phase] for w in per_workload), 6
            ),
            "per_workload": {
                w: round(per_workload[w][phase], 6) for w in per_workload
            },
        }
        for phase in _PHASE_SPANS
    }
    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "repeats": repeats,
        "analysis_cache": analysis_cache,
        "workloads": [w.name for w in workloads],
        "phases": phases,
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


# ----------------------------------------------------------------------
# File I/O + schema validation (the ``repro stats`` contract)
# ----------------------------------------------------------------------
def write_bench_json(path: str, payload: dict) -> int:
    """Write a bench dump; returns the number of phase rows."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(payload.get("phases", {}))


def _check_phases(path: str, phases: object, where: str) -> None:
    if not isinstance(phases, dict) or not phases:
        raise BenchError(f"{path}: {where} is not a non-empty object")
    for phase, row in phases.items():
        if not isinstance(row, dict):
            raise BenchError(f"{path}: phase {phase!r} in {where} is not an object")
        if not isinstance(row.get("seconds"), (int, float)):
            raise BenchError(f"{path}: phase {phase!r} in {where} lacks numeric seconds")
        per = row.get("per_workload", {})
        if not isinstance(per, dict) or not all(
            isinstance(v, (int, float)) for v in per.values()
        ):
            raise BenchError(f"{path}: phase {phase!r} in {where} has a malformed per_workload map")


def load_bench_file(path: str) -> dict:
    """Read and schema-validate a ``BENCH_*.json``; returns the payload."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchError(f"{path}: unreadable bench dump ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        schema = payload.get("schema") if isinstance(payload, dict) else None
        raise BenchError(f"{path}: not a {BENCH_SCHEMA} dump (schema={schema!r})")
    if not isinstance(payload.get("label"), str):
        raise BenchError(f"{path}: missing string label")
    if not isinstance(payload.get("workloads"), list):
        raise BenchError(f"{path}: missing workloads list")
    _check_phases(path, payload.get("phases"), "phases")
    reference = payload.get("reference")
    if reference is not None:
        if not isinstance(reference, dict):
            raise BenchError(f"{path}: reference section is not an object")
        _check_phases(path, reference.get("phases"), "reference.phases")
    return payload


def validate_bench_file(path: str) -> int:
    """Schema-check a bench dump; returns its phase-row count."""
    return len(load_bench_file(path)["phases"])


def summarize_bench(payload: dict) -> str:
    """Human rendering of a bench payload (the ``repro stats`` view)."""
    lines = [
        f"label: {payload['label']}  workloads: {len(payload['workloads'])}"
        f"  repeats: {payload.get('repeats', '?')}"
    ]
    reference = (payload.get("reference") or {}).get("phases", {})
    for phase in sorted(payload["phases"]):
        seconds = payload["phases"][phase]["seconds"]
        line = f"  {phase:24s} {seconds:9.4f}s"
        ref = reference.get(phase, {}).get("seconds")
        if ref and seconds > 0:
            line += f"  ({ref / seconds:5.2f}x vs {payload.get('reference', {}).get('label', 'reference')})"
        lines.append(line)
    return "\n".join(lines)
