"""Baseline comparison: the ``--baseline`` / ``--max-regression`` gate.

A *regression* is a phase whose current wall-time exceeds the baseline's
by more than the threshold percentage.  Phases absent from either side
are skipped (new phases are not regressions), and phases faster than
``MIN_GATED_SECONDS`` in the baseline are ignored entirely — at
sub-millisecond scale the comparison would gate on scheduler noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

#: Baseline phases cheaper than this are never gated (pure noise).
MIN_GATED_SECONDS = 0.005


@dataclass
class BenchRegression:
    """One phase that slowed down past the allowed threshold."""

    phase: str
    baseline_seconds: float
    current_seconds: float

    @property
    def pct(self) -> float:
        return (self.current_seconds / self.baseline_seconds - 1.0) * 100.0

    def __str__(self) -> str:
        return (
            f"{self.phase}: {self.baseline_seconds:.4f}s -> "
            f"{self.current_seconds:.4f}s (+{self.pct:.1f}%)"
        )


def compare_bench(
    current: dict, baseline: dict, max_regression_pct: float
) -> List[BenchRegression]:
    """Phases of ``current`` slower than ``baseline`` past the threshold."""
    regressions: List[BenchRegression] = []
    base_phases = baseline.get("phases", {})
    for phase, row in sorted(current.get("phases", {}).items()):
        base_row = base_phases.get(phase)
        if base_row is None:
            continue
        base_s = base_row["seconds"]
        cur_s = row["seconds"]
        if base_s < MIN_GATED_SECONDS:
            continue
        if cur_s > base_s * (1.0 + max_regression_pct / 100.0):
            regressions.append(BenchRegression(phase, base_s, cur_s))
    return regressions


def format_comparison(current: dict, baseline: dict) -> str:
    """Side-by-side phase table: baseline vs current with speedup factors."""
    lines = [
        f"{'phase':24s} {'baseline':>10s} {'current':>10s} {'speedup':>8s}",
        f"{'-' * 24} {'-' * 10} {'-' * 10} {'-' * 8}",
    ]
    base_phases = baseline.get("phases", {})
    for phase in sorted(current.get("phases", {})):
        cur_s = current["phases"][phase]["seconds"]
        base_row = base_phases.get(phase)
        if base_row is None:
            lines.append(f"{phase:24s} {'-':>10s} {cur_s:9.4f}s {'-':>8s}")
            continue
        base_s = base_row["seconds"]
        speedup = f"{base_s / cur_s:7.2f}x" if cur_s > 0 else "-"
        lines.append(f"{phase:24s} {base_s:9.4f}s {cur_s:9.4f}s {speedup:>8s}")
    return "\n".join(lines)
