"""``BENCH_serve.json`` — the serving-throughput benchmark schema.

Where ``repro.bench/1`` dumps record *compiler phase* wall-times,
``repro.serve.bench/1`` dumps record what the ROADMAP's service metric
asks for: sustained requests/sec and p50/p99 front-end latency from one
seeded load-generator run, with provenance (package version, seed,
concurrency) and the admission-control outcome (rejections, retries,
check mismatches).  ``repro stats FILE`` validates and summarizes these
like every other observability artifact.
"""

from __future__ import annotations

import json
import platform
from typing import Dict

from repro.bench.runner import BenchError

#: Schema tag stamped into serve bench dumps (bump on layout change).
SERVE_BENCH_SCHEMA = "repro.serve.bench/1"

#: Required numeric fields of the ``latency_ms`` section.
_LATENCY_FIELDS = ("count", "mean", "p50", "p99", "max")

#: Required top-level integer counters.
_COUNTER_FIELDS = ("trials", "completed", "errors", "rejected", "retries",
                   "mismatches")


def serve_bench_payload(
    label: str,
    version: str,
    seed: int,
    concurrency: int,
    flavour: str,
    emit: str,
    counters: Dict[str, int],
    latency_ms: Dict[str, float],
    throughput_rps: float,
    elapsed_s: float,
    checked: bool,
    server_version: str,
) -> dict:
    """Assemble a schema-complete serve bench dump."""
    payload = {
        "schema": SERVE_BENCH_SCHEMA,
        "label": label,
        "version": version,
        "server_version": server_version,
        "seed": seed,
        "concurrency": concurrency,
        "flavour": flavour,
        "emit": emit,
        "checked": bool(checked),
        "throughput_rps": round(float(throughput_rps), 3),
        "elapsed_s": round(float(elapsed_s), 6),
        "latency_ms": {
            name: round(float(latency_ms[name]), 3)
            for name in _LATENCY_FIELDS
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    for name in _COUNTER_FIELDS:
        payload[name] = int(counters[name])
    return payload


def write_serve_bench_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_serve_bench_file(path: str) -> dict:
    """Read and schema-validate a serve bench dump; returns the payload."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchError(f"{path}: unreadable serve bench dump ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("schema") != SERVE_BENCH_SCHEMA:
        schema = payload.get("schema") if isinstance(payload, dict) else None
        raise BenchError(
            f"{path}: not a {SERVE_BENCH_SCHEMA} dump (schema={schema!r})"
        )
    for field in ("label", "version", "server_version"):
        if not isinstance(payload.get(field), str):
            raise BenchError(f"{path}: missing string {field!r}")
    for field in ("seed", "concurrency") + _COUNTER_FIELDS:
        if not isinstance(payload.get(field), int):
            raise BenchError(f"{path}: missing integer {field!r}")
    for field in ("throughput_rps", "elapsed_s"):
        if not isinstance(payload.get(field), (int, float)):
            raise BenchError(f"{path}: missing numeric {field!r}")
    latency = payload.get("latency_ms")
    if not isinstance(latency, dict):
        raise BenchError(f"{path}: missing latency_ms section")
    for field in _LATENCY_FIELDS:
        if not isinstance(latency.get(field), (int, float)):
            raise BenchError(f"{path}: latency_ms lacks numeric {field!r}")
    return payload


def validate_serve_bench_file(path: str) -> int:
    """Schema-check a serve bench dump; returns its completed count."""
    return int(load_serve_bench_file(path)["completed"])


def summarize_serve_bench(payload: dict) -> str:
    """Human rendering of a serve bench dump (``repro stats`` view)."""
    latency = payload["latency_ms"]
    lines = [
        f"label: {payload['label']}  version: {payload['version']}"
        f"  seed: {payload['seed']}  concurrency: {payload['concurrency']}",
        f"  requests   {payload['completed']}/{payload['trials']} ok, "
        f"{payload['errors']} errors, {payload['rejected']} rejected "
        f"({payload['retries']} retries), "
        f"{payload['mismatches']} check mismatches"
        + ("" if payload.get("checked") else " (check off)"),
        f"  throughput {payload['throughput_rps']:.1f} req/s over "
        f"{payload['elapsed_s']:.3f}s",
        f"  latency    p50 {latency['p50']:.2f} ms   "
        f"p99 {latency['p99']:.2f} ms   mean {latency['mean']:.2f} ms   "
        f"max {latency['max']:.2f} ms",
    ]
    return "\n".join(lines)
