"""``BENCH_campaign_cache.json`` — the incremental-campaign benchmark.

Where ``repro.bench/1`` dumps record compiler phase wall-times, this
schema records what the incremental fault harness
(:mod:`repro.harness.incremental`) is for: the wall-time of one campaign
run **cold** (empty outcome store, every section injected), **warm**
(identical code, every section composed from the store), and after a
**one-function edit** (only the edited function's sections re-inject).
A monolithic :func:`repro.sim.faults.fault_campaign` run of the same
budget is timed alongside as the baseline.

The benchmark is self-verifying: the cold and warm composed results must
be bit-identical to the monolithic campaign, the warm run must inject
zero trials, and every section re-injected after the edit must belong to
the edited function — violations raise :class:`BenchError` rather than
producing a dump that silently overstates the cache.

The two program variants are fixed MiniC sources whose helpers exceed
the cross-function inliner's 40-instruction threshold (so each helper
keeps its own regions) and whose edit — a changed multiplier constant —
preserves the dynamic shape: same instruction counts, same branch
decisions, different machine code for exactly one function.  That makes
the edit the clean demonstration case: unchanged functions' sections
stay fully cached because trial plans and landing regions are identical.
"""

from __future__ import annotations

import json
import platform
import shutil
import tempfile
import time
from dataclasses import asdict
from typing import Dict, List

from repro.bench.runner import BenchError

#: Schema tag stamped into campaign-cache bench dumps.
CAMPAIGN_CACHE_SCHEMA = "repro.campaign.cache/1"

#: The scenarios every dump records, in run order.
_SCENARIOS = ("monolithic", "cold", "warm", "edited")

#: Integer accounting fields of each incremental scenario.
_SECTION_FIELDS = ("sections_total", "sections_reinjected",
                   "trials_injected", "trials_from_store")

#: The function the edited variant changes (everything else is identical).
EDITED_FUNCTION = "mix_b"

#: Stable name scoping the bench's outcome-store keys.  Deliberately the
#: same for the base and edited variants — code identity lives in the
#: per-function fingerprints, which is what makes the edit scenario
#: exercise selective staleness.
_BENCH_NAME = "bench-campaign-cache"

_COMMON_HEADER = """\
// campaign-cache bench: two heavy helpers plus a driver loop.  Each
// helper exceeds the inliner's 40-instruction threshold so it keeps its
// own idempotent regions (and therefore its own outcome-store sections).
int acc[16];

int mix_a(int s) {
  int i;
  int v = s;
  for (i = 0; i < 12; i = i + 1) {
    v = (v * 1103515245 + 12345) % 2147483648;
    v = v + (v >> 3) * 7 - (v >> 5) * 3;
    v = v ^ (v >> 7);
    v = v + i * 11;
    v = v % 65536;
    acc[i % 16] = acc[i % 16] + v % 97;
  }
  return v;
}
"""

_MIX_B = """\

int mix_b(int s) {
  int i;
  int v = s + 17;
  for (i = 0; i < 12; i = i + 1) {
    v = (v * 69069 + 1) % 2147483648;
    v = v + (v >> 2) * 5 - (v >> 6) * 9;
    v = v ^ (v >> 9);
    v = v + i * %MULT%;
    v = v % 65536;
    acc[(i + 8) % 16] = acc[(i + 8) % 16] + v % 89;
  }
  return v;
}
"""

_MAIN = """\

int main() {
  int round;
  int total = 0;
  for (round = 0; round < 6; round = round + 1) {
    total = total + mix_a(round * 3 + 1);
    total = total + mix_b(round * 5 + 2);
  }
  print_int(total);
  return total;
}
"""

#: Base program and its one-function edit (mix_b's multiplier changes;
#: instruction counts and branch decisions are identical).
BASE_SOURCE = _COMMON_HEADER + _MIX_B.replace("%MULT%", "13") + _MAIN
EDITED_SOURCE = _COMMON_HEADER + _MIX_B.replace("%MULT%", "29") + _MAIN


def _compile_pair(source: str):
    from repro.compiler import compile_minic

    original = compile_minic(source, idempotent=False)
    idempotent = compile_minic(source, idempotent=True)
    return original, idempotent


def _reference(idempotent_program):
    from repro.sim.simulator import Simulator

    sim = Simulator(idempotent_program)
    result = sim.run("main")
    return result, list(sim.output)


def run_campaign_cache_bench(
    trials: int = 48,
    seed: int = 20126,
    kind: str = "value",
    latency: int = 0,
    label: str = "campaign-cache",
) -> dict:
    """Time monolithic vs cold/warm/edited incremental campaigns.

    Uses a private temporary outcome store, so the run is hermetic: the
    machine's ``.repro-cache`` is neither read nor written.
    """
    from repro import repro_version
    from repro.harness.incremental import (
        OutcomeStore,
        function_fingerprint,
        incremental_campaign,
        region_owner,
        trace_eligibility,
    )
    from repro.sim.faults import fault_campaign

    base_orig, base_idem = _compile_pair(BASE_SOURCE)
    edit_orig, edit_idem = _compile_pair(EDITED_SOURCE)
    for program in (base_idem.program, edit_idem.program):
        for name in ("mix_a", EDITED_FUNCTION, "main"):
            if name not in program.functions:
                raise BenchError(
                    f"bench program lost function {name!r} "
                    f"(inlined? raise its instruction count)"
                )
    for name in ("mix_a", "main"):
        if (function_fingerprint(base_idem.program, name)
                != function_fingerprint(edit_idem.program, name)):
            raise BenchError(
                f"edit leaked into {name!r}: the edited variant must "
                f"change only {EDITED_FUNCTION!r}"
            )
    if (function_fingerprint(base_idem.program, EDITED_FUNCTION)
            == function_fingerprint(edit_idem.program, EDITED_FUNCTION)):
        raise BenchError(f"edit did not change {EDITED_FUNCTION!r}")
    base_trace = trace_eligibility(base_idem.program)
    edit_trace = trace_eligibility(edit_idem.program)
    if (base_trace.span != edit_trace.span
            or base_trace.value_events != edit_trace.value_events):
        raise BenchError(
            "edit is not shape-preserving: trial plans differ between "
            "variants, so the edited scenario would top-up unchanged "
            "sections"
        )

    base_ref, base_out = _reference(base_idem.program)
    edit_ref, edit_out = _reference(edit_idem.program)

    scenarios: Dict[str, dict] = {}
    start = time.perf_counter()
    mono = fault_campaign(
        base_idem.program, base_ref, base_out, trials=trials,
        kind=kind, seed=seed, detection_latency=latency,
    )
    scenarios["monolithic"] = {
        "seconds": round(time.perf_counter() - start, 6),
    }

    store_dir = tempfile.mkdtemp(prefix="repro-campaign-cache-")
    try:
        store = OutcomeStore(root=store_dir)

        def _scenario(name, idem, orig, ref, out):
            start = time.perf_counter()
            run = incremental_campaign(
                orig.program, idem.program, ref, out, trials=trials,
                kind=kind, seed=seed, detection_latency=latency,
                flavour="idempotent", name=_BENCH_NAME, store=store,
            )
            seconds = time.perf_counter() - start
            scenarios[name] = {
                "seconds": round(seconds, 6),
                "sections_total": len(run.sections),
                "sections_reinjected": run.sections_reinjected,
                "trials_injected": run.trials_injected,
                "trials_from_store": run.trials_from_store,
            }
            return run

        cold = _scenario("cold", base_idem, base_orig, base_ref, base_out)
        if asdict(cold.result) != asdict(mono):
            raise BenchError(
                f"cold composed result diverged from the monolithic "
                f"campaign: {asdict(cold.result)} != {asdict(mono)}"
            )
        warm = _scenario("warm", base_idem, base_orig, base_ref, base_out)
        if warm.trials_injected or warm.sections_reinjected:
            raise BenchError(
                f"warm re-run injected {warm.trials_injected} trials over "
                f"{warm.sections_reinjected} sections (expected 0)"
            )
        if asdict(warm.result) != asdict(cold.result):
            raise BenchError("warm composed result diverged from cold")

        edited = _scenario("edited", edit_idem, edit_orig, edit_ref, edit_out)
        edited_regions: List[str] = []
        for status in edited.sections:
            if status.status == "cached":
                continue
            owner = region_owner(status.region, "main")
            if owner != EDITED_FUNCTION:
                raise BenchError(
                    f"edited scenario re-injected section {status.region!r} "
                    f"owned by unchanged function {owner!r} "
                    f"({status.reason})"
                )
            edited_regions.append(status.region)
        if not edited_regions:
            raise BenchError(
                f"edited scenario re-injected nothing: no faults landed "
                f"in {EDITED_FUNCTION!r} (raise trials)"
            )
        edit_mono = fault_campaign(
            edit_idem.program, edit_ref, edit_out, trials=trials,
            kind=kind, seed=seed, detection_latency=latency,
        )
        edited_bit_identical = asdict(edited.result) == asdict(edit_mono)
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    cold_s = scenarios["cold"]["seconds"]
    warm_s = scenarios["warm"]["seconds"]
    return {
        "schema": CAMPAIGN_CACHE_SCHEMA,
        "label": label,
        "version": repro_version(),
        "trials": trials,
        "seed": seed,
        "kind": kind,
        "latency": latency,
        "edited_function": EDITED_FUNCTION,
        "edited_regions": sorted(edited_regions),
        "bit_identical": {
            "cold": True,   # hard-asserted above
            "warm": True,   # hard-asserted above
            "edited": bool(edited_bit_identical),
        },
        "warm_speedup": round(cold_s / warm_s, 3) if warm_s > 0 else None,
        "scenarios": scenarios,
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }


def write_campaign_cache_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_campaign_cache_file(path: str) -> dict:
    """Read and schema-validate a campaign-cache dump; returns it."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchError(
            f"{path}: unreadable campaign-cache bench dump ({exc})"
        ) from exc
    if (not isinstance(payload, dict)
            or payload.get("schema") != CAMPAIGN_CACHE_SCHEMA):
        schema = payload.get("schema") if isinstance(payload, dict) else None
        raise BenchError(
            f"{path}: not a {CAMPAIGN_CACHE_SCHEMA} dump (schema={schema!r})"
        )
    for field in ("label", "version", "kind", "edited_function"):
        if not isinstance(payload.get(field), str):
            raise BenchError(f"{path}: missing string {field!r}")
    for field in ("trials", "seed", "latency"):
        if not isinstance(payload.get(field), int):
            raise BenchError(f"{path}: missing integer {field!r}")
    bits = payload.get("bit_identical")
    if not isinstance(bits, dict) or not all(
        isinstance(bits.get(name), bool) for name in ("cold", "warm", "edited")
    ):
        raise BenchError(f"{path}: missing bit_identical booleans")
    scenarios = payload.get("scenarios")
    if not isinstance(scenarios, dict):
        raise BenchError(f"{path}: missing scenarios section")
    for name in _SCENARIOS:
        scenario = scenarios.get(name)
        if not isinstance(scenario, dict):
            raise BenchError(f"{path}: missing scenario {name!r}")
        if not isinstance(scenario.get("seconds"), (int, float)):
            raise BenchError(f"{path}: scenario {name!r} lacks seconds")
        if name == "monolithic":
            continue
        for field in _SECTION_FIELDS:
            if not isinstance(scenario.get(field), int):
                raise BenchError(
                    f"{path}: scenario {name!r} lacks integer {field!r}"
                )
    if not isinstance(payload.get("edited_regions"), list):
        raise BenchError(f"{path}: missing edited_regions list")
    return payload


def validate_campaign_cache_file(path: str) -> int:
    """Schema-check a campaign-cache dump; returns its scenario count."""
    return len(load_campaign_cache_file(path)["scenarios"])


def summarize_campaign_cache(payload: dict) -> str:
    """Human rendering of a campaign-cache dump (``repro stats`` view)."""
    scenarios = payload["scenarios"]
    bits = payload["bit_identical"]
    lines = [
        f"label: {payload['label']}  version: {payload['version']}  "
        f"trials: {payload['trials']}  seed: {payload['seed']}  "
        f"kind: {payload['kind']}  latency: {payload['latency']}",
        f"  {'scenario':12s} {'seconds':>9s} {'sections':>9s} "
        f"{'re-inj':>7s} {'injected':>9s} {'cached':>7s}",
    ]
    for name in _SCENARIOS:
        scenario = scenarios[name]
        if name == "monolithic":
            lines.append(
                f"  {name:12s} {scenario['seconds']:9.3f} "
                f"{'-':>9s} {'-':>7s} {'-':>9s} {'-':>7s}"
            )
            continue
        lines.append(
            f"  {name:12s} {scenario['seconds']:9.3f} "
            f"{scenario['sections_total']:9d} "
            f"{scenario['sections_reinjected']:7d} "
            f"{scenario['trials_injected']:9d} "
            f"{scenario['trials_from_store']:7d}"
        )
    speedup = payload.get("warm_speedup")
    lines.append(
        f"  warm speedup {speedup:.1f}x over cold"
        if isinstance(speedup, (int, float)) else "  warm speedup n/a"
    )
    lines.append(
        f"  bit-identical: cold={bits['cold']} warm={bits['warm']} "
        f"edited={bits['edited']} "
        f"(edit re-injected {len(payload['edited_regions'])} sections of "
        f"{payload['edited_function']})"
    )
    return "\n".join(lines)
