"""Deterministic synthetic traffic for the compile service.

The load generator replays :mod:`repro.fuzz` generator programs as
compile requests.  The **request stream is a pure function of the
campaign seed**: program ``i`` is ``generate(trial_seed(seed, i))`` —
the same spawn-key derivation fuzz campaigns use — and the arrival
schedule (per-request pacing gaps) derives from ``derive_seed(seed,
"serve.gap", i)``.  No wall-clock material enters any request, so two
runs with one seed send byte-identical request lines in the same
per-connection order; only the measured latencies differ.

Closed-loop execution: ``concurrency`` worker threads each own one
connection and pull the next request index from a shared cursor.  A
``rejected`` response (admission control) is retried after the server's
``retry_after`` hint, up to ``max_attempts`` per request — rejections
and retries are counted, not fatal, so an overload run still completes
every request eventually while the bench dump records the back-pressure.

``check=True`` holds every response to the one-shot oracle: the payload
text must be **byte-identical** to compiling the same source in-process
(the exact text ``repro compile`` prints).  Mismatches fail the run.

Results land in a ``BENCH_serve.json`` (schema
:data:`repro.bench.serve.SERVE_BENCH_SCHEMA`): sustained req/s, p50/p99
latency, rejection/retry counters, and version provenance — validated
by ``repro stats`` like every other artifact.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import repro_version
from repro.bench.serve import serve_bench_payload
from repro.compiler import compile_minic, format_asm_listing
from repro.fuzz.generator import generate, trial_seed
from repro.harness.executor import derive_seed
from repro.serve.client import ServeClient
from repro.serve.protocol import ProtocolError


@dataclass
class LoadConfig:
    """One load-generator run (see ``docs/serving.md``)."""

    trials: int = 20            # requests in the stream
    seed: int = 0               # stream seed (programs + schedule)
    concurrency: int = 2        # connections / worker threads
    flavour: str = "idempotent"
    emit: str = "asm"
    check: bool = False         # byte-compare against one-shot compiles
    rps: Optional[float] = None  # target arrival rate (None = no pacing)
    max_attempts: int = 200     # sends per request (rejections retry)
    label: str = "loadgen"


@dataclass
class LoadReport:
    """Everything one run measured (feeds the serve bench payload)."""

    config: LoadConfig
    server_version: str = "?"
    completed: int = 0
    errors: int = 0
    rejected: int = 0           # rejection responses received
    retries: int = 0            # re-sends after a rejection
    mismatches: int = 0         # --check byte differences
    latencies_ms: List[float] = field(default_factory=list)
    elapsed_s: float = 0.0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.errors == 0
            and self.mismatches == 0
            and self.completed == self.config.trials
        )

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    def latency_stats_ms(self) -> Dict[str, float]:
        if not self.latencies_ms:
            return {name: 0.0 for name in ("count", "mean", "p50", "p99", "max")}
        ordered = sorted(self.latencies_ms)
        return {
            "count": float(len(ordered)),
            "mean": sum(ordered) / len(ordered),
            "p50": percentile(ordered, 50.0),
            "p99": percentile(ordered, 99.0),
            "max": ordered[-1],
        }

    def bench_payload(self) -> dict:
        cfg = self.config
        return serve_bench_payload(
            label=cfg.label,
            version=repro_version(),
            server_version=self.server_version,
            seed=cfg.seed,
            concurrency=cfg.concurrency,
            flavour=cfg.flavour,
            emit=cfg.emit,
            checked=cfg.check,
            counters={
                "trials": cfg.trials,
                "completed": self.completed,
                "errors": self.errors,
                "rejected": self.rejected,
                "retries": self.retries,
                "mismatches": self.mismatches,
            },
            latency_ms=self.latency_stats_ms(),
            throughput_rps=self.throughput_rps,
            elapsed_s=self.elapsed_s,
        )


def percentile(ordered: List[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


# ----------------------------------------------------------------------
# The deterministic request stream
# ----------------------------------------------------------------------
def stream_source(seed: int, index: int) -> str:
    """Request ``index``'s MiniC source (pure function of the seed)."""
    return generate(trial_seed(seed, index)).source


def stream_gap_s(seed: int, index: int, rps: Optional[float]) -> float:
    """Request ``index``'s pacing gap: deterministic, mean ``1/rps``."""
    if not rps or rps <= 0:
        return 0.0
    # Uniform in [0, 2/rps) from the spawn-key stream: mean 1/rps.
    unit = (derive_seed(seed, "serve.gap", index) % 1_000_000) / 1_000_000
    return unit * 2.0 / rps


def expected_compile_text(source: str, flavour: str, emit: str) -> str:
    """The one-shot oracle: what ``repro compile`` prints for this work."""
    if emit == "ir":
        from repro.serve.work import format_ir_oneshot
        from repro.core.construction import ConstructionConfig

        return format_ir_oneshot(source, flavour, ConstructionConfig())
    result = compile_minic(source, idempotent=flavour == "idempotent")
    return format_asm_listing(result)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class _Cursor:
    """Thread-safe request-index dispenser."""

    def __init__(self, total: int) -> None:
        self._next = 0
        self._total = total
        self._lock = threading.Lock()

    def take(self) -> Optional[int]:
        with self._lock:
            if self._next >= self._total:
                return None
            index = self._next
            self._next += 1
            return index


def run_loadgen(host: str, port: int, config: LoadConfig) -> LoadReport:
    """Drive one seeded load run against a server; returns the report."""
    report = LoadReport(config=config)
    sources = [stream_source(config.seed, i) for i in range(config.trials)]
    expected: Dict[str, str] = {}
    if config.check:
        for source in sources:
            if source not in expected:
                expected[source] = expected_compile_text(
                    source, config.flavour, config.emit
                )
    cursor = _Cursor(config.trials)
    lock = threading.Lock()

    def worker() -> None:
        try:
            client = ServeClient(host, port)
        except (OSError, ProtocolError) as exc:
            with lock:
                report.failures.append(f"connect: {exc}")
                report.errors += 1
            return
        with lock:
            report.server_version = client.server_version
        try:
            while True:
                index = cursor.take()
                if index is None:
                    return
                _drive_one(client, index, sources[index], expected,
                           config, report, lock)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, config.concurrency))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = time.perf_counter() - started
    return report


def _drive_one(
    client: ServeClient,
    index: int,
    source: str,
    expected: Dict[str, str],
    config: LoadConfig,
    report: LoadReport,
    lock: threading.Lock,
) -> None:
    gap = stream_gap_s(config.seed, index, config.rps)
    if gap:
        time.sleep(gap)
    rid = f"lg-{config.seed}-{index}"
    attempts = 0
    started = time.perf_counter()
    while True:
        attempts += 1
        try:
            response = client.compile(
                source, flavour=config.flavour, emit=config.emit, rid=rid
            )
        except (OSError, ProtocolError) as exc:
            with lock:
                report.errors += 1
                report.failures.append(f"{rid}: transport: {exc}")
            return
        status = response.get("status")
        if status == "rejected":
            with lock:
                report.rejected += 1
            if attempts >= config.max_attempts:
                with lock:
                    report.errors += 1
                    report.failures.append(
                        f"{rid}: still rejected after {attempts} attempts"
                    )
                return
            with lock:
                report.retries += 1
            time.sleep(float(response.get("retry_after") or 0.01))
            continue
        latency_ms = (time.perf_counter() - started) * 1e3
        if status != "ok":
            with lock:
                report.errors += 1
                report.failures.append(
                    f"{rid}: {status}: {response.get('error')}"
                )
            return
        payload = response.get("payload") or {}
        with lock:
            report.completed += 1
            report.latencies_ms.append(latency_ms)
            if config.check:
                want = expected[source]
                if payload.get("text") != want:
                    report.mismatches += 1
                    report.failures.append(
                        f"{rid}: response differs from one-shot compile "
                        f"({len(str(payload.get('text')))} vs "
                        f"{len(want)} bytes)"
                    )
        return


def format_load_report(report: LoadReport) -> str:
    """Human summary printed by ``repro loadgen`` / ``repro serve --load``."""
    from repro.bench.serve import summarize_serve_bench

    lines = [summarize_serve_bench(report.bench_payload())]
    for failure in report.failures[:10]:
        lines.append(f"  FAIL {failure}")
    if len(report.failures) > 10:
        lines.append(f"  ... {len(report.failures) - 10} more failures")
    return "\n".join(lines)
