"""Admission control + batching scheduler for the compile service.

The scheduler owns the bounded request queue and the shared
:class:`~repro.harness.executor.TaskExecutor`.  Life of a request:

1. **Admission** — :meth:`BatchScheduler.submit` accepts the request
   only while the queue has depth and byte headroom; otherwise it raises
   :class:`AdmissionError` carrying a ``retry_after`` hint, which the
   front-end turns into a ``status="rejected"`` response.  This is the
   back-pressure surface: an overloaded server answers cheaply and
   immediately instead of buffering without bound.
2. **Batching** — a scheduler task collects queued requests for up to
   ``batch_window_s`` (or until ``batch_max`` are waiting), *coalesces*
   duplicates (identical :func:`~repro.serve.protocol.work_key` — same
   op, source, flavour, config — execute once and fan out to every
   waiting request), and dispatches the unique units onto the executor.
3. **Execution** — units run ``fn(item)`` on the persistent worker pool
   (``TaskExecutor(persistent=True)``: the pool is *not* re-spawned per
   batch), through the shared on-disk build cache, with the executor's
   retry/timeout resilience semantics intact.

One batch executes at a time; admission keeps running while a batch is
on the pool because execution happens in a helper thread
(``run_in_executor``) off the event loop.

Metrics (all on the global :mod:`repro.obs` registry):
``serve.batches``, ``serve.batch_size``, ``serve.coalesced``,
``serve.queue_depth`` / ``serve.inflight_bytes`` gauges, and the
executor's own ``harness.*`` counters.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.harness.executor import TaskExecutor
from repro.harness.resilience import RetryPolicy
from repro.obs.context import get_observer
from repro.serve.protocol import work_key
from repro.serve.work import execute_unit


@dataclass
class ServeConfig:
    """Every knob of the serve subsystem (see ``docs/serving.md``)."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral, report actual
    jobs: int = 1                      # executor pool width (1 = inline)
    queue_depth: int = 64              # max queued work requests
    max_inflight_bytes: int = 8 * 1024 * 1024  # queued+executing source
    batch_window_s: float = 0.005      # coalescing window per batch
    batch_max: int = 16                # max requests per batch
    retry_after_s: float = 0.05        # hint sent with rejections
    retries: Optional[int] = None      # executor retry budget (infra)
    unit_timeout: Optional[float] = None  # per-unit wall-clock bound
    label_request_ids: bool = True     # rid labels on serve.requests


class AdmissionError(Exception):
    """Request refused at the door; retry after ``retry_after`` seconds."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


class _Pending:
    __slots__ = ("request", "future", "nbytes", "key")

    def __init__(self, request: Dict[str, object], future, nbytes: int):
        self.request = request
        self.future = future
        self.nbytes = nbytes
        self.key = work_key(request)


class BatchScheduler:
    """Bounded queue + coalescing batch dispatcher over one executor."""

    def __init__(
        self, config: ServeConfig, executor: Optional[TaskExecutor] = None
    ) -> None:
        self.config = config
        retry = None
        if config.retries is not None:
            retry = RetryPolicy(max_attempts=max(1, config.retries + 1))
        self.executor = executor or TaskExecutor(
            jobs=config.jobs,
            retry=retry,
            unit_timeout=config.unit_timeout,
            persistent=True,
        )
        self.draining = False
        self._pending: Deque[_Pending] = deque()
        self._executing = 0          # requests inside the running batch
        self._inflight_bytes = 0     # source bytes queued + executing
        self._task: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._resume: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle (event-loop side)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._resume = asyncio.Event()
        self._resume.set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._task = asyncio.create_task(self._run())

    async def drain(self) -> None:
        """Stop admitting, finish queued + in-flight work, then return."""
        self.draining = True
        if self._idle is not None:
            await self._idle.wait()

    async def stop(self) -> None:
        """Drain, stop the dispatcher, and shut the worker pool down."""
        await self.drain()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        await asyncio.get_running_loop().run_in_executor(
            None, self.executor.close
        )

    # Test hooks: freeze/thaw dispatch so admission-control behaviour can
    # be exercised deterministically (fill the queue while held).
    def hold(self) -> None:
        self._resume.clear()

    def release(self) -> None:
        self._resume.set()

    # ------------------------------------------------------------------
    # Admission (event-loop side)
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    @property
    def inflight_bytes(self) -> int:
        return self._inflight_bytes

    def submit(self, request: Dict[str, object]) -> "asyncio.Future":
        """Admit one normalized work request; returns its result future.

        Raises :class:`AdmissionError` when draining, when the queue is
        at ``queue_depth``, or when admitting the request would push
        queued+executing source bytes past ``max_inflight_bytes``.
        """
        config = self.config
        nbytes = len(str(request.get("source", "")).encode("utf-8"))
        if self.draining:
            self._reject_metric("draining")
            raise AdmissionError("draining", config.retry_after_s)
        if len(self._pending) >= config.queue_depth:
            self._reject_metric("queue-full")
            raise AdmissionError(
                f"queue full ({config.queue_depth} deep)",
                config.retry_after_s,
            )
        if self._inflight_bytes + nbytes > config.max_inflight_bytes:
            self._reject_metric("bytes")
            raise AdmissionError(
                f"in-flight byte budget exceeded "
                f"({config.max_inflight_bytes} bytes)",
                config.retry_after_s,
            )
        future = asyncio.get_running_loop().create_future()
        self._pending.append(_Pending(request, future, nbytes))
        self._inflight_bytes += nbytes
        self._idle.clear()
        self._wake.set()
        self._publish_gauges()
        return future

    def _reject_metric(self, reason: str) -> None:
        get_observer().counter(
            "serve.rejected",
            "requests refused by admission control",
        ).inc(reason=reason)

    def _publish_gauges(self) -> None:
        observer = get_observer()
        observer.gauge("serve.queue_depth").set(len(self._pending))
        observer.gauge("serve.inflight_bytes").set(self._inflight_bytes)

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        config = self.config
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._executing == 0:
                    self._idle.set()
                self._wake.clear()
                await self._wake.wait()
            await self._resume.wait()
            if (
                config.batch_window_s > 0
                and len(self._pending) < config.batch_max
            ):
                await asyncio.sleep(config.batch_window_s)
                await self._resume.wait()
            if not self._pending:
                continue

            batch: List[_Pending] = []
            while self._pending and len(batch) < config.batch_max:
                batch.append(self._pending.popleft())
            groups: Dict[str, List[_Pending]] = {}
            for pending in batch:
                groups.setdefault(pending.key, []).append(pending)
            unique = [waiters[0].request for waiters in groups.values()]

            self._executing += len(batch)
            self._publish_gauges()
            observer = get_observer()
            observer.counter("serve.batches").inc()
            observer.histogram("serve.batch_size").observe(len(batch))
            coalesced = len(batch) - len(unique)
            if coalesced:
                observer.counter(
                    "serve.coalesced",
                    "requests satisfied by another request's execution",
                ).inc(coalesced)

            try:
                outcomes = await loop.run_in_executor(
                    None, self._execute_batch, unique
                )
            except Exception as exc:  # defensive: executor never raises
                outcomes = {
                    key: ("error", f"{type(exc).__name__}: {exc}")
                    for key in groups
                }
            for key, waiters in groups.items():
                outcome = outcomes.get(
                    key, ("error", "unit produced no result")
                )
                for pending in waiters:
                    if not pending.future.done():
                        pending.future.set_result(outcome)
                    self._inflight_bytes -= pending.nbytes
            self._executing -= len(batch)
            if not self._pending and self._executing == 0:
                self._idle.set()
            self._publish_gauges()

    def _execute_batch(
        self, unique: List[Dict[str, object]]
    ) -> Dict[str, Tuple[str, object]]:
        """Helper-thread side: run unique units on the shared pool."""
        keys = [work_key(item) for item in unique]
        outcomes: Dict[str, Tuple[str, object]] = {}
        for result in self.executor.imap(execute_unit, unique, keys=keys):
            if result.ok:
                outcomes[result.key] = ("ok", result.value)
            else:
                outcomes[result.key] = ("error", result.error)
        return outcomes
