"""Server-side work-unit execution (pure, picklable, cache-backed).

:func:`execute_unit` is the module-level function the batching scheduler
maps over the shared :class:`~repro.harness.executor.TaskExecutor`.  It
must stay a pure function of its item dict — process pools pickle it by
qualified name, and the response payload for a given request must be
byte-identical to a one-shot CLI invocation of the same work (the
loadgen ``--check`` contract).

Shared state, by scope:

- **across processes and runs** — every build goes through
  :func:`repro.harness.cache.cached_compile`, so all workers (and the
  inline ``jobs=1`` path) share one content-addressed ``.repro-cache/``
  build cache on disk;
- **across requests within a worker process** — one long-lived
  :class:`~repro.analysis.manager.AnalysisManager` is shared by every
  construction phase of every build the worker executes (bounded by
  :data:`MANAGER_RETAIN_LIMIT` functions, then reset), and the worker
  process itself stays warm because the serve executor runs with
  ``persistent=True``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.manager import AnalysisManager
from repro.compiler import CompileResult, format_asm_listing
from repro.core.construction import ConstructionConfig
from repro.harness.cache import cache_key, cached_compile
from repro.ir import format_module
from repro.serve.protocol import config_from_wire

#: Functions retained by the shared per-process AnalysisManager before
#: it is reset (identity-keyed — old modules must not pin memory).
MANAGER_RETAIN_LIMIT = 512

_shared_manager: Optional[AnalysisManager] = None


def shared_manager() -> AnalysisManager:
    """This process's serve-scoped AnalysisManager (bounded retention)."""
    global _shared_manager
    if _shared_manager is None:
        _shared_manager = AnalysisManager()
    elif _shared_manager.retained() > MANAGER_RETAIN_LIMIT:
        _shared_manager.invalidate_all()
    return _shared_manager


def _build(
    source: str, flavour: str, config: ConstructionConfig
) -> CompileResult:
    idempotent = flavour == "idempotent"
    return cached_compile(
        source,
        idempotent=idempotent,
        config=config if idempotent else None,
        manager=shared_manager(),
    )


def execute_unit(item: Dict[str, object]) -> Dict[str, object]:
    """Execute one normalized work request; returns the response payload.

    Payloads are deterministic: no wall-clock, no process-specific
    material — the same request always yields the same payload bytes.
    """
    op = item["op"]
    config = config_from_wire(item.get("config"))
    source = item["source"]
    flavour = item["flavour"]

    if op == "compile":
        if item.get("emit") == "ir":
            return {"emit": "ir", "text": format_ir_oneshot(source, flavour, config)}
        result = _build(source, flavour, config)
        return {"emit": "asm", "text": format_asm_listing(result)}

    if op == "run":
        from repro.sim import Simulator

        result = _build(source, flavour, config)
        sim = Simulator(result.program)
        value = sim.run(item["entry"])
        return {
            "result": value,
            "output": list(sim.output),
            "instructions": sim.instructions,
            "cycles": sim.cycles,
            "boundaries": sim.boundaries_crossed,
        }

    if op == "faults":
        from repro.harness.incremental import (
            incremental_campaign,
            program_fingerprint,
        )
        from repro.sim import Simulator

        entry = item["entry"]
        scheme = item.get("scheme", "idempotent")
        idem = _build(source, "idempotent", config)
        orig = _build(source, "original", config)
        reference_sim = Simulator(idem.program)
        reference = reference_sim.run(entry)
        reference_output = list(reference_sim.output)
        # Campaigns run through the incremental harness: a repeated
        # faults request composes its per-region sections from the
        # content-addressed outcome store instead of re-injecting
        # (hit/miss counters land on the shared metrics registry as
        # ``campaign.store.*`` / ``campaign.trials``).  The store
        # namespace is scoped by the *whole program's* fingerprint so
        # two different sources can never share sections — the payload
        # stays byte-identical to a monolithic campaign of the same
        # request, warm or cold.
        namespace = (
            f"serve:{program_fingerprint(idem.program)[:16]}"
            f":{program_fingerprint(orig.program)[:16]}"
        )

        def _buckets(campaign) -> Dict[str, int]:
            return {
                "injected": campaign.injected,
                "recovered": campaign.recovered_correctly,
                "wrong": campaign.wrong_result,
                "crashed": campaign.crashed,
                "undetected": campaign.undetected,
            }

        campaigns = {}
        if scheme == "idempotent":
            # Legacy shape: the idempotence scheme campaigns both
            # flavours so clients can see the recovery delta.
            for label in ("idempotent", "original"):
                campaign = incremental_campaign(
                    orig.program, idem.program, reference, reference_output,
                    trials=item["trials"], func=entry, kind=item["kind"],
                    seed=item["seed"], flavour=label, name=namespace,
                ).result
                campaigns[label] = _buckets(campaign)
        else:
            from repro.recovery.backends import get_backend

            backend = get_backend(scheme)
            campaign = incremental_campaign(
                orig.program, idem.program, reference, reference_output,
                trials=item["trials"], func=entry, kind=item["kind"],
                seed=item["seed"], backend=backend, name=namespace,
            ).result
            campaigns[scheme] = _buckets(campaign)
        return {"reference": reference, "scheme": scheme,
                "campaigns": campaigns}

    raise ValueError(f"not a work op: {op!r}")  # guarded by the protocol


def format_ir_oneshot(
    source: str, flavour: str, config: ConstructionConfig
) -> str:
    """Region-marked (or optimized-original) IR, exactly as ``repro
    compile --emit ir`` prints it.

    The CLI's IR path stops before codegen, so this recompiles from
    source rather than reusing a cached machine-code build; the module
    text is byte-stable (PR 4), so server and CLI agree bit for bit.
    """
    from repro.core import construct_module_regions
    from repro.frontend import compile_source
    from repro.transforms import optimize_module

    module = compile_source(source)
    if flavour == "original":
        optimize_module(module)
    else:
        construct_module_regions(module, config, manager=shared_manager())
    return format_module(module) + "\n"


def unit_cache_key(item: Dict[str, object]) -> str:
    """The build-cache key a work item's compile resolves to (for
    observability/tests; mirrors :func:`_build`)."""
    idempotent = item["flavour"] == "idempotent"
    config = config_from_wire(item.get("config")) if idempotent else None
    return cache_key(item["source"], idempotent=idempotent, config=config)
