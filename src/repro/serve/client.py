"""Blocking NDJSON client for the ``repro serve`` protocol.

One :class:`ServeClient` wraps one TCP connection: the constructor
performs the handshake (reads the server's hello, checks protocol and
records the server version), then :meth:`request` sends one line and
reads one response line.  Responses arrive in request order per
connection; concurrency comes from opening more connections (the load
generator runs one client per worker thread).

``request`` raises only on transport/protocol failures.  Application
outcomes — ``status`` of ``ok`` / ``error`` / ``rejected`` — are
returned as data so callers (the loadgen's rejected-retry loop) can
react without exception control flow.
"""

from __future__ import annotations

import socket
from typing import Dict, Optional

from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    check_hello,
    config_to_wire,
    decode_line,
    encode_line,
)


class ServeClient:
    """One connection to a serve front-end (context-manager friendly)."""

    def __init__(
        self, host: str, port: int, timeout: Optional[float] = 120.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._counter = 0
        self.hello = check_hello(decode_line(self._read_line()))
        #: Server version from the handshake (stamped into bench dumps).
        self.server_version: str = self.hello["version"]

    # ------------------------------------------------------------------
    def _read_line(self) -> bytes:
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ProtocolError("server closed the connection")
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("response line exceeds the protocol limit")
        return line

    def _next_rid(self) -> str:
        self._counter += 1
        return f"c{self._counter}"

    def request(self, op: str, rid: Optional[str] = None,
                **fields: object) -> Dict[str, object]:
        """Send one request; returns the decoded response object."""
        message: Dict[str, object] = {
            "id": rid or self._next_rid(), "op": op
        }
        message.update(fields)
        self._sock.sendall(encode_line(message))
        response = decode_line(self._read_line())
        if response.get("id") not in (message["id"], None):
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {message['id']!r}"
            )
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def compile(self, source: str, flavour: str = "idempotent",
                emit: str = "asm", config=None,
                rid: Optional[str] = None) -> Dict[str, object]:
        return self.request(
            "compile", rid=rid, source=source, flavour=flavour,
            emit=emit, config=config_to_wire(config),
        )

    def run(self, source: str, entry: str = "main",
            flavour: str = "idempotent", config=None,
            rid: Optional[str] = None) -> Dict[str, object]:
        return self.request(
            "run", rid=rid, source=source, entry=entry, flavour=flavour,
            config=config_to_wire(config),
        )

    def metrics(self) -> Dict[str, object]:
        """The server's metrics snapshot (schema-tagged, ``repro
        stats``-compatible when written to a file)."""
        response = self.request("metrics")
        if response.get("status") != "ok":
            raise ProtocolError(f"metrics request failed: {response}")
        return response["payload"]

    def shutdown(self) -> Dict[str, object]:
        """Ask the server to drain and exit; the connection closes."""
        return self.request("shutdown")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
