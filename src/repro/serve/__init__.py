"""repro.serve — the async compile/campaign service.

``repro serve`` turns the one-shot CLI pipeline into a long-lived
front-end: an asyncio NDJSON server (stdlib only) that accepts
compile / run / fault-campaign requests, applies admission control with
back-pressure, batches queued work onto one persistent
:class:`~repro.harness.executor.TaskExecutor` pool, and shares the
on-disk artifact cache and per-process analysis caches across requests.
``repro loadgen`` replays seeded :mod:`repro.fuzz` programs against it
and emits a ``BENCH_serve.json`` validated by ``repro stats``.

Layers (see ``docs/serving.md``):

- :mod:`repro.serve.protocol` — wire format, request validation, work
  keys, handshake;
- :mod:`repro.serve.work` — the picklable unit executed in worker
  processes (shared caches live here);
- :mod:`repro.serve.scheduler` — admission control + batching onto the
  persistent executor;
- :mod:`repro.serve.server` — the asyncio front-end, request
  observability, graceful drain;
- :mod:`repro.serve.client` — blocking NDJSON client;
- :mod:`repro.serve.loadgen` — deterministic synthetic traffic and the
  serve bench dump.
"""

from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    LoadConfig,
    LoadReport,
    format_load_report,
    run_loadgen,
)
from repro.serve.protocol import PROTOCOL, ProtocolError
from repro.serve.scheduler import AdmissionError, BatchScheduler, ServeConfig
from repro.serve.server import ReproServer, ServerThread, run_server

__all__ = [
    "AdmissionError",
    "BatchScheduler",
    "LoadConfig",
    "LoadReport",
    "PROTOCOL",
    "ProtocolError",
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "format_load_report",
    "run_loadgen",
    "run_server",
]
