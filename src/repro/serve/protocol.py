"""The ``repro serve`` wire protocol: newline-delimited JSON.

One TCP connection carries a sequence of requests and responses, one
JSON object per line (UTF-8, ``\\n``-terminated).  On connect the server
speaks first with a **hello** line::

    {"type": "hello", "proto": "repro.serve/1", "version": "1.0.0", ...}

after which the client sends requests and reads one response per
request, in order.  Stdlib only — no third-party wire format.

Requests
--------

Every request is an object with an ``op`` and a client-chosen ``id``
(echoed verbatim on the response)::

    {"id": "r1", "op": "compile", "source": "...", "flavour": "idempotent",
     "emit": "asm", "config": {"heuristic": "loop", ...}}
    {"id": "r2", "op": "run", "source": "...", "entry": "main"}
    {"id": "r3", "op": "faults", "source": "...", "trials": 30, "kind": "value",
     "scheme": "idempotent"}
    {"id": "r4", "op": "metrics"}
    {"id": "r5", "op": "ping"}
    {"id": "r6", "op": "shutdown"}

``config`` carries :class:`~repro.core.construction.ConstructionConfig`
fields by name; omitted fields take their defaults, unknown fields are a
protocol error.  Requests never carry wall-clock material — a request
stream is a pure function of its generator seed (the loadgen
determinism contract, ``docs/serving.md``).

Responses
---------

::

    {"id": "r1", "status": "ok", "payload": {...}}
    {"id": "r1", "status": "rejected", "error": "queue full",
     "retry_after": 0.05}
    {"id": "r1", "status": "error", "error": "CompilationError: ..."}

``status="rejected"`` is the admission-control/back-pressure signal:
the request was *not* queued and may be retried after ``retry_after``
seconds.  ``status="error"`` means the request was executed and failed
(compile error, unknown workload); retrying will not help.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional

from repro import repro_version
from repro.core.construction import ConstructionConfig

#: Protocol identifier, bumped on breaking wire changes.
PROTOCOL = "repro.serve/1"

#: Every operation the server understands.
OPS = ("ping", "compile", "run", "faults", "metrics", "shutdown")

#: Operations that enqueue compile work (subject to admission control);
#: the rest are answered inline by the front-end.
WORK_OPS = ("compile", "run", "faults")

#: Recovery schemes a ``faults`` request may name.  Kept as a literal so
#: the protocol module stays import-light; a test pins it to
#: ``repro.recovery.backends.BACKEND_NAMES``.
FAULT_SCHEMES = ("idempotent", "checkpoint_log", "tmr")

#: Hard cap on one encoded request/response line.  Doubles as the
#: ``asyncio.start_server`` read limit, so an oversized request fails
#: cleanly instead of buffering without bound.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request/response line or an invalid field value."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def encode_line(message: Dict[str, object]) -> bytes:
    """One message as a canonical NDJSON line (sorted keys, compact)."""
    text = json.dumps(message, sort_keys=True, separators=(",", ":"))
    data = text.encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(data)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    return data


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one received line; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("message line is not a JSON object")
    return message


# ----------------------------------------------------------------------
# ConstructionConfig <-> wire
# ----------------------------------------------------------------------
def config_to_wire(config: Optional[ConstructionConfig]) -> Dict[str, object]:
    """Non-default ConstructionConfig fields as a plain dict.

    Only fields that differ from the defaults are sent, so the wire form
    is stable under new config fields with default values.
    """
    if config is None:
        return {}
    defaults = ConstructionConfig()
    return {
        f.name: getattr(config, f.name)
        for f in dataclasses.fields(config)
        if getattr(config, f.name) != getattr(defaults, f.name)
    }


def config_from_wire(wire: Optional[Dict[str, object]]) -> ConstructionConfig:
    """Build a ConstructionConfig from wire fields (unknown = error)."""
    wire = wire or {}
    if not isinstance(wire, dict):
        raise ProtocolError("config must be an object")
    known = {f.name for f in dataclasses.fields(ConstructionConfig)}
    unknown = set(wire) - known
    if unknown:
        raise ProtocolError(f"unknown config field(s): {sorted(unknown)}")
    try:
        return ConstructionConfig(**wire)
    except TypeError as exc:
        raise ProtocolError(f"invalid config: {exc}") from exc


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
def validate_request(message: Dict[str, object]) -> Dict[str, object]:
    """Check a decoded request and return its normalized form.

    The normalized request carries only semantic fields (plus ``id``):
    it is what the scheduler hashes for batch coalescing, so two
    requests for the same work normalize identically.
    """
    rid = message.get("id")
    if not isinstance(rid, str) or not rid:
        raise ProtocolError("request lacks a non-empty string 'id'")
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    normalized: Dict[str, object] = {"id": rid, "op": op}
    if op in WORK_OPS:
        source = message.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError(f"op {op!r} requires MiniC 'source' text")
        flavour = message.get("flavour", "idempotent")
        if flavour not in ("idempotent", "original"):
            raise ProtocolError(f"invalid flavour {flavour!r}")
        config_from_wire(message.get("config"))  # validate field names now
        normalized.update({
            "source": source,
            "flavour": flavour,
            "config": dict(message.get("config") or {}),
        })
    if op == "compile":
        emit = message.get("emit", "asm")
        if emit not in ("asm", "ir"):
            raise ProtocolError(f"invalid emit {emit!r} (asm or ir)")
        normalized["emit"] = emit
    if op in ("run", "faults"):
        entry = message.get("entry", "main")
        if not isinstance(entry, str) or not entry:
            raise ProtocolError("'entry' must be a non-empty string")
        normalized["entry"] = entry
    if op == "faults":
        trials = message.get("trials", 30)
        if not isinstance(trials, int) or trials < 1:
            raise ProtocolError("'trials' must be a positive integer")
        kind = message.get("kind", "value")
        if kind not in ("value", "control"):
            raise ProtocolError(f"invalid fault kind {kind!r}")
        seed = message.get("seed", 12345)
        if not isinstance(seed, int):
            raise ProtocolError("'seed' must be an integer")
        scheme = message.get("scheme", "idempotent")
        if scheme not in FAULT_SCHEMES:
            raise ProtocolError(
                f"invalid scheme {scheme!r} (expected one of {FAULT_SCHEMES})"
            )
        normalized.update({"trials": trials, "kind": kind, "seed": seed,
                           "scheme": scheme})
    return normalized


def work_key(request: Dict[str, object]) -> str:
    """Coalescing key: identical work units share one execution.

    Everything semantic, nothing request-specific (``id`` excluded).
    """
    semantic = {k: v for k, v in request.items() if k != "id"}
    return json.dumps(semantic, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Responses / handshake
# ----------------------------------------------------------------------
def make_hello(**extra: object) -> Dict[str, object]:
    """The server's first line on every connection."""
    hello: Dict[str, object] = {
        "type": "hello",
        "proto": PROTOCOL,
        "version": repro_version(),
    }
    hello.update(extra)
    return hello


def check_hello(message: Dict[str, object]) -> Dict[str, object]:
    """Client-side handshake check; returns the hello on success."""
    if message.get("type") != "hello":
        raise ProtocolError(f"expected hello, got {message.get('type')!r}")
    proto = message.get("proto")
    if proto != PROTOCOL:
        raise ProtocolError(
            f"protocol mismatch: server speaks {proto!r}, client {PROTOCOL!r}"
        )
    if not isinstance(message.get("version"), str):
        raise ProtocolError("hello lacks a server version string")
    return message


def ok_response(rid: str, payload: Dict[str, object]) -> Dict[str, object]:
    return {"id": rid, "status": "ok", "payload": payload}


def error_response(rid: Optional[str], error: str) -> Dict[str, object]:
    return {"id": rid, "status": "error", "error": error}


def rejected_response(
    rid: Optional[str], reason: str, retry_after: float
) -> Dict[str, object]:
    return {
        "id": rid,
        "status": "rejected",
        "error": reason,
        "retry_after": round(float(retry_after), 6),
    }
