"""The asyncio front-end of ``repro serve``.

Stdlib only: :func:`asyncio.start_server` speaking the newline-delimited
JSON protocol of :mod:`repro.serve.protocol`.  Each connection is greeted
with a hello line (protocol id + server version), then handled
request-by-request: inline ops (``ping``, ``metrics``, ``shutdown``)
answer immediately; work ops (``compile``, ``run``, ``faults``) pass
through admission control into the :class:`~repro.serve.scheduler.
BatchScheduler` and answer when their batch completes.

Observability: every request is recorded as a ``serve.request`` span
(request id, op, status, queue depth at admission) adopted into the
global tracer, plus ``serve.requests`` counters and a
``serve.latency_ms`` histogram labeled by op — and by request id too
when ``ServeConfig.label_request_ids`` is on (bounded workloads only;
label cardinality grows with the request stream).  The ``metrics`` op
returns the same schema-tagged snapshot ``--metrics`` files carry, so a
client can dump it to disk and validate it with ``repro stats``.

Shutdown is a **graceful drain**: stop accepting connections, reject
newly arriving work with ``status="rejected"`` (``reason=draining``),
let queued and in-flight requests finish, flush responses, then exit 0.
"""

from __future__ import annotations

import asyncio
import os
import sys
import threading
import time
from typing import Dict, Optional, Set

from repro.obs.context import get_observer
from repro.obs.export import METRICS_SCHEMA
from repro.obs.tracer import Span
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    WORK_OPS,
    decode_line,
    encode_line,
    error_response,
    make_hello,
    ok_response,
    rejected_response,
    validate_request,
)
from repro.serve.scheduler import AdmissionError, BatchScheduler, ServeConfig


class ReproServer:
    """One listening socket, one scheduler, many NDJSON connections."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.scheduler = BatchScheduler(self.config)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._stop_requested: Optional[asyncio.Event] = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stop_requested = asyncio.Event()
        await self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        get_observer().tracer.instant(
            "serve.start", host=self.host, port=self.port,
            jobs=self.config.jobs,
        )

    def request_stop(self) -> None:
        """Ask the server to drain and exit (signal/shutdown-op safe)."""
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def wait_stopped(self) -> None:
        await self._stop_requested.wait()

    async def shutdown(self) -> None:
        """Graceful drain: finish in-flight work, then tear down."""
        if self._server is not None:
            self._server.close()           # stop accepting connections
            await self._server.wait_closed()
        await self.scheduler.drain()       # queued + in-flight finish
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        await self.scheduler.stop()
        get_observer().tracer.instant("serve.stop",
                                      requests=self.requests_served)

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_stop`, then drain and return."""
        await self.wait_stopped()
        await self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            writer.write(encode_line(make_hello(pid=os.getpid())))
            await writer.drain()
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(encode_line(error_response(
                        None, "request line exceeds the protocol limit"
                    )))
                    await writer.drain()
                    break
                if not line:
                    break  # client closed
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                close_after = bool(response.pop("_close", False))
                writer.write(encode_line(response))
                await writer.drain()
                if close_after:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-conversation
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_line(self, line: bytes) -> Dict[str, object]:
        started_ns = time.perf_counter_ns()
        rid: Optional[str] = None
        op = "?"
        try:
            message = decode_line(line)
            rid = message.get("id") if isinstance(message.get("id"), str) \
                else None
            request = validate_request(message)
            rid, op = request["id"], request["op"]
            response = await self._dispatch(request)
        except ProtocolError as exc:
            response = error_response(rid, f"protocol: {exc}")
        self.requests_served += 1
        self._observe_request(rid, op, response, started_ns)
        return response

    async def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        rid, op = request["id"], request["op"]
        if op == "ping":
            return ok_response(rid, {"pong": True})
        if op == "metrics":
            snapshot = get_observer().metrics.snapshot()
            return ok_response(
                rid, {"schema": METRICS_SCHEMA, "metrics": snapshot}
            )
        if op == "shutdown":
            self.request_stop()
            response = ok_response(rid, {"draining": True})
            response["_close"] = True
            return response
        assert op in WORK_OPS
        try:
            future = self.scheduler.submit(request)
        except AdmissionError as exc:
            return rejected_response(rid, exc.reason, exc.retry_after)
        status, value = await future
        if status == "ok":
            return ok_response(rid, value)
        return error_response(rid, str(value))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _observe_request(
        self,
        rid: Optional[str],
        op: str,
        response: Dict[str, object],
        started_ns: int,
    ) -> None:
        observer = get_observer()
        status = str(response.get("status", "error"))
        latency_ms = (time.perf_counter_ns() - started_ns) / 1e6
        labels = {"op": op, "status": status}
        if self.config.label_request_ids and rid is not None:
            labels["rid"] = rid
        observer.counter(
            "serve.requests", "requests handled by the serve front-end"
        ).inc(**labels)
        observer.histogram(
            "serve.latency_ms", "front-end request latency (ms)"
        ).observe(latency_ms, op=op)
        tracer = observer.tracer
        if tracer.enabled:
            # Requests interleave on the event-loop thread, so a nested
            # context-manager span would mis-parent; record a complete
            # span with explicit timing instead.
            tracer.adopt([Span(
                name="serve.request",
                start_ns=started_ns,
                dur_ns=time.perf_counter_ns() - started_ns,
                pid=os.getpid(),
                tid=threading.get_ident(),
                span_id=tracer._next_id(),
                attrs={"rid": rid, "op": op, "status": status,
                       "queue_depth": self.scheduler.queue_depth},
            )])


# ----------------------------------------------------------------------
# Blocking entry points
# ----------------------------------------------------------------------
def run_server(
    config: Optional[ServeConfig] = None,
    drain_after: Optional[float] = None,
    announce=None,
) -> int:
    """Run a server until SIGINT/SIGTERM (or ``drain_after`` seconds).

    ``announce(server)`` is called once listening (the CLI prints the
    bound address to stderr).  Returns 0 after a clean drain.
    """

    async def _main() -> int:
        server = ReproServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        for signame in ("SIGINT", "SIGTERM"):
            try:
                import signal

                loop.add_signal_handler(
                    getattr(signal, signame), server.request_stop
                )
            except (NotImplementedError, OSError, ValueError):
                pass  # platform without signal support in loops
        if announce is not None:
            announce(server)
        if drain_after is not None:
            loop.call_later(drain_after, server.request_stop)
        await server.serve_until_stopped()
        return 0

    return asyncio.run(_main())


class ServerThread:
    """A server on a background thread (tests, ``repro serve --load``).

    ``start()`` blocks until the socket is bound and returns
    ``(host, port)``; ``stop()`` performs the same graceful drain as a
    signal would and joins the thread.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.server: Optional[ReproServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        async def _main() -> None:
            self.server = ReproServer(self.config)
            try:
                await self.server.start()
            finally:
                self._loop = asyncio.get_running_loop()
                self._ready.set()
            await self.server.serve_until_stopped()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._ready.set()

    def start(self):
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError(f"serve thread failed: {self._error}")
        if self.server is None or self.server.port is None:
            raise RuntimeError("serve thread did not bind a socket")
        return self.server.host, self.server.port

    def stop(self, timeout: float = 60) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        if self._error is not None:
            raise RuntimeError(f"serve thread failed: {self._error}")

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
