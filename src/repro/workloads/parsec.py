"""PARSEC-like workloads in MiniC.

Streaming, data-parallel kernels with wide per-element computations —
the paper's PARSEC suite shows the longest idempotent paths and the lowest
overheads (2.7% geomean, Fig. 10) because inputs are rarely overwritten
and FP registers are plentiful.
"""

BLACKSCHOLES = """
// blackscholes-like: closed-form option pricing over a stream of options.
float spot[128];
float strike[128];
float rate[128];
float vol[128];
float time_[128];
float prices[128];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

float cnd(float x) {
  // Abramowitz-Stegun style rational approximation of the normal CDF.
  float sign_ = 1.0;
  if (x < 0.0) { sign_ = -1.0; x = 0.0 - x; }
  float k = 1.0 / (1.0 + 0.2316419 * x);
  float poly = k * (0.319381530 + k * (-0.356563782 + k * (1.781477937
             + k * (-1.821255978 + k * 1.330274429))));
  float pdf = 0.3989422804 * exp(0.0 - 0.5 * x * x);
  float value = 1.0 - pdf * poly;
  if (sign_ < 0.0) value = 1.0 - value;
  return value;
}

float price_one(int i) {
  float s = spot[i];
  float k = strike[i];
  float r = rate[i];
  float v = vol[i];
  float t = time_[i];
  float sq = sqrt(t);
  float d1 = (log(s / k) + (r + 0.5 * v * v) * t) / (v * sq);
  float d2 = d1 - v * sq;
  return s * cnd(d1) - k * exp(0.0 - r * t) * cnd(d2);
}

int main() {
  int seed = 61;
  int i;
  for (i = 0; i < 128; i = i + 1) {
    seed = lcg(seed); spot[i]   = 50.0 + (float) ((seed >> 8) % 5000) / 100.0;
    seed = lcg(seed); strike[i] = 50.0 + (float) ((seed >> 8) % 5000) / 100.0;
    seed = lcg(seed); rate[i]   = 0.01 + (float) ((seed >> 8) % 500) / 10000.0;
    seed = lcg(seed); vol[i]    = 0.10 + (float) ((seed >> 8) % 500) / 1000.0;
    seed = lcg(seed); time_[i]  = 0.25 + (float) ((seed >> 8) % 300) / 100.0;
  }
  float total = 0.0;
  int round;
  for (round = 0; round < 4; round = round + 1) {
    for (i = 0; i < 128; i = i + 1) {
      prices[i] = price_one(i);           // pure streaming output
      total = total + prices[i];
    }
  }
  int check = (int) total;
  print_int(check);
  return check;
}
"""

STREAMCLUSTER = """
// streamcluster-like: assign points to nearest centers, update costs.
float points[512];    // 128 points x 4 dims
float centers[32];    // 8 centers x 4 dims
int assign_[128];
float cost[128];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int main() {
  int seed = 67;
  int i;
  for (i = 0; i < 512; i = i + 1) {
    seed = lcg(seed);
    points[i] = (float) ((seed >> 8) % 1000) / 100.0;
  }
  for (i = 0; i < 32; i = i + 1) {
    seed = lcg(seed);
    centers[i] = (float) ((seed >> 8) % 1000) / 100.0;
  }
  int round;
  float total = 0.0;
  for (round = 0; round < 5; round = round + 1) {
    int p;
    for (p = 0; p < 128; p = p + 1) {
      float best = 1000000.0;
      int bestc = 0;
      int c;
      for (c = 0; c < 8; c = c + 1) {
        float d = 0.0;
        int k;
        for (k = 0; k < 4; k = k + 1) {
          float diff = points[p * 4 + k] - centers[c * 4 + k];
          d = d + diff * diff;
        }
        if (d < best) { best = d; bestc = c; }
      }
      assign_[p] = bestc;
      cost[p] = best;
      total = total + best;
    }
    // drift the centers deterministically between rounds
    for (i = 0; i < 32; i = i + 1) centers[i] = centers[i] * 0.98 + 0.05;
  }
  int check = (int) total;
  print_int(check);
  return check;
}
"""

SWAPTIONS = """
// swaptions-like: Monte-Carlo payoff simulation with an integer LCG.
float payoffs[64];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int main() {
  int seed = 71;
  float total = 0.0;
  int sw;
  for (sw = 0; sw < 40; sw = sw + 1) {
    float strike_rate = 0.03 + (float) (sw % 8) / 200.0;
    int trial;   // payoffs[] starts zeroed (global) and accumulates in place
    for (trial = 0; trial < 40; trial = trial + 1) {
      float rate_path = 0.05;
      int step;
      for (step = 0; step < 10; step = step + 1) {
        seed = (seed * 1103515245 + 12345) % 2147483648;   // inlined LCG
        float shock = (float) ((seed >> 8) % 2001 - 1000) / 100000.0;
        rate_path = rate_path + 0.2 * (0.05 - rate_path) * 0.1 + shock;
      }
      float payoff = rate_path - strike_rate;
      if (payoff < 0.0) payoff = 0.0;
      payoffs[sw] = payoffs[sw] + payoff;   // in-place accumulation
    }
    payoffs[sw] = payoffs[sw] / 40.0;
    total = total + payoffs[sw];
  }
  int check = (int) (total * 10000.0);
  print_int(check);
  return check;
}
"""

FLUIDANIMATE = """
// fluidanimate-like: smoothed-particle density and force accumulation.
float posx[56];
float posy[56];
float density[56];
float forcex[56];
float forcey[56];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int main() {
  int seed = 73;
  int i;
  for (i = 0; i < 56; i = i + 1) {
    seed = lcg(seed); posx[i] = (float) ((seed >> 8) % 1000) / 100.0;
    seed = lcg(seed); posy[i] = (float) ((seed >> 8) % 1000) / 100.0;
  }
  int t;
  float total = 0.0;
  for (t = 0; t < 4; t = t + 1) {
    // density pass: streaming writes to density[]
    for (i = 0; i < 56; i = i + 1) {
      float d = 1.0;
      int j;
      for (j = 0; j < 56; j = j + 1) {
        float dx = posx[j] - posx[i];
        float dy = posy[j] - posy[i];
        float r2 = dx * dx + dy * dy;
        if (r2 < 4.0) {
          float w = 4.0 - r2;
          d = d + w * w;
        }
      }
      density[i] = d;
    }
    // force pass: streaming writes to force[]
    for (i = 0; i < 56; i = i + 1) {
      float ax = 0.0;
      float ay = 0.0;
      int j;
      for (j = 0; j < 56; j = j + 1) {
        float dx = posx[j] - posx[i];
        float dy = posy[j] - posy[i];
        float r2 = dx * dx + dy * dy;
        if (r2 < 4.0 && r2 > 0.0001) {
          float push = (4.0 - r2) / (density[i] + density[j]);
          ax = ax - dx * push;
          ay = ay - dy * push;
        }
      }
      forcex[i] = ax;
      forcey[i] = ay;
    }
    // integrate
    for (i = 0; i < 56; i = i + 1) {
      posx[i] = posx[i] + forcex[i] * 0.01;
      posy[i] = posy[i] + forcey[i] * 0.01;
    }
    total = total + density[(t * 13) % 56];
  }
  int check = (int) (total * 100.0);
  print_int(check);
  return check;
}
"""

CANNEAL = """
// canneal-like: simulated-annealing element swaps on a routing cost grid.
int netlist[256];     // element -> location
int location[256];    // location -> element
int wire_a[512];
int wire_b[512];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int wire_cost(int w) {
  int la = netlist[wire_a[w]];
  int lb = netlist[wire_b[w]];
  int dr = la / 16 - lb / 16;  if (dr < 0) dr = 0 - dr;
  int dc = la % 16 - lb % 16;  if (dc < 0) dc = 0 - dc;
  return dr + dc;
}

int main() {
  int seed = 79;
  int i;
  for (i = 0; i < 256; i = i + 1) { netlist[i] = i; location[i] = i; }
  for (i = 0; i < 512; i = i + 1) {
    seed = lcg(seed); wire_a[i] = (seed >> 8) % 256;
    seed = lcg(seed); wire_b[i] = (seed >> 8) % 256;
  }
  int accepted = 0;
  int temperature = 100;
  int step;
  for (step = 0; step < 500; step = step + 1) {
    seed = lcg(seed);
    int e1 = (seed >> 8) % 256;
    seed = lcg(seed);
    int e2 = (seed >> 8) % 256;
    if (e1 != e2) {
      // cost of wires touching e1/e2 before the swap
      int before = 0;
      int w;
      for (w = 0; w < 16; w = w + 1) {
        int idx = (e1 * 7 + w * 11) % 512;
        before = before + wire_cost(idx);
      }
      // swap in place (semantic clobbers on the placement tables)
      int l1 = netlist[e1];
      int l2 = netlist[e2];
      netlist[e1] = l2; netlist[e2] = l1;
      location[l1] = e2; location[l2] = e1;
      int after = 0;
      for (w = 0; w < 16; w = w + 1) {
        int idx = (e1 * 7 + w * 11) % 512;
        after = after + wire_cost(idx);
      }
      seed = lcg(seed);
      int noise = (seed >> 8) % (temperature + 1);
      if (after > before + noise) {       // reject: swap back
        netlist[e1] = l1; netlist[e2] = l2;
        location[l1] = e1; location[l2] = e2;
      } else {
        accepted = accepted + 1;
      }
    }
    if (step % 50 == 49 && temperature > 1) temperature = temperature - 11;
  }
  int check = accepted;
  for (i = 0; i < 256; i = i + 1) check = (check * 31 + netlist[i]) % 1000003;
  print_int(check);
  return check;
}
"""

SOURCES = {
    "blackscholes": BLACKSCHOLES,
    "streamcluster": STREAMCLUSTER,
    "swaptions": SWAPTIONS,
    "fluidanimate": FLUIDANIMATE,
    "canneal": CANNEAL,
}
