"""SPEC FP 2006-like workloads in MiniC.

Floating-point, compute-intensive kernels that read inputs and stream
results into separate output arrays — the shape the paper credits for
SPEC FP's long idempotent paths (Fig. 4) and low overheads (5.4% geomean,
Fig. 10): many FP registers, few in-place overwrites.
"""

LBM = """
// lbm-like: 2D five-point stencil relaxation with separate src/dst grids.
float grid_a[1024];   // 32x32
float grid_b[1024];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

void step(float *src, float *dst) {
  int y;
  for (y = 1; y < 31; y = y + 1) {
    int x;
    for (x = 1; x < 31; x = x + 1) {
      int i = y * 32 + x;
      dst[i] = 0.2 * (src[i] + src[i - 1] + src[i + 1] + src[i - 32] + src[i + 32]);
    }
  }
}

int main() {
  int seed = 13;
  int i;
  for (i = 0; i < 1024; i = i + 1) {
    seed = lcg(seed);
    grid_a[i] = (float) ((seed >> 8) % 1000) / 1000.0;
    grid_b[i] = 0.0;
  }
  int t;
  for (t = 0; t < 10; t = t + 1) {
    step(grid_a, grid_b);
    step(grid_b, grid_a);
  }
  float acc = 0.0;
  for (i = 0; i < 1024; i = i + 1) acc = acc + grid_a[i];
  int check = (int) (acc * 1000.0);
  print_int(check);
  return check;
}
"""

MILC = """
// milc-like: small complex-matrix multiplications over a lattice.
float lat_re[1152];   // 128 sites x 3x3 matrix
float lat_im[1152];
float out_re[1152];
float out_im[1152];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

void mat_mul(int a_off, int b_off, int c_off) {
  int i;
  for (i = 0; i < 3; i = i + 1) {
    int j;
    for (j = 0; j < 3; j = j + 1) {
      float sr = 0.0;
      float si = 0.0;
      int k;
      for (k = 0; k < 3; k = k + 1) {
        float ar = lat_re[a_off + i * 3 + k];
        float ai = lat_im[a_off + i * 3 + k];
        float br = lat_re[b_off + k * 3 + j];
        float bi = lat_im[b_off + k * 3 + j];
        sr = sr + ar * br - ai * bi;
        si = si + ar * bi + ai * br;
      }
      out_re[c_off + i * 3 + j] = sr;
      out_im[c_off + i * 3 + j] = si;
    }
  }
}

int main() {
  int seed = 29;
  int i;
  for (i = 0; i < 1152; i = i + 1) {
    seed = lcg(seed);
    lat_re[i] = (float) ((seed >> 8) % 2000 - 1000) / 1000.0;
    seed = lcg(seed);
    lat_im[i] = (float) ((seed >> 8) % 2000 - 1000) / 1000.0;
  }
  int s;
  for (s = 0; s < 127; s = s + 1) {
    mat_mul(s * 9, s * 9 + 9, s * 9);
  }
  float acc = 0.0;
  for (i = 0; i < 1143; i = i + 1) acc = acc + out_re[i] * out_re[i] + out_im[i] * out_im[i];
  int check = (int) (acc * 100.0);
  print_int(check);
  return check;
}
"""

NAMD = """
// namd-like: pairwise short-range forces between particles (n-body).
float px[64];
float py[64];
float pz[64];
float fx[64];
float fy[64];
float fz[64];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

void forces(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    float ax = 0.0;
    float ay = 0.0;
    float az = 0.0;
    int j;
    for (j = 0; j < n; j = j + 1) {
      if (j != i) {
        float dx = px[j] - px[i];
        float dy = py[j] - py[i];
        float dz = pz[j] - pz[i];
        float r2 = dx * dx + dy * dy + dz * dz + 0.01;
        if (r2 < 9.0) {                       // cutoff
          float inv = 1.0 / r2;
          float s = inv * inv - 0.5 * inv;
          ax = ax + dx * s;
          ay = ay + dy * s;
          az = az + dz * s;
        }
      }
    }
    fx[i] = ax;                               // streaming output
    fy[i] = ay;
    fz[i] = az;
  }
}

int main() {
  int seed = 31;
  int i;
  for (i = 0; i < 64; i = i + 1) {
    seed = lcg(seed); px[i] = (float) ((seed >> 8) % 600) / 100.0;
    seed = lcg(seed); py[i] = (float) ((seed >> 8) % 600) / 100.0;
    seed = lcg(seed); pz[i] = (float) ((seed >> 8) % 600) / 100.0;
  }
  int t;
  for (t = 0; t < 3; t = t + 1) {
    forces(64);
    for (i = 0; i < 64; i = i + 1) {          // integrate (separate pass)
      px[i] = px[i] + fx[i] * 0.001;
      py[i] = py[i] + fy[i] * 0.001;
      pz[i] = pz[i] + fz[i] * 0.001;
    }
  }
  float acc = 0.0;
  for (i = 0; i < 64; i = i + 1) acc = acc + px[i] + py[i] + pz[i];
  int check = (int) (acc * 100.0);
  print_int(check);
  return check;
}
"""

DEALII = """
// dealII-like: Jacobi iteration on a sparse (penta-diagonal) FEM system.
float mat_d[256];     // diagonal
float rhs[256];
float x_old[256];
float x_new[256];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int main() {
  int n = 256;
  int seed = 37;
  int i;
  for (i = 0; i < n; i = i + 1) {
    seed = lcg(seed);
    mat_d[i] = 4.0 + (float) ((seed >> 8) % 100) / 100.0;
    seed = lcg(seed);
    rhs[i] = (float) ((seed >> 8) % 200 - 100) / 10.0;
    x_old[i] = 0.0;
  }
  int it;
  for (it = 0; it < 40; it = it + 1) {
    for (i = 0; i < n; i = i + 1) {
      float sigma = 0.0;
      if (i >= 1)      sigma = sigma - x_old[i - 1];
      if (i >= 16)     sigma = sigma - x_old[i - 16];
      if (i + 1 < n)   sigma = sigma - x_old[i + 1];
      if (i + 16 < n)  sigma = sigma - x_old[i + 16];
      x_new[i] = (rhs[i] - sigma) / mat_d[i];   // write to the other buffer
    }
    for (i = 0; i < n; i = i + 1) x_old[i] = x_new[i];
  }
  float acc = 0.0;
  for (i = 0; i < n; i = i + 1) acc = acc + x_old[i] * x_old[i];
  int check = (int) (acc * 10.0);
  print_int(check);
  return check;
}
"""

SOPLEX = """
// soplex-like: Gaussian elimination with partial pivoting (dense LP core).
float a[576];      // 24x24 augmented-ish matrix
float b[24];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int main() {
  int n = 24;
  int seed = 41;
  int i;
  for (i = 0; i < n * n; i = i + 1) {
    seed = lcg(seed);
    a[i] = (float) ((seed >> 8) % 2000 - 1000) / 100.0;
  }
  for (i = 0; i < n; i = i + 1) {
    a[i * n + i] = a[i * n + i] + 50.0;     // diagonally dominant
    seed = lcg(seed);
    b[i] = (float) ((seed >> 8) % 200 - 100) / 10.0;
  }
  int col;
  for (col = 0; col < n; col = col + 1) {
    // partial pivot
    int piv = col;
    float best = a[col * n + col];
    if (best < 0.0) best = 0.0 - best;
    int r;
    for (r = col + 1; r < n; r = r + 1) {
      float v = a[r * n + col];
      if (v < 0.0) v = 0.0 - v;
      if (v > best) { best = v; piv = r; }
    }
    if (piv != col) {
      int k;
      for (k = 0; k < n; k = k + 1) {
        float t = a[col * n + k];
        a[col * n + k] = a[piv * n + k];
        a[piv * n + k] = t;
      }
      float tb = b[col]; b[col] = b[piv]; b[piv] = tb;
    }
    for (r = col + 1; r < n; r = r + 1) {
      float factor = a[r * n + col] / a[col * n + col];
      int k;
      for (k = col; k < n; k = k + 1) {
        a[r * n + k] = a[r * n + k] - factor * a[col * n + k];
      }
      b[r] = b[r] - factor * b[col];
    }
  }
  // back substitution
  float acc = 0.0;
  for (i = n - 1; i >= 0; i = i - 1) {
    float s = b[i];
    int k;
    for (k = i + 1; k < n; k = k + 1) s = s - a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
    acc = acc + b[i];
  }
  int check = (int) (acc * 1000.0);
  print_int(check);
  return check;
}
"""

SPHINX = """
// sphinx3-like: Gaussian mixture log-likelihood scoring of feature frames.
float means[512];     // 16 mixtures x 32 dims
float variances[512];
float features[640];  // 20 frames x 32 dims
float scores[320];    // 20 frames x 16 mixtures

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int main() {
  int seed = 53;
  int i;
  for (i = 0; i < 512; i = i + 1) {
    seed = lcg(seed);
    means[i] = (float) ((seed >> 8) % 200 - 100) / 50.0;
    seed = lcg(seed);
    variances[i] = 0.5 + (float) ((seed >> 8) % 100) / 100.0;
  }
  for (i = 0; i < 640; i = i + 1) {
    seed = lcg(seed);
    features[i] = (float) ((seed >> 8) % 200 - 100) / 50.0;
  }
  int f;
  float total = 0.0;
  for (f = 0; f < 20; f = f + 1) {
    float best = -100000.0;
    int m;
    for (m = 0; m < 16; m = m + 1) {
      float ll = 0.0;
      int d;
      for (d = 0; d < 32; d = d + 1) {
        float diff = features[f * 32 + d] - means[m * 32 + d];
        ll = ll - diff * diff / variances[m * 32 + d];
      }
      scores[f * 16 + m] = ll;               // streaming score matrix
      if (ll > best) best = ll;
    }
    total = total + best;
  }
  int check = (int) (0.0 - total);
  print_int(check);
  return check;
}
"""

SOURCES = {
    "lbm": LBM,
    "milc": MILC,
    "namd": NAMD,
    "dealii": DEALII,
    "soplex": SOPLEX,
    "sphinx": SPHINX,
}
