"""SPEC INT 2006-like workloads in MiniC.

Each kernel mirrors the *shape* of a SPEC CPU2006 integer benchmark that
the paper evaluates: control-heavy integer code that frequently overwrites
its own state in place. That shape is what drives the paper's SPEC INT
results — short semantic idempotent paths (Fig. 4), higher register
pressure and hence higher idempotence overhead (Fig. 10, 11.2% geomean).

Every program is deterministic (inputs from an in-program LCG), prints a
checksum, and returns it from ``main``.
"""

BZIP2 = """
// bzip2-like: run-length encoding + move-to-front transform, in place.
int input[512];
int mtf[64];
int encoded[1024];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int rle_encode(int n) {
  int out = 0;
  int i = 0;
  while (i < n) {
    int v = input[i];
    int run = 1;
    while (i + run < n && input[i + run] == v && run < 255) {
      run = run + 1;
    }
    encoded[out] = v;
    encoded[out + 1] = run;
    out = out + 2;
    i = i + run;
  }
  return out;
}

int mtf_one(int v) {
  // encode one symbol against the persistent table: the table is an input
  // that the shift overwrites in place (semantic clobbers).
  int j = 0;
  while (mtf[j] != v) j = j + 1;
  int rank = j;
  while (j > 0) {
    mtf[j] = mtf[j - 1];
    j = j - 1;
  }
  mtf[0] = v;
  return rank;
}

int move_to_front(int m) {
  int i;
  for (i = 0; i < 64; i = i + 1) mtf[i] = i;
  int sum = 0;
  for (i = 0; i < m; i = i + 1) {
    int v = encoded[i] % 64;
    if (v < 0) v = v + 64;
    sum = sum + mtf_one(v);
  }
  return sum;
}

int main() {
  int seed = 42;
  int i;
  for (i = 0; i < 512; i = i + 1) {
    seed = lcg(seed);
    input[i] = (seed >> 8) % 7;      // small alphabet: runs appear
  }
  int m = rle_encode(512);
  int check = move_to_front(m) + m;
  print_int(check);
  return check;
}
"""

EXPR = """
// gcc-like: a little stack bytecode interpreter (dispatch-heavy).
int code[256];
int stack[64];
int memory[32];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int run(int len, int trips) {
  int check = 0;
  int t;
  for (t = 0; t < trips; t = t + 1) {
    int sp = 0;
    int pc = 0;
    while (pc < len) {
      int op = code[pc] % 8;
      if (op < 0) op = op + 8;
      int arg = code[pc] / 8 % 32;
      if (arg < 0) arg = arg + 32;
      if (op == 0) {                  // push immediate
        stack[sp] = arg;
        sp = sp + 1;
      } else if (op == 1) {           // load
        stack[sp] = memory[arg];
        sp = sp + 1;
      } else if (op == 2) {           // store (overwrites interpreter state)
        if (sp > 0) {
          sp = sp - 1;
          memory[arg] = stack[sp];
        }
      } else if (op == 3) {
        if (sp > 1) { stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; sp = sp - 1; }
      } else if (op == 4) {
        if (sp > 1) { stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; sp = sp - 1; }
      } else if (op == 5) {
        if (sp > 1) { stack[sp - 2] = stack[sp - 2] * stack[sp - 1]; sp = sp - 1; }
      } else if (op == 6) {
        if (sp > 0) stack[sp - 1] = stack[sp - 1] ^ (stack[sp - 1] >> 1);
      } else {
        if (sp > 0) { check = check + stack[sp - 1]; }
      }
      pc = pc + 1;
    }
    check = (check + memory[t % 32]) % 1000003;
  }
  return check;
}

int main() {
  int seed = 7;
  int i;
  for (i = 0; i < 256; i = i + 1) {
    seed = lcg(seed);
    code[i] = seed >> 4;
  }
  for (i = 0; i < 32; i = i + 1) memory[i] = i * 3 + 1;
  int check = run(256, 30);
  print_int(check);
  return check;
}
"""

MCF = """
// mcf-like: Bellman-Ford relaxation over a sparse grid network, in place.
int dist[256];
int first_edge[257];
int edge_to[1024];
int edge_w[1024];

int relax_node(int i) {
  // relax this node's outgoing arcs against the persistent distance
  // labels (read-then-overwrite in place: semantic clobbers).
  int changed = 0;
  int e;
  int d = dist[i];
  for (e = first_edge[i]; e < first_edge[i + 1]; e = e + 1) {
    int nd = d + edge_w[e];
    if (nd < dist[edge_to[e]]) {
      dist[edge_to[e]] = nd;
      changed = 1;
    }
  }
  return changed;
}

int main() {
  int n = 256;
  int m = 0;
  int i;
  // grid edges: right and down neighbours, weights from an LCG
  int seed = 99;
  for (i = 0; i < n; i = i + 1) {
    int r = i / 16;
    int c = i % 16;
    first_edge[i] = m;
    if (c < 15) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      edge_to[m] = i + 1; edge_w[m] = 1 + (seed >> 8) % 9;
      m = m + 1;
    }
    if (r < 15) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      edge_to[m] = i + 16; edge_w[m] = 1 + (seed >> 7) % 9;
      m = m + 1;
    }
  }
  first_edge[n] = m;
  int check = 0;
  int src;
  for (src = 0; src < 4; src = src + 1) {
    for (i = 0; i < n; i = i + 1) dist[i] = 1000000;
    dist[src * 17] = 0;
    int changed = 1;
    int rounds = 0;
    while (changed && rounds < 40) {
      changed = 0;
      for (i = 0; i < n; i = i + 1) {
        if (relax_node(i)) changed = 1;
      }
      rounds = rounds + 1;
    }
    for (i = 0; i < n; i = i + 1) check = (check + dist[i]) % 1000003;
    check = check + rounds;
  }
  print_int(check);
  return check;
}
"""

GOBMK = """
// gobmk-like: board influence propagation with branchy in-place updates.
int board[361];
int influence[361];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int propagate(int passes) {
  int p;
  int check = 0;
  for (p = 0; p < passes; p = p + 1) {
    int i;
    for (i = 0; i < 361; i = i + 1) {
      int r = i / 19;
      int c = i % 19;
      int acc = influence[i] * 2;
      int cnt = 2;
      if (r > 0)  { acc = acc + influence[i - 19]; cnt = cnt + 1; }
      if (r < 18) { acc = acc + influence[i + 19]; cnt = cnt + 1; }
      if (c > 0)  { acc = acc + influence[i - 1];  cnt = cnt + 1; }
      if (c < 18) { acc = acc + influence[i + 1];  cnt = cnt + 1; }
      if (board[i] == 1) acc = acc + 64;
      else if (board[i] == 2) acc = acc - 64;
      influence[i] = acc / cnt;        // in-place update of the field
    }
    check = (check + influence[(p * 37) % 361]) % 1000003;
  }
  return check;
}

int main() {
  int seed = 5;
  int i;
  for (i = 0; i < 361; i = i + 1) {
    seed = lcg(seed);
    int v = (seed >> 9) % 8;
    if (v == 1) board[i] = 1;
    else if (v == 2) board[i] = 2;
    else board[i] = 0;
    influence[i] = 0;
  }
  int check = propagate(18);
  print_int(check);
  return check;
}
"""

HMMER = """
// hmmer-like: Viterbi dynamic programming over an integer profile HMM.
int match_score[800];
int insert_score[800];
int vit_m[100];
int vit_i[100];
int vit_d[100];
int seq[120];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int viterbi(int states, int seqlen) {
  int t;
  int check = 0;
  int i;
  for (i = 0; i < states; i = i + 1) { vit_m[i] = -10000; vit_i[i] = -10000; vit_d[i] = -10000; }
  vit_m[0] = 0;
  for (t = 0; t < seqlen; t = t + 1) {
    int sym = seq[t] % 8;
    if (sym < 0) sym = sym + 8;
    int prev_m = vit_m[0];
    int prev_i = vit_i[0];
    int prev_d = vit_d[0];
    for (i = 1; i < states; i = i + 1) {
      int cur_m = vit_m[i];
      int cur_i = vit_i[i];
      int cur_d = vit_d[i];
      int best = prev_m;
      if (prev_i > best) best = prev_i;
      if (prev_d > best) best = prev_d;
      vit_m[i] = best + match_score[(i * 8 + sym) % 800];   // in-place DP rows
      int bi = cur_m - 3;
      if (cur_i - 1 > bi) bi = cur_i - 1;
      vit_i[i] = bi + insert_score[(i * 8 + sym) % 800];
      int bd = vit_m[i - 1] - 4;
      if (vit_d[i - 1] - 1 > bd) bd = vit_d[i - 1] - 1;
      vit_d[i] = bd;
      prev_m = cur_m; prev_i = cur_i; prev_d = cur_d;
    }
    check = (check + vit_m[states - 1]) % 1000003;
  }
  return check;
}

int main() {
  int seed = 11;
  int i;
  for (i = 0; i < 800; i = i + 1) {
    seed = lcg(seed);
    match_score[i] = (seed >> 8) % 11 - 3;
    seed = lcg(seed);
    insert_score[i] = (seed >> 8) % 7 - 4;
  }
  for (i = 0; i < 120; i = i + 1) { seed = lcg(seed); seq[i] = seed >> 6; }
  int check = viterbi(100, 80);
  print_int(check);
  return check;
}
"""

SJENG = """
// sjeng-like: alpha-beta minimax over a deterministic synthetic game tree.
int eval_table[4096];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int alphabeta(int node, int depth, int alpha, int beta) {
  if (depth == 0) {
    int idx = node % 4096;
    if (idx < 0) idx = idx + 4096;
    return eval_table[idx];
  }
  int best = -100000;
  int m;
  for (m = 0; m < 4; m = m + 1) {
    int child = node * 5 + m * 2 + 1;
    int score = 0 - alphabeta(child, depth - 1, 0 - beta, 0 - alpha);
    if (score > best) best = score;
    if (best > alpha) alpha = best;
    if (alpha >= beta) m = 4;        // cutoff
  }
  return best;
}

int main() {
  int seed = 23;
  int i;
  for (i = 0; i < 4096; i = i + 1) {
    seed = lcg(seed);
    eval_table[i] = (seed >> 8) % 201 - 100;
  }
  int check = 0;
  for (i = 0; i < 6; i = i + 1) {
    check = (check * 31 + alphabeta(i * 7, 5, -100000, 100000)) % 1000003;
  }
  if (check < 0) check = check + 1000003;
  print_int(check);
  return check;
}
"""

H264 = """
// h264ref-like: sum-of-absolute-differences motion search over blocks.
int frame_ref[1024];   // 32x32 reference
int frame_cur[1024];   // 32x32 current
int best_mv[64];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

int sad8(int cx, int cy, int rx, int ry) {
  int acc = 0;
  int y;
  for (y = 0; y < 8; y = y + 1) {
    int x;
    for (x = 0; x < 8; x = x + 1) {
      int a = frame_cur[(cy + y) * 32 + cx + x];
      int b = frame_ref[(ry + y) * 32 + rx + x];
      int d = a - b;
      if (d < 0) d = 0 - d;
      acc = acc + d;
    }
  }
  return acc;
}

int main() {
  int seed = 77;
  int i;
  for (i = 0; i < 1024; i = i + 1) {
    seed = lcg(seed);
    frame_ref[i] = (seed >> 8) % 256;
    frame_cur[i] = (frame_ref[i] + (seed >> 16) % 9 - 4) % 256;
    if (frame_cur[i] < 0) frame_cur[i] = frame_cur[i] + 256;
  }
  int check = 0;
  int by;
  int block = 0;
  for (by = 0; by < 3; by = by + 1) {
    int bx;
    for (bx = 0; bx < 3; bx = bx + 1) {
      int cx = 8 + bx * 5;
      int cy = 8 + by * 5;
      int best = 1000000;
      int bestmv = 0;
      int dy;
      for (dy = -4; dy <= 4; dy = dy + 2) {
        int dx;
        for (dx = -4; dx <= 4; dx = dx + 2) {
          int s = sad8(cx, cy, cx + dx, cy + dy);
          if (s < best) { best = s; bestmv = (dy + 4) * 16 + dx + 4; }
        }
      }
      best_mv[block] = bestmv;
      block = block + 1;
      check = (check + best * 7 + bestmv) % 1000003;
    }
  }
  print_int(check);
  return check;
}
"""

ASTAR = """
// astar-like: grid pathfinding with an open list and in-place g-scores.
int grid[144];      // 12x12 costs
int gscore[144];
int open_set[144];
int came[144];

int lcg(int s) { return (s * 1103515245 + 12345) % 2147483648; }

void expand_node(int best) {
  // relax the neighbours of one expanded node against the persistent
  // score tables (in-place improvements: semantic clobbers).
  open_set[best] = 0;
  int r = best / 12;
  int c = best % 12;
  int d;
  for (d = 0; d < 4; d = d + 1) {
    int nb = -1;
    if (d == 0 && r > 0) nb = best - 12;
    if (d == 1 && r < 11) nb = best + 12;
    if (d == 2 && c > 0) nb = best - 1;
    if (d == 3 && c < 11) nb = best + 1;
    if (nb >= 0) {
      int ng = gscore[best] + grid[nb];
      if (ng < gscore[nb]) {
        gscore[nb] = ng;
        came[nb] = best;
        open_set[nb] = 1;
      }
    }
  }
}

int search(int start, int goal) {
  int i;
  int goal_r = goal / 12;
  int goal_c = goal % 12;
  for (i = 0; i < 144; i = i + 1) { gscore[i] = 1000000; open_set[i] = 0; came[i] = -1; }
  gscore[start] = 0;
  open_set[start] = 1;
  int expanded = 0;
  while (1) {
    int best = -1;
    int bestf = 10000000;
    for (i = 0; i < 144; i = i + 1) {
      if (open_set[i]) {
        int dr = i / 12 - goal_r;  if (dr < 0) dr = 0 - dr;
        int dc = i % 12 - goal_c;  if (dc < 0) dc = 0 - dc;
        int f = gscore[i] + dr + dc;
        if (f < bestf) { bestf = f; best = i; }
      }
    }
    if (best < 0) return -1;
    if (best == goal) return gscore[goal] + expanded;
    expand_node(best);
    expanded = expanded + 1;
  }
  return -1;
}

int main() {
  int seed = 3;
  int i;
  for (i = 0; i < 144; i = i + 1) {
    seed = lcg(seed);
    grid[i] = 1 + (seed >> 8) % 9;
  }
  int check = 0;
  for (i = 0; i < 2; i = i + 1) {
    int c = search(i * 13, 143 - i * 12);
    check = (check * 131 + c) % 1000003;
  }
  if (check < 0) check = check + 1000003;
  print_int(check);
  return check;
}
"""

SOURCES = {
    "bzip2": BZIP2,
    "expr": EXPR,
    "mcf": MCF,
    "gobmk": GOBMK,
    "hmmer": HMMER,
    "sjeng": SJENG,
    "h264": H264,
    "astar": ASTAR,
}
