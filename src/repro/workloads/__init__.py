"""repro.workloads — the benchmark suite.

Nineteen MiniC programs in three suites mirroring the paper's evaluation
(§6.1): ``specint`` (control-heavy integer, in-place state), ``specfp``
(floating-point compute), and ``parsec`` (streaming data-parallel). Each
prints and returns a deterministic checksum, so every binary flavour can
be verified against the IR interpreter.

    from repro.workloads import all_workloads, get_workload
    wl = get_workload("hmmer")
    module = wl.compile_ir()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.frontend import compile_source
from repro.ir.module import Module
from repro.workloads import parsec, specfp, specint

SUITE_SPECINT = "specint"
SUITE_SPECFP = "specfp"
SUITE_PARSEC = "parsec"
SUITES = (SUITE_SPECINT, SUITE_SPECFP, SUITE_PARSEC)


@dataclass(frozen=True)
class Workload:
    """One benchmark: a name, its suite, and MiniC source text."""

    name: str
    suite: str
    source: str
    entry: str = "main"

    def compile_ir(self) -> Module:
        """Fresh (unoptimized) IR module for this workload."""
        return compile_source(self.source, self.name)


def _build_registry() -> Dict[str, Workload]:
    registry: Dict[str, Workload] = {}
    for suite, sources in (
        (SUITE_SPECINT, specint.SOURCES),
        (SUITE_SPECFP, specfp.SOURCES),
        (SUITE_PARSEC, parsec.SOURCES),
    ):
        for name, source in sources.items():
            registry[name] = Workload(name=name, suite=suite, source=source)
    return registry


_REGISTRY = _build_registry()


def all_workloads() -> List[Workload]:
    """Every workload, grouped by suite, deterministic order."""
    ordered = []
    for suite in SUITES:
        ordered.extend(w for w in _REGISTRY.values() if w.suite == suite)
    return ordered


def by_suite(suite: str) -> List[Workload]:
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; choose from {SUITES}")
    return [w for w in _REGISTRY.values() if w.suite == suite]


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None


def workload_names() -> List[str]:
    return [w.name for w in all_workloads()]
