"""repro — Static Analysis and Compiler Design for Idempotent Processing.

A complete reproduction of de Kruijf, Sankaralingam & Jha (PLDI 2012):
compiler IR, MiniC frontend, idempotent region construction, constrained
code generation, machine simulation, fault recovery, and the paper's
evaluation harness.

The most common entry point::

    from repro.compiler import compile_minic
    from repro.sim import Simulator

    build = compile_minic(source, idempotent=True)
    result = Simulator(build.program).run("main")

Subpackages: ``ir``, ``frontend``, ``analysis``, ``transforms``, ``core``,
``codegen``, ``interp``, ``sim``, ``recovery``, ``workloads``,
``experiments``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
