"""repro — Static Analysis and Compiler Design for Idempotent Processing.

A complete reproduction of de Kruijf, Sankaralingam & Jha (PLDI 2012):
compiler IR, MiniC frontend, idempotent region construction, constrained
code generation, machine simulation, fault recovery, and the paper's
evaluation harness.

The most common entry point::

    from repro.compiler import compile_minic
    from repro.sim import Simulator

    build = compile_minic(source, idempotent=True)
    result = Simulator(build.program).run("main")

Subpackages: ``ir``, ``frontend``, ``analysis``, ``transforms``, ``core``,
``codegen``, ``interp``, ``sim``, ``recovery``, ``workloads``,
``experiments``.
"""

__version__ = "1.0.0"


def repro_version() -> str:
    """The installed package version, from importlib metadata.

    Falls back to the hardcoded ``__version__`` when the package is not
    installed (e.g. running from a source checkout via ``PYTHONPATH``).
    The string feeds ``repro --version``, the serve protocol handshake,
    and the provenance section of ``BENCH_serve.json``.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__


__all__ = ["__version__", "repro_version"]
