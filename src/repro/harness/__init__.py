"""repro.harness — campaign orchestration shared by every driver.

The harness is the layer between "compile one program" and "regenerate
the paper": it makes whole-evaluation runs cheap and restartable.

- :mod:`repro.harness.cache` — a persistent content-addressed artifact
  cache: :class:`ArtifactCache` keyed on SHA-256 of MiniC source,
  :class:`~repro.core.ConstructionConfig` fields, and a pipeline version
  stamp, so builds are shared across processes *and* across runs.
- :mod:`repro.harness.executor` — :class:`TaskExecutor`, a process-pool
  sharder with per-task timing and inline fallback, plus
  :func:`derive_seed`, the spawn-key-style deterministic seed derivation
  that keeps sharded campaigns bit-identical to serial ones.
- :mod:`repro.harness.campaign` — resumable campaigns: every completed
  work unit becomes a JSON-lines row in a :class:`RunManifest`, so a
  killed campaign picks up where it left off.  (Imported on demand as a
  submodule; it pulls in the simulator stack.)
- :mod:`repro.harness.report` — :class:`Telemetry`, the wall-time /
  per-phase / cache-effectiveness summary every entry point prints.
"""

from repro.harness.cache import (
    PIPELINE_VERSION,
    ArtifactCache,
    CacheStats,
    cache_key,
    cached_compile,
    default_cache,
    set_default_cache,
)
from repro.harness.executor import TaskExecutor, TaskResult, derive_seed
from repro.harness.report import Telemetry

__all__ = [
    "PIPELINE_VERSION",
    "ArtifactCache",
    "CacheStats",
    "TaskExecutor",
    "TaskResult",
    "Telemetry",
    "cache_key",
    "cached_compile",
    "default_cache",
    "derive_seed",
    "set_default_cache",
]
