"""repro.harness — campaign orchestration shared by every driver.

The harness is the layer between "compile one program" and "regenerate
the paper": it makes whole-evaluation runs cheap and restartable.

- :mod:`repro.harness.cache` — a persistent content-addressed artifact
  cache: :class:`ArtifactCache` keyed on SHA-256 of MiniC source,
  :class:`~repro.core.ConstructionConfig` fields, and a pipeline version
  stamp, so builds are shared across processes *and* across runs.
- :mod:`repro.harness.executor` — :class:`TaskExecutor`, a process-pool
  sharder with per-task timing and inline fallback, plus
  :func:`derive_seed`, the spawn-key-style deterministic seed derivation
  that keeps sharded campaigns bit-identical to serial ones.
- :mod:`repro.harness.campaign` — resumable campaigns: every completed
  work unit becomes a JSON-lines row in a :class:`RunManifest`, so a
  killed campaign picks up where it left off.  (Imported on demand as a
  submodule; it pulls in the simulator stack.)
- :mod:`repro.harness.resilience` — :class:`RetryPolicy` (deterministic
  backoff over a transient/permanent error taxonomy),
  :class:`ChaosPolicy` (seeded worker crash/hang/raise injection for
  tests), and the category constants the executor and campaign use to
  classify, retry, and quarantine failing units.
- :mod:`repro.harness.report` — :class:`Telemetry`, the wall-time /
  per-phase / cache-effectiveness summary every entry point prints.
"""

from repro.harness.cache import (
    PIPELINE_VERSION,
    ArtifactCache,
    CacheStats,
    cache_key,
    cached_compile,
    default_cache,
    set_default_cache,
)
from repro.harness.executor import TaskExecutor, TaskResult, derive_seed
from repro.harness.report import Telemetry
from repro.harness.resilience import (
    TIMEOUT,
    TRANSIENT_ERROR,
    UNIT_ERROR,
    WORKER_LOST,
    ChaosError,
    ChaosPolicy,
    PermanentUnitError,
    RetryPolicy,
    is_transient,
)

__all__ = [
    "PIPELINE_VERSION",
    "ArtifactCache",
    "CacheStats",
    "ChaosError",
    "ChaosPolicy",
    "PermanentUnitError",
    "RetryPolicy",
    "TIMEOUT",
    "TRANSIENT_ERROR",
    "TaskExecutor",
    "TaskResult",
    "Telemetry",
    "UNIT_ERROR",
    "WORKER_LOST",
    "cache_key",
    "cached_compile",
    "default_cache",
    "derive_seed",
    "is_transient",
    "set_default_cache",
]
