"""Persistent content-addressed cache for compilation artifacts.

Builds are pure functions of (MiniC source, build flavour,
:class:`~repro.core.ConstructionConfig`, compiler pipeline version), so a
:class:`CompileResult` can be cached under the SHA-256 of exactly those
inputs and reused by any process, in this run or a later one.  Artifacts
are pickled under ``.repro-cache/objects/<k[:2]>/<k>.pkl``.

Safety properties:

- *Concurrent writers* never expose a torn entry: artifacts are written
  to a same-directory temp file and published with an atomic
  ``os.replace``.
- *Corrupted entries* (truncated file, stale pickle protocol, garbage)
  are treated as misses, deleted, and recompiled — never an exception.
- *Staleness* is impossible by construction: any change to the source,
  the config, or :data:`PIPELINE_VERSION` changes the key.  Bump
  :data:`PIPELINE_VERSION` whenever a compiler change alters build
  output for identical inputs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Optional

from repro.compiler import CompileResult, compile_minic
from repro.core.construction import ConstructionConfig
from repro.harness.executor import ensure_deep_pickle
from repro.obs.context import get_observer

#: Stamp mixed into every cache key.  Bump when the compiler pipeline
#: changes in a way that affects build output for unchanged inputs.
PIPELINE_VERSION = "idem-pipeline-v2"  # v2: deterministic regalloc order

#: Default on-disk location, overridable via ``REPRO_CACHE_DIR``.
DEFAULT_CACHE_DIR = ".repro-cache"


def config_fingerprint(config: Optional[ConstructionConfig]) -> str:
    """Canonical text encoding of every ConstructionConfig field.

    Field order is sorted by name so the fingerprint does not depend on
    declaration order; ``None`` (default config) is normalised to the
    fingerprint of ``ConstructionConfig()`` so both spellings share
    cache entries.
    """
    if config is None:
        config = ConstructionConfig()
    items = sorted(dataclasses.asdict(config).items())
    return ";".join(f"{name}={value!r}" for name, value in items)


def cache_key(
    source: str,
    idempotent: bool,
    config: Optional[ConstructionConfig] = None,
    name: str = "minic",
    pipeline_version: str = PIPELINE_VERSION,
) -> str:
    """SHA-256 content address of one build."""
    h = hashlib.sha256()
    for part in (
        pipeline_version,
        name,
        "idempotent" if idempotent else "original",
        config_fingerprint(config),
        source,
    ):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


#: Metric names backing every cache counter (label: ``cache=<root>``).
CACHE_METRICS = ("hits", "misses", "stores", "evictions", "corrupt")


@dataclass
class CacheStats:
    """Point-in-time counter view of one cache (or a delta between two).

    The live counters themselves live on the :mod:`repro.obs` metrics
    registry as ``cache.<name>{cache=<root>}``; this dataclass is the
    read-side snapshot that reports and tests consume.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.corrupt += other.corrupt

    def summary(self) -> str:
        text = (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.evictions} evictions"
        )
        if self.lookups:
            text += f" (hit rate {self.hit_rate:.0%})"
        if self.corrupt:
            text += f", {self.corrupt} corrupt entries dropped"
        return text

    @classmethod
    def from_snapshot(
        cls, snapshot: dict, cache_label: Optional[str] = None
    ) -> "CacheStats":
        """Sum ``cache.*`` counters out of a metrics snapshot (or delta).

        ``cache_label`` restricts to one cache root; None sums them all.
        """
        from repro.obs.metrics import counter_values

        stats = cls()
        for name in CACHE_METRICS:
            total = sum(
                value
                for labels, value in counter_values(snapshot, f"cache.{name}")
                if cache_label is None or labels.get("cache") == cache_label
            )
            setattr(stats, name, int(total))
        return stats


class ArtifactCache:
    """Content-addressed pickle store with hit/miss/evict accounting.

    ``max_entries`` bounds the object store: inserting past the bound
    evicts least-recently-used entries (by file mtime, which ``get``
    refreshes on every hit).

    Accounting lives on the global :mod:`repro.obs` metrics registry
    (``cache.hits`` etc., labeled ``cache=<root>``): every process — and
    every :class:`~repro.harness.executor.TaskExecutor` worker, whose
    deltas ship back to the parent — contributes to one set of counters,
    and :attr:`stats` is a per-instance view over them.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        enabled: bool = True,
        max_entries: Optional[int] = None,
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = root
        self.enabled = enabled and not os.environ.get("REPRO_CACHE_DISABLE")
        self.max_entries = max_entries

    @property
    def obs_label(self) -> str:
        """Label value distinguishing this cache's counters (its root)."""
        return self.root

    def _count(self, name: str, amount: int = 1) -> None:
        get_observer().counter(f"cache.{name}").inc(amount, cache=self.root)

    @property
    def stats(self) -> CacheStats:
        """Live counter view for this cache root (from the registry)."""
        return CacheStats.from_snapshot(
            get_observer().metrics.snapshot(), cache_label=self.root
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.pkl")

    # ------------------------------------------------------------------
    # Store operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[object]:
        """Load an artifact, or None on miss; corruption is a miss."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        ensure_deep_pickle()
        try:
            with open(path, "rb") as handle:
                artifact = pickle.load(handle)
        except FileNotFoundError:
            self._count("misses")
            return None
        except Exception:
            # Truncated write from a killed process, disk corruption,
            # or an artifact from an incompatible interpreter: drop it.
            self._count("misses")
            self._count("corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._count("hits")
        try:
            os.utime(path)  # refresh LRU clock
        except OSError:
            pass
        return artifact

    def put(self, key: str, artifact: object) -> None:
        """Publish an artifact atomically (write-to-temp + rename)."""
        if not self.enabled:
            return
        path = self.path_for(key)
        ensure_deep_pickle()
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._count("stores")
        if self.max_entries is not None:
            self._evict_over(self.max_entries)

    def contains(self, key: str) -> bool:
        return self.enabled and os.path.exists(self.path_for(key))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _entries(self):
        entries = []
        try:
            shards = os.listdir(self.objects_dir)
        except FileNotFoundError:
            return entries
        for shard in shards:
            shard_dir = os.path.join(self.objects_dir, shard)
            try:
                names = os.listdir(shard_dir)
            except NotADirectoryError:
                continue
            for filename in names:
                if filename.endswith(".pkl"):
                    entries.append(os.path.join(shard_dir, filename))
        return entries

    def entry_count(self) -> int:
        return len(self._entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def _evict_over(self, limit: int) -> None:
        entries = self._entries()
        if len(entries) <= limit:
            return

        def mtime(path: str) -> float:
            try:
                return os.path.getmtime(path)
            except OSError:
                return 0.0

        entries.sort(key=mtime)
        for path in entries[: len(entries) - limit]:
            try:
                os.unlink(path)
                self._count("evictions")
            except OSError:
                pass

    def clear(self) -> int:
        """Drop every object; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed


# ----------------------------------------------------------------------
# Process-wide default cache
# ----------------------------------------------------------------------
_default_cache: Optional[ArtifactCache] = None


def default_cache() -> ArtifactCache:
    """The process-wide cache (created on first use)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = ArtifactCache()
    return _default_cache


def set_default_cache(cache: Optional[ArtifactCache]) -> Optional[ArtifactCache]:
    """Swap the process-wide cache (None resets to lazy default).

    Returns the previous cache so callers (tests, the CLI's
    ``--no-cache``) can restore it.
    """
    global _default_cache
    previous = _default_cache
    _default_cache = cache
    return previous


def cached_compile(
    source: str,
    idempotent: bool,
    config: Optional[ConstructionConfig] = None,
    name: str = "minic",
    cache: Optional[ArtifactCache] = None,
    manager=None,
) -> CompileResult:
    """``compile_minic`` through the artifact cache.

    ``manager`` optionally shares an
    :class:`~repro.analysis.manager.AnalysisManager` across cache-miss
    builds (the ``repro serve`` workers do); it does not enter the cache
    key because it cannot change build output.
    """
    if cache is None:
        cache = default_cache()
    key = cache_key(source, idempotent=idempotent, config=config, name=name)
    artifact = cache.get(key)
    if isinstance(artifact, CompileResult):
        return artifact
    result = compile_minic(source, idempotent=idempotent, config=config,
                           name=name, manager=manager)
    cache.put(key, result)
    return result
