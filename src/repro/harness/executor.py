"""Parallel work-unit execution with deterministic seed derivation.

:class:`TaskExecutor` shards independent work units — per-workload
builds, per-seed fault trials, per-config sweep points — across a
``ProcessPoolExecutor``.  ``jobs=1`` (the default) executes inline with
identical semantics, and any failure to stand up a process pool (no
``/dev/shm``, restricted sandbox) silently degrades to inline execution
rather than failing the run.

Determinism rules:

- Work functions must be *pure* module-level functions of their item
  (process pools pickle them by qualified name).
- Randomized units must derive their RNG state via :func:`derive_seed`
  rather than sharing a sequential RNG stream, so results do not depend
  on how units are sharded across processes.

Observability: pool workers record into their *own* process's
:mod:`repro.obs` observer.  Each unit runs against a fresh metrics
registry, and its delta (plus any spans it traced) ships back on the
:class:`TaskResult`; the parent folds both into its global observer as
results are settled.  Because counter/histogram merge is exact and
order-independent, a parallel run's aggregates equal a serial run's.
"""

from __future__ import annotations

import hashlib
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.obs.context import get_observer
from repro.obs.metrics import MetricsRegistry

#: Recursion headroom for (un)pickling artifacts.  IR use-def chains can
#: nest a few thousand objects deep — past Python's default limit of
#: 1000 — and process pools pickle every argument and result.
PICKLE_RECURSION_LIMIT = 10_000


def ensure_deep_pickle() -> None:
    """Raise this process's recursion limit for deep artifact pickles."""
    if sys.getrecursionlimit() < PICKLE_RECURSION_LIMIT:
        sys.setrecursionlimit(PICKLE_RECURSION_LIMIT)


def derive_seed(root_seed: object, *path: object) -> int:
    """Spawn-key-style child seed: hash the root seed and a derivation path.

    Mirrors the NumPy ``SeedSequence.spawn`` idea with nothing but
    ``hashlib``: every distinct ``(root, path)`` pair gets a statistically
    independent 63-bit seed, and the mapping is stable across processes,
    platforms, and Python versions.  A sharded campaign that seeds trial
    *i* with ``derive_seed(seed, "trial", i)`` therefore injects exactly
    the fault set a serial campaign does.
    """
    h = hashlib.sha256()
    h.update(repr(root_seed).encode("utf-8"))
    for part in path:
        h.update(b"\x1f")
        h.update(repr(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


@dataclass
class TaskResult:
    """One executed work unit: its key, value, and wall time."""

    key: object
    value: object = None
    seconds: float = 0.0
    error: Optional[str] = None
    #: Worker-process observability payload ({"metrics": ..., "spans": ...});
    #: consumed (and cleared) by the parent when the result is settled.
    obs: Optional[dict] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_unit(
    fn: Callable,
    key: object,
    item: object,
    capture_obs: bool = False,
    enable_trace: bool = False,
) -> TaskResult:
    """Worker-side wrapper: times the unit and captures its failure.

    With ``capture_obs`` (the pool path), the unit runs against a fresh
    metrics registry whose snapshot — plus any spans the unit traced —
    ships back on the result, so the parent can aggregate.  The worker's
    own cumulative registry stays consistent (the delta is folded back).
    """
    ensure_deep_pickle()  # the pool pickles this unit's result
    observer = None
    unit_metrics = None
    span_mark = 0
    if capture_obs:
        observer = get_observer()
        if enable_trace and not observer.enabled:
            observer.enable()
        span_mark = observer.tracer.mark()
        inherited = observer.metrics
        unit_metrics = MetricsRegistry()
        observer.metrics = unit_metrics
    started = time.perf_counter()
    try:
        value = fn(item)
        error = None
    except Exception as exc:  # propagated via TaskResult.error
        value = None
        error = f"{type(exc).__name__}: {exc}"
    finally:
        seconds = time.perf_counter() - started
        obs_payload = None
        if capture_obs:
            observer.metrics = inherited
            delta = unit_metrics.snapshot()
            inherited.merge_snapshot(delta)
            obs_payload = {
                "metrics": delta,
                "spans": observer.tracer.spans_since(span_mark),
            }
    return TaskResult(
        key=key, value=value, seconds=seconds, error=error, obs=obs_payload
    )


class TaskExecutor:
    """Runs ``fn(item)`` over items, inline or across worker processes."""

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs or 1))
        #: True once a pool failed to start and we fell back inline.
        self.degraded = False

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence[object],
        keys: Optional[Sequence[object]] = None,
        reraise: bool = True,
    ) -> List[TaskResult]:
        """Execute every item; results come back in item order.

        With ``reraise`` (default), the first failed unit raises after
        all units finish; pass ``reraise=False`` to collect failures as
        ``TaskResult.error`` strings instead.
        """
        results = list(self.imap(fn, items, keys=keys, ordered=True))
        if reraise:
            for result in results:
                if not result.ok:
                    raise RuntimeError(
                        f"work unit {result.key!r} failed: {result.error}"
                    )
        return results

    def imap(
        self,
        fn: Callable,
        items: Sequence[object],
        keys: Optional[Sequence[object]] = None,
        ordered: bool = False,
    ) -> Iterator[TaskResult]:
        """Yield results as units finish (or in order when ``ordered``).

        Completion-order streaming is what lets the campaign manifest
        record units the moment they finish, so a killed run loses at
        most the in-flight units.
        """
        items = list(items)
        if keys is None:
            keys = items
        keys = list(keys)
        if len(keys) != len(items):
            raise ValueError("keys and items must have equal length")

        if self.jobs == 1 or len(items) <= 1:
            yield from self._imap_inline(fn, items, keys)
            return
        ensure_deep_pickle()  # the parent unpickles worker results
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(items)),
                initializer=ensure_deep_pickle,
            )
        except Exception:
            self.degraded = True
            yield from self._imap_inline(fn, items, keys)
            return
        try:
            enable_trace = get_observer().enabled
            futures = [
                pool.submit(_run_unit, fn, key, item, True, enable_trace)
                for key, item in zip(keys, items)
            ]
            if ordered:
                for future in futures:
                    yield self._settle(future)
            else:
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        yield self._settle(future)
        finally:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _settle(future) -> TaskResult:
        try:
            result = future.result()
        except Exception as exc:
            # The unit itself never raises (wrapped in _run_unit); this
            # is pool-level breakage such as an unpicklable work function
            # or a worker killed by a signal.
            return TaskResult(key=None, error=f"{type(exc).__name__}: {exc}")
        return TaskExecutor._absorb_obs(result)

    @staticmethod
    def _absorb_obs(result: TaskResult) -> TaskResult:
        """Fold a worker unit's metrics delta and spans into this process."""
        payload = result.obs
        if payload:
            observer = get_observer()
            observer.metrics.merge_snapshot(payload.get("metrics") or {})
            observer.tracer.adopt(payload.get("spans") or [])
            result.obs = None
        return result

    @staticmethod
    def _imap_inline(
        fn: Callable, items: Iterable[object], keys: Iterable[object]
    ) -> Iterator[TaskResult]:
        for key, item in zip(keys, items):
            yield _run_unit(fn, key, item)
