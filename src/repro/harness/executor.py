"""Parallel work-unit execution with deterministic seed derivation.

:class:`TaskExecutor` shards independent work units — per-workload
builds, per-seed fault trials, per-config sweep points — across a
``ProcessPoolExecutor``.  ``jobs=1`` (the default) executes inline with
identical semantics, and any failure to stand up a process pool (no
``/dev/shm``, restricted sandbox) silently degrades to inline execution
rather than failing the run.

Determinism rules:

- Work functions must be *pure* module-level functions of their item
  (process pools pickle them by qualified name).
- Randomized units must derive their RNG state via :func:`derive_seed`
  rather than sharing a sequential RNG stream, so results do not depend
  on how units are sharded across processes.

Resilience (see :mod:`repro.harness.resilience`): the executor treats
its own workers the way the paper treats a faulting processor — a unit
is an idempotent region, and recovery is re-execution from its entry.

- Units queue in the *parent*; at most ``jobs`` futures are in flight,
  so a broken pool blasts only the in-flight units (queued units are
  re-submitted to the fresh pool without consuming retry budget) and a
  per-unit wall-clock deadline approximates actual running time.
- A worker killed by a signal (``BrokenProcessPool``) or a hung unit
  (``unit_timeout`` exceeded — the pool is killed and rebuilt) is a
  *transient* failure: the unit re-executes on a fresh worker, after a
  deterministic exponential backoff, up to its attempt budget.
- A unit that raises is a *permanent* failure (modulo the policy's
  ``transient_exceptions``): it fails immediately with its key,
  category, and attempt count attached.
- :class:`~repro.harness.resilience.ChaosPolicy` lets tests make
  workers crash / hang / raise on chosen units to prove all of this.

Observability: pool workers record into their *own* process's
:mod:`repro.obs` observer.  Each unit runs against a fresh metrics
registry, and its delta (plus any spans it traced) ships back on the
:class:`TaskResult`; the parent folds both into its global observer as
results are settled.  Because counter/histogram merge is exact and
order-independent, a parallel run's aggregates equal a serial run's.
Retries and timeouts are visible as ``harness.retries`` /
``harness.timeouts`` counters and ``harness.retry`` trace events.
"""

from __future__ import annotations

import hashlib
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

from repro.harness.resilience import (
    DEFAULT_RETRY,
    WORKER_LOST,
    TIMEOUT,
    ChaosPolicy,
    RetryPolicy,
)
from repro.obs.context import get_observer
from repro.obs.metrics import MetricsRegistry

#: Recursion headroom for (un)pickling artifacts.  IR use-def chains can
#: nest a few thousand objects deep — past Python's default limit of
#: 1000 — and process pools pickle every argument and result.
PICKLE_RECURSION_LIMIT = 10_000


def ensure_deep_pickle() -> None:
    """Raise this process's recursion limit for deep artifact pickles."""
    if sys.getrecursionlimit() < PICKLE_RECURSION_LIMIT:
        sys.setrecursionlimit(PICKLE_RECURSION_LIMIT)


def derive_seed(root_seed: object, *path: object) -> int:
    """Spawn-key-style child seed: hash the root seed and a derivation path.

    Mirrors the NumPy ``SeedSequence.spawn`` idea with nothing but
    ``hashlib``: every distinct ``(root, path)`` pair gets a statistically
    independent 63-bit seed, and the mapping is stable across processes,
    platforms, and Python versions.  A sharded campaign that seeds trial
    *i* with ``derive_seed(seed, "trial", i)`` therefore injects exactly
    the fault set a serial campaign does.
    """
    h = hashlib.sha256()
    h.update(repr(root_seed).encode("utf-8"))
    for part in path:
        h.update(b"\x1f")
        h.update(repr(part).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


@dataclass
class TaskResult:
    """One executed work unit: its key, value, and wall time."""

    key: object
    value: object = None
    seconds: float = 0.0
    error: Optional[str] = None
    #: Total executions of this unit (1 = succeeded/failed first try).
    attempts: int = 1
    #: Failure category from the :mod:`repro.harness.resilience`
    #: taxonomy; ``None`` for successful units.
    category: Optional[str] = None
    #: Worker-process observability payload ({"metrics": ..., "spans": ...});
    #: consumed (and cleared) by the parent when the result is settled.
    obs: Optional[dict] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_unit(
    fn: Callable,
    key: object,
    item: object,
    capture_obs: bool = False,
    enable_trace: bool = False,
    attempt: int = 1,
    chaos: Optional[ChaosPolicy] = None,
) -> TaskResult:
    """Worker-side wrapper: times the unit and captures its failure.

    With ``capture_obs`` (the pool path), the unit runs against a fresh
    metrics registry whose snapshot — plus any spans the unit traced —
    ships back on the result, so the parent can aggregate.  The worker's
    own cumulative registry stays consistent (the delta is folded back).
    """
    ensure_deep_pickle()  # the pool pickles this unit's result
    observer = None
    unit_metrics = None
    span_mark = 0
    if capture_obs:
        observer = get_observer()
        if enable_trace and not observer.enabled:
            observer.enable()
        span_mark = observer.tracer.mark()
        inherited = observer.metrics
        unit_metrics = MetricsRegistry()
        observer.metrics = unit_metrics
    started = time.perf_counter()
    try:
        if chaos is not None:
            chaos.apply(key, attempt)  # may os._exit, hang, or raise
        value = fn(item)
        error = None
    except Exception as exc:  # propagated via TaskResult.error
        value = None
        error = f"{type(exc).__name__}: {exc}"
    finally:
        seconds = time.perf_counter() - started
        obs_payload = None
        if capture_obs:
            observer.metrics = inherited
            delta = unit_metrics.snapshot()
            inherited.merge_snapshot(delta)
            obs_payload = {
                "metrics": delta,
                "spans": observer.tracer.spans_since(span_mark),
            }
    return TaskResult(
        key=key, value=value, seconds=seconds, error=error,
        attempts=attempt, obs=obs_payload,
    )


@dataclass
class _UnitTask:
    """Parent-side state of one unit across submissions and retries."""

    key: object
    item: object
    index: int
    attempt: int = 1
    deadline: Optional[float] = None  # monotonic; None = no timeout


class TaskExecutor:
    """Runs ``fn(item)`` over items, inline or across worker processes.

    ``retry`` (default :data:`~repro.harness.resilience.DEFAULT_RETRY`:
    one free re-execution of pool-level failures), ``unit_timeout``
    (seconds of wall clock per unit before its worker is killed), and
    ``chaos`` (worker-failure injection, pool path only) make the
    executor survive its own workers' faults; see the module docstring.
    """

    def __init__(
        self,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        unit_timeout: Optional[float] = None,
        chaos: Optional[ChaosPolicy] = None,
        persistent: bool = False,
    ) -> None:
        self.jobs = max(1, int(jobs or 1))
        self.retry = retry
        self.unit_timeout = unit_timeout
        self.chaos = chaos
        #: Keep the worker pool alive across ``map``/``imap`` calls (the
        #: ``repro serve`` usage pattern: many small batches against warm
        #: workers).  Call :meth:`close` (or use the executor as a
        #: context manager) to shut the pool down.  A persistent executor
        #: is not thread-safe: one submission stream at a time.
        self.persistent = bool(persistent)
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Number of process pools built over this executor's lifetime
        #: (rebuilds after timeouts/breakage included); lets tests assert
        #: a persistent executor does not re-spawn per batch.
        self.pool_builds = 0
        #: True once a pool failed to start and we fell back inline.
        self.degraded = False

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down a persistent pool (no-op otherwise, and idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @property
    def _policy(self) -> RetryPolicy:
        return self.retry if self.retry is not None else DEFAULT_RETRY

    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence[object],
        keys: Optional[Sequence[object]] = None,
        reraise: bool = True,
    ) -> List[TaskResult]:
        """Execute every item; results come back in item order.

        With ``reraise`` (default), the first failed unit raises after
        all units finish; pass ``reraise=False`` to collect failures as
        ``TaskResult.error`` strings instead.
        """
        results = list(self.imap(fn, items, keys=keys, ordered=True))
        if reraise:
            for result in results:
                if not result.ok:
                    raise RuntimeError(
                        f"work unit {result.key!r} failed: {result.error}"
                    )
        return results

    def imap(
        self,
        fn: Callable,
        items: Sequence[object],
        keys: Optional[Sequence[object]] = None,
        ordered: bool = False,
    ) -> Iterator[TaskResult]:
        """Yield results as units finish (or in order when ``ordered``).

        Completion-order streaming is what lets the campaign manifest
        record units the moment they finish, so a killed run loses at
        most the in-flight units.
        """
        items = list(items)
        if keys is None:
            keys = items
        keys = list(keys)
        if len(keys) != len(items):
            raise ValueError("keys and items must have equal length")

        if self.jobs == 1 or len(items) <= 1:
            yield from self._imap_inline(fn, items, keys)
            return
        ensure_deep_pickle()  # the parent unpickles worker results
        if ordered:
            buffered: Dict[int, TaskResult] = {}
            next_index = 0
            for index, result in self._imap_pool(fn, items, keys):
                buffered[index] = result
                while next_index in buffered:
                    yield buffered.pop(next_index)
                    next_index += 1
        else:
            for _, result in self._imap_pool(fn, items, keys):
                yield result

    # ------------------------------------------------------------------
    # Pool orchestration: parent-side queue, retries, timeouts, rebuilds
    # ------------------------------------------------------------------
    def _new_pool(self, size: int) -> Optional[ProcessPoolExecutor]:
        # A persistent pool is sized for the executor, not the first
        # batch, so a small warm-up batch does not cap later ones.
        workers = self.jobs if self.persistent else min(self.jobs, size)
        try:
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=ensure_deep_pickle,
            )
        except Exception:
            return None
        self.pool_builds += 1
        return pool

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Terminate worker processes (hung units included) and discard."""
        try:
            processes = list((pool._processes or {}).values())
        except Exception:
            processes = []
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _imap_pool(
        self, fn: Callable, items: Sequence[object], keys: Sequence[object]
    ) -> Iterator[Tuple[int, TaskResult]]:
        observer = get_observer()
        policy = self._policy
        max_workers = min(self.jobs, len(items))
        if self.persistent and self._pool is not None:
            pool = self._pool
            self._pool = None  # taken for this run; re-stowed in finally
        else:
            pool = self._new_pool(len(items))
        enable_trace = observer.enabled

        pending: deque = deque(
            _UnitTask(key=key, item=item, index=index)
            for index, (key, item) in enumerate(zip(keys, items))
        )
        delayed: List[Tuple[float, _UnitTask]] = []  # backoff waits
        inflight: Dict[object, _UnitTask] = {}       # future -> task
        finished: List[Tuple[int, TaskResult]] = []

        def run_inline(task: _UnitTask) -> None:
            # Degraded path: no chaos (a crash would kill the parent)
            # and no preemption, so no timeout either.
            result = _run_unit(fn, task.key, task.item)
            result.attempts = task.attempt
            if result.error:
                result.category = policy.classify_unit_error(result.error)
            finished.append((task.index, result))

        def submit(task: _UnitTask) -> None:
            nonlocal pool
            for _ in range(2):  # one lazy rebuild on a broken/shut pool
                if pool is None:
                    break
                try:
                    future = pool.submit(
                        _run_unit, fn, task.key, task.item, True,
                        enable_trace, task.attempt, self.chaos,
                    )
                except Exception:
                    self._kill_pool(pool)
                    pool = self._new_pool(len(items))
                    continue
                task.deadline = (
                    time.monotonic() + self.unit_timeout
                    if self.unit_timeout else None
                )
                inflight[future] = task
                return
            self.degraded = True
            run_inline(task)

        def fail_or_retry(task: _UnitTask, category: str, error: str,
                          seconds: float = 0.0) -> None:
            if policy.should_retry(category, task.attempt):
                delay = policy.delay(task.key, task.attempt)
                observer.counter("harness.retries").inc(category=category)
                observer.tracer.instant(
                    "harness.retry", key=str(task.key),
                    attempt=task.attempt, category=category,
                    delay_s=round(delay, 6), error=error,
                )
                task.attempt += 1
                delayed.append((time.monotonic() + delay, task))
            else:
                finished.append((task.index, TaskResult(
                    key=task.key, error=error, seconds=seconds,
                    attempts=task.attempt, category=category,
                )))

        def settle(future, task: _UnitTask) -> None:
            try:
                result = future.result()
            except Exception as exc:
                # Pool-level breakage: the worker died (a signal, a
                # chaos crash) or the result could not be transported.
                # The unit is idempotent — re-execute it from its entry.
                fail_or_retry(
                    task, WORKER_LOST, f"{type(exc).__name__}: {exc}"
                )
                return
            self._absorb_obs(result)
            result.attempts = task.attempt
            if result.error:
                category = policy.classify_unit_error(result.error)
                result.category = category
                if policy.should_retry(category, task.attempt):
                    fail_or_retry(task, category, result.error, result.seconds)
                else:
                    finished.append((task.index, result))
            else:
                finished.append((task.index, result))

        try:
            while pending or delayed or inflight:
                now = time.monotonic()
                if delayed:  # promote due backoff waiters
                    due = [t for when, t in delayed if when <= now]
                    delayed = [(w, t) for w, t in delayed if w > now]
                    pending.extendleft(reversed(due))
                while pending and len(inflight) < max_workers:
                    if pool is None:  # unrecoverable pool: drain inline
                        self.degraded = True
                        run_inline(pending.popleft())
                        continue
                    submit(pending.popleft())
                if not inflight:
                    if delayed:
                        next_due = min(when for when, _ in delayed)
                        time.sleep(max(0.0, next_due - time.monotonic()))
                    yield from finished
                    finished.clear()
                    continue

                wakeups = [t.deadline for t in inflight.values()
                           if t.deadline is not None]
                wakeups += [when for when, _ in delayed]
                timeout = (
                    max(0.0, min(wakeups) - time.monotonic()) + 0.02
                    if wakeups else None
                )
                done, _ = wait(
                    set(inflight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    settle(future, inflight.pop(future))

                now = time.monotonic()
                expired = {
                    future: task for future, task in inflight.items()
                    if task.deadline is not None and task.deadline <= now
                }
                if expired:
                    # A hung worker cannot be interrupted individually:
                    # kill the whole pool, time out the expired units,
                    # and re-submit the surviving in-flight units to a
                    # fresh pool at their *current* attempt — they did
                    # not fail, their workers were collateral.
                    observer.counter("harness.timeouts").inc(len(expired))
                    survivors = [task for future, task in inflight.items()
                                 if future not in expired]
                    inflight.clear()
                    if pool is not None:
                        self._kill_pool(pool)
                    pool = self._new_pool(len(items))
                    pending.extendleft(reversed(survivors))
                    for task in expired.values():
                        fail_or_retry(
                            task, TIMEOUT,
                            f"TimeoutError: unit exceeded "
                            f"{self.unit_timeout:g}s wall-clock limit",
                            seconds=float(self.unit_timeout or 0.0),
                        )
                yield from finished
                finished.clear()
        finally:
            if pool is not None and inflight:
                self._kill_pool(pool)  # abandoned mid-run (gen close)
                pool = None
            if self.persistent:
                self._pool = pool  # keep warm workers for the next batch
            elif pool is not None:
                pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    @staticmethod
    def _absorb_obs(result: TaskResult) -> TaskResult:
        """Fold a worker unit's metrics delta and spans into this process."""
        payload = result.obs
        if payload:
            observer = get_observer()
            observer.metrics.merge_snapshot(payload.get("metrics") or {})
            observer.tracer.adopt(payload.get("spans") or [])
            result.obs = None
        return result

    def _imap_inline(
        self, fn: Callable, items: Iterable[object], keys: Iterable[object]
    ) -> Iterator[TaskResult]:
        policy = self._policy
        for key, item in zip(keys, items):
            result = _run_unit(fn, key, item)
            if result.error:
                result.category = policy.classify_unit_error(result.error)
            yield result
