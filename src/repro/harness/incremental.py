"""Incremental, compositional fault campaigns (FastFlip-style).

A monolithic ``repro campaign`` re-injects every workload × scheme from
scratch on every compiler change.  This module makes campaigns
*compositional*: the constructed idempotent regions are the natural
program sections, so each workload campaign is split into per-region
**sections**, each section is campaigned as an independent work unit on
the existing :class:`~repro.harness.campaign.CampaignRunner` stack, and
the per-trial outcomes are persisted in a content-addressed **outcome
store** under ``.repro-cache/outcomes/``.  A composer folds stored
section outcomes back into whole-program
:class:`~repro.sim.faults.CampaignResult` rows that are bit-identical to
a monolithic campaign at the same seeds and budgets.

How bit-identity is preserved
-----------------------------
Trial ``i``'s fault plan is a pure function of ``(seed, i, span)``
(:func:`repro.sim.faults.trial_plan`), and the faulted run's dynamic
prefix is identical to the fault-free run up to the injection point.  So
one fault-free *eligibility trace* — recording the dynamic position and
region of every fault-eligible event with the injectors' exact arming
rules — predicts where every trial lands without running it.  Sections
then execute exactly their assigned trial indices through
:func:`repro.sim.faults.run_planned_trial` (the same code path the
monolithic loop uses), and the composed buckets match trial for trial.

Section keys and staleness
--------------------------
A section's store key hashes ``(store schema, PIPELINE_VERSION,
workload, entry, label, kind, latency, unit seed, region key, owning
function's machine-code fingerprint)``.  The fingerprint is the SHA-256
of the function's formatted machine code — a *stable* content checksum
(the process-seeded :func:`repro.ir.verifier.cfg_checksum` cannot key a
persistent store).  Editing one function changes only its sections'
keys, so a re-campaign after a localized edit re-injects only that
function's sections; everything else composes from the store.  A
``--explain-stale`` report classifies every re-injected section
(new-section, code-changed, pipeline-changed, evicted, top-up) from a
small identity index kept next to the objects.

Store safety mirrors :mod:`repro.harness.cache`: atomic
write-temp-then-rename publication, corruption-is-a-miss (the entry is
deleted and the section re-injected), and hit/miss/store counters on the
``repro.obs`` registry (``campaign.store.*`` labeled ``store=<root>``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.machine import MachineProgram, format_machine_function
from repro.harness.cache import DEFAULT_CACHE_DIR, PIPELINE_VERSION
from repro.harness.campaign import (
    FLAVOURS,
    CampaignRunner,
    FaultCampaignSummary,
    RunManifest,
    campaign_labels,
)
from repro.harness.executor import derive_seed
from repro.harness.report import Telemetry
from repro.harness.resilience import UNIT_ERROR, PermanentUnitError
from repro.obs.context import get_observer
from repro.sim.faults import (
    FAULT_VALUE,
    REGION_UNKNOWN,
    CampaignResult,
    _publish_campaign_metrics,
    classify_outcome,
    format_rate,
    region_key,
    run_planned_trial,
    trial_plan,
)
from repro.sim.simulator import Simulator

#: Schema tag of outcome-store records; mixed into every section key, so
#: bumping it invalidates the whole store (a layout change is a miss).
STORE_SCHEMA = "repro.outcomes/1"

#: Section statuses reported by the planner.
SECTION_CACHED = "cached"   # every needed trial composed from the store
SECTION_TOPUP = "topup"     # record found, but short of the budget
SECTION_NEW = "new"         # no usable record: full re-injection


# ----------------------------------------------------------------------
# Stable code fingerprints
# ----------------------------------------------------------------------
def function_fingerprint(program: MachineProgram, name: str) -> str:
    """SHA-256 of one function's formatted machine code.

    The machine text is byte-stable for identical inputs (deterministic
    regalloc and block order), so this is a content address: it changes
    exactly when the function's generated code changes.
    """
    text = format_machine_function(program.functions[name])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def program_fingerprint(program: MachineProgram) -> str:
    """SHA-256 over every function's machine code (name-sorted)."""
    h = hashlib.sha256()
    for name in sorted(program.functions):
        h.update(name.encode("utf-8"))
        h.update(b"\x00")
        h.update(function_fingerprint(program, name).encode("ascii"))
        h.update(b"\x00")
    return h.hexdigest()


def region_owner(region: str, entry: str) -> str:
    """The function a region key belongs to (``func@block.index``).

    The pre-``rp`` window ``"?"`` precedes the first restart pointer of
    the entry function, so its code content is the entry's.
    """
    if region == REGION_UNKNOWN:
        return entry
    return region.split("@", 1)[0]


# ----------------------------------------------------------------------
# Eligibility trace: predict where every trial lands without running it
# ----------------------------------------------------------------------
@dataclass
class EligibilityTrace:
    """Fault-eligible events of one fault-free run, in dynamic order.

    ``value_events[i]`` is the dynamic instruction index at which the
    ``i``-th value-eligible instruction (has a destination register, not
    a memory op) retires — the exact quantity
    :class:`~repro.sim.faults.FaultInjector` compares against the trial
    target — and ``value_regions[i]`` is the region key the injector
    would attribute a fault there to.  ``control_*`` mirror the ``bnz``
    pre-hook arithmetic (``instructions + 1``).
    """

    span: int
    instructions: int
    value_events: List[int] = field(default_factory=list)
    value_regions: List[str] = field(default_factory=list)
    control_events: List[int] = field(default_factory=list)
    control_regions: List[str] = field(default_factory=list)

    def events(self, kind: str) -> Tuple[List[int], List[str]]:
        if kind == FAULT_VALUE:
            return self.value_events, self.value_regions
        return self.control_events, self.control_regions


def trace_eligibility(
    program: MachineProgram,
    func: str = "main",
    args: Tuple = (),
    max_instructions: int = 50_000_000,
) -> EligibilityTrace:
    """One fault-free run recording every fault-eligible event.

    The hooks replicate the injectors' arming checks exactly, at the
    same pre/post points, so a trial whose target resolves to event
    ``i`` here injects at precisely that instruction (the faulted run's
    dynamic prefix equals the fault-free prefix up to injection).
    """
    sim = Simulator(program, max_instructions=max_instructions)
    trace = EligibilityTrace(span=1, instructions=0)

    def pre(s: Simulator, instr) -> None:
        if instr.opcode == "bnz":
            trace.control_events.append(s.instructions + 1)
            trace.control_regions.append(region_key(s))

    def post(s: Simulator, instr, loc) -> None:
        if instr.dst is not None and not instr.is_memory:
            trace.value_events.append(s.instructions)
            trace.value_regions.append(region_key(s))

    sim.pre_hook = pre
    sim.post_hook = post
    sim.run(func, args)
    trace.instructions = sim.instructions
    trace.span = max(sim.instructions - 2, 1)
    return trace


@dataclass
class TrialAssignment:
    """Partition of a campaign's trial indices by landing region."""

    span: int
    #: region key -> sorted trial indices landing there
    regions: Dict[str, List[int]] = field(default_factory=dict)
    #: trials whose target falls past the last eligible event: they
    #: inject nothing and contribute only to the ``trials`` count
    uninjected: List[int] = field(default_factory=list)


def assign_trials(
    trace: EligibilityTrace,
    seed: int,
    trials: int,
    kind: str = FAULT_VALUE,
    detection_latency: int = 0,
) -> TrialAssignment:
    """Map every trial index to the region its fault lands in.

    Pure arithmetic over the trace: trial ``i``'s target comes from the
    exact :func:`~repro.sim.faults.trial_plan` the executing run will
    use, and the landing event is the first eligible event at or past
    it (binary search).
    """
    events, regions = trace.events(kind)
    assignment = TrialAssignment(span=trace.span)
    for index in range(trials):
        plan = trial_plan(
            seed, index, trace.span, kind=kind,
            detection_latency=detection_latency,
        )
        pos = bisect_left(events, plan.target_instruction)
        if pos >= len(events):
            assignment.uninjected.append(index)
        else:
            assignment.regions.setdefault(regions[pos], []).append(index)
    return assignment


# ----------------------------------------------------------------------
# Content-addressed outcome store
# ----------------------------------------------------------------------
def section_key(
    workload: str,
    entry: str,
    label: str,
    kind: str,
    latency: int,
    unit_seed: int,
    region: str,
    fingerprint: str,
) -> str:
    """SHA-256 content address of one section's outcome record."""
    h = hashlib.sha256()
    for part in (
        STORE_SCHEMA, PIPELINE_VERSION, workload, entry, label, kind,
        str(latency), str(unit_seed), region, fingerprint,
    ):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def section_identity(
    workload: str,
    entry: str,
    label: str,
    kind: str,
    latency: int,
    unit_seed: int,
    region: str,
) -> str:
    """Code-independent identity of a section (for staleness diagnosis).

    Everything in :func:`section_key` except the fingerprint and the
    pipeline version: the identity survives code edits, so the explain
    index can tell *why* a key missed (code changed vs never seen).
    """
    h = hashlib.sha256()
    for part in (workload, entry, label, kind, str(latency),
                 str(unit_seed), region):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


class OutcomeStore:
    """Content-addressed JSON store of per-section campaign outcomes.

    Mirrors :class:`~repro.harness.cache.ArtifactCache` safety: records
    publish via same-directory temp file + atomic ``os.replace``, any
    unreadable or schema-mismatched entry is a miss (deleted, then
    re-injected), and accounting lives on the ``repro.obs`` registry as
    ``campaign.store.<event>{store=<root>}`` — worker deltas ship back
    to the parent, so counters aggregate across the pool.
    """

    def __init__(self, root: Optional[str] = None, enabled: bool = True) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = os.path.join(root, "outcomes")
        self.enabled = enabled and not os.environ.get("REPRO_CACHE_DISABLE")

    def _count(self, name: str, amount: int = 1) -> None:
        get_observer().counter(f"campaign.store.{name}").inc(
            amount, store=self.root
        )

    @property
    def objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def path_for(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.json")

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def get(self, key: str) -> Optional[dict]:
        """Load a section record, or None on miss; corruption is a miss."""
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            self._count("misses")
            return None
        except (OSError, ValueError):
            self._count("misses")
            self._count("corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if not isinstance(record, dict) or record.get("schema") != STORE_SCHEMA:
            self._count("misses")
            self._count("corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self._count("hits")
        return record

    def put(self, key: str, record: dict) -> None:
        """Publish a section record atomically."""
        if not self.enabled:
            return
        self._write_json(self.path_for(key), record)
        self._count("stores")

    def _write_json(self, path: str, payload: dict) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Identity index (drives --explain-stale diagnosis)
    # ------------------------------------------------------------------
    def load_index(self) -> Dict[str, dict]:
        if not self.enabled:
            return {}
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                index = json.load(handle)
        except (OSError, ValueError):
            return {}
        return index if isinstance(index, dict) else {}

    def update_index(self, entries: Dict[str, dict]) -> None:
        """Merge identity -> {key, fingerprint, pipeline} rows (atomic)."""
        if not self.enabled or not entries:
            return
        index = self.load_index()
        changed = False
        for identity, row in entries.items():
            if index.get(identity) != row:
                index[identity] = row
                changed = True
        if changed:
            self._write_json(self.index_path, index)

    def entry_count(self) -> int:
        count = 0
        try:
            shards = os.listdir(self.objects_dir)
        except FileNotFoundError:
            return 0
        for shard in shards:
            shard_dir = os.path.join(self.objects_dir, shard)
            try:
                names = os.listdir(shard_dir)
            except NotADirectoryError:
                continue
            count += sum(1 for name in names if name.endswith(".json"))
        return count


_default_store: Optional[OutcomeStore] = None


def default_store() -> OutcomeStore:
    """The process-wide outcome store (created on first use)."""
    global _default_store
    if _default_store is None:
        _default_store = OutcomeStore()
    return _default_store


def set_default_store(store: Optional[OutcomeStore]) -> Optional[OutcomeStore]:
    """Swap the process-wide store (None resets); returns the previous."""
    global _default_store
    previous = _default_store
    _default_store = store
    return previous


# ----------------------------------------------------------------------
# Section records
# ----------------------------------------------------------------------
def detect_gap_histogram(rows: Sequence[Sequence[object]]) -> Dict[str, int]:
    """Power-of-two histogram of injection-to-detection gaps.

    Bucket ``"0"`` counts undetected trials and zero-gap detections;
    bucket ``"2^k"`` counts gaps in ``[2^k, 2^(k+1))``.
    """
    histogram: Dict[str, int] = {}
    for _index, _bucket, detected, gap in rows:
        if not detected or gap <= 0:
            label = "0"
        else:
            label = str(1 << (int(gap).bit_length() - 1))
        histogram[label] = histogram.get(label, 0) + 1
    return histogram


def summarize_rows(rows: Sequence[Sequence[object]]) -> Dict[str, int]:
    """Campaign-bucket totals of a section's trial rows."""
    summary = {
        "trials": 0, "injected": 0, "detected": 0,
        "recovered_correctly": 0, "wrong_result": 0, "crashed": 0,
        "undetected": 0,
    }
    for _index, bucket, detected, _gap in rows:
        summary["trials"] += 1
        summary["injected"] += 1
        if detected:
            summary["detected"] += 1
        summary[bucket] += 1
    return summary


def make_section_record(
    workload: str,
    entry: str,
    label: str,
    kind: str,
    latency: int,
    unit_seed: int,
    region: str,
    fingerprint: str,
    rows: Sequence[Sequence[object]],
) -> dict:
    """Assemble a schema-complete store record from trial rows.

    Rows are ``[index, bucket, detected, detect_gap]`` with one row per
    *injected* trial; the aggregates (bucket totals, detect-latency
    histogram) are derived so they can never drift from the rows.
    """
    ordered = sorted(rows, key=lambda row: row[0])
    return {
        "schema": STORE_SCHEMA,
        "pipeline": PIPELINE_VERSION,
        "workload": workload,
        "entry": entry,
        "label": label,
        "kind": kind,
        "latency": latency,
        "seed": unit_seed,
        "region": region,
        "fingerprint": fingerprint,
        "trials": [list(row) for row in ordered],
        "summary": summarize_rows(ordered),
        "detect_gaps": detect_gap_histogram(ordered),
    }


def merge_section_rows(
    record: Optional[dict],
    new_rows: Sequence[Sequence[object]],
) -> List[List[object]]:
    """Union existing record rows with newly executed ones (by index)."""
    by_index: Dict[int, List[object]] = {}
    if record is not None:
        for row in record.get("trials", []):
            by_index[int(row[0])] = list(row)
    for row in new_rows:
        by_index[int(row[0])] = list(row)
    return [by_index[index] for index in sorted(by_index)]


# ----------------------------------------------------------------------
# Section planning (probe the store, classify staleness)
# ----------------------------------------------------------------------
@dataclass
class SectionStatus:
    """One section's cache outcome within a campaign run."""

    workload: str
    label: str
    region: str
    key: str
    identity: str
    fingerprint: str
    status: str             # SECTION_CACHED | SECTION_TOPUP | SECTION_NEW
    reason: str             # staleness diagnosis ("" when fully cached)
    trials_needed: int
    trials_cached: int
    trials_run: int = 0


@dataclass
class _SectionPlan:
    """Internal planning row: status plus the data needed to execute."""

    status: SectionStatus
    needed: List[int]
    missing: List[int]
    record: Optional[dict]


def _classify_miss(
    index: Dict[str, dict], identity: str, fingerprint: str
) -> str:
    """Why a section key missed, from the identity index."""
    row = index.get(identity)
    if not isinstance(row, dict):
        return "new-section"
    if row.get("fingerprint") != fingerprint:
        old = str(row.get("fingerprint", ""))[:12]
        return f"code-changed ({old or '?'} -> {fingerprint[:12]})"
    if row.get("pipeline") != PIPELINE_VERSION:
        return f"pipeline-changed ({row.get('pipeline')} -> {PIPELINE_VERSION})"
    return "evicted (record missing from store)"


def plan_sections(
    store: OutcomeStore,
    workload: str,
    entry: str,
    label: str,
    kind: str,
    latency: int,
    unit_seed: int,
    assignment: TrialAssignment,
    program: MachineProgram,
) -> List[_SectionPlan]:
    """Probe the store for every section of one workload × label.

    Returns one plan row per landing region (sorted by region key for a
    deterministic unit order), each carrying the trial indices still to
    inject and the existing record to merge into.
    """
    index = store.load_index()
    observer = get_observer()
    plans: List[_SectionPlan] = []
    fingerprints: Dict[str, str] = {}
    for region in sorted(assignment.regions):
        needed = assignment.regions[region]
        owner = region_owner(region, entry)
        fingerprint = fingerprints.get(owner)
        if fingerprint is None:
            fingerprint = fingerprints[owner] = function_fingerprint(
                program, owner
            )
        key = section_key(
            workload, entry, label, kind, latency, unit_seed, region,
            fingerprint,
        )
        identity = section_identity(
            workload, entry, label, kind, latency, unit_seed, region
        )
        record = store.get(key)
        cached = set()
        if record is not None:
            cached = {int(row[0]) for row in record.get("trials", [])}
        missing = [i for i in needed if i not in cached]
        if record is None:
            status, reason = SECTION_NEW, _classify_miss(
                index, identity, fingerprint
            )
        elif missing:
            status, reason = SECTION_TOPUP, (
                f"top-up (+{len(missing)} of {len(needed)} trials)"
            )
        else:
            status, reason = SECTION_CACHED, ""
        observer.counter("campaign.sections").inc(status=status)
        plans.append(_SectionPlan(
            status=SectionStatus(
                workload=workload, label=label, region=region, key=key,
                identity=identity, fingerprint=fingerprint, status=status,
                reason=reason, trials_needed=len(needed),
                trials_cached=len(needed) - len(missing),
                trials_run=len(missing),
            ),
            needed=needed,
            missing=missing,
            record=record,
        ))
    return plans


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def compose_campaign(
    plans: Sequence[_SectionPlan],
    uninjected: int,
    per_region: Optional[Dict[str, CampaignResult]] = None,
) -> CampaignResult:
    """Fold section records into one whole-program CampaignResult.

    Only the trial indices the current assignment *needs* are counted —
    a record holding more trials than the budget (an earlier, larger
    run) composes down to exactly the requested budget, which is what
    keeps composed results bit-identical to a monolithic campaign.
    """
    from repro.recovery.predict import measured_region_results

    records = [p.record for p in plans if p.record is not None]
    indices = {p.status.region: set(p.needed) for p in plans}
    regions = measured_region_results(records, indices_by_region=indices)
    total = CampaignResult(trials=uninjected)
    for region in sorted(regions):
        total.merge(regions[region])
        if per_region is not None:
            per_region[region] = regions[region]
    return total


# ----------------------------------------------------------------------
# Section execution — worker for the distributed CampaignRunner path
# ----------------------------------------------------------------------
def _resolve_campaign_program(
    name: str, flavour: str, backend_name: Optional[str]
):
    """(program, injector_factory, entry-agnostic) for one campaign label."""
    from repro.experiments.common import build_pair

    original, idempotent = build_pair(name)
    if backend_name is not None:
        from repro.recovery.backends import get_backend

        backend = get_backend(backend_name)
        program = backend.campaign_program(
            original.program, idempotent.program
        )
        return idempotent.program, program, backend.make_injector
    program = (
        idempotent.program if flavour == "idempotent" else original.program
    )
    return idempotent.program, program, None


def run_section_trials(
    program: MachineProgram,
    reference_result: object,
    reference_output: List[object],
    region: str,
    indices: Sequence[int],
    span: int,
    unit_seed: int,
    func: str = "main",
    kind: str = FAULT_VALUE,
    detection_latency: int = 0,
    injector_factory=None,
) -> List[List[object]]:
    """Execute one section's trial indices; returns store rows.

    Every trial must land in the section's region — the assignment
    predicted it from the shared fault-free prefix — so a mismatch means
    the eligibility trace diverged from the injector's arming rules and
    is raised as a permanent (non-retryable) unit error rather than
    silently mis-filed.
    """
    rows: List[List[object]] = []
    for index in indices:
        outcome = run_planned_trial(
            program, unit_seed, index, span, func=func, kind=kind,
            detection_latency=detection_latency,
            injector_factory=injector_factory,
        )
        bucket = classify_outcome(outcome, reference_result, reference_output)
        landed = outcome.region or REGION_UNKNOWN if outcome.injected else None
        if bucket is None or landed != region:
            raise PermanentUnitError(
                f"section assignment drift: trial {index} was assigned to "
                f"region {region!r} but landed in {landed!r}"
            )
        rows.append([
            index, bucket, 1 if outcome.detected else 0, outcome.detect_gap,
        ])
    return rows


def _section_unit(payload: dict) -> dict:
    """Worker: inject one section's missing trial indices."""
    name = payload["workload"]
    idem_program, program, injector_factory = _resolve_campaign_program(
        name, payload["flavour"], payload.get("backend")
    )
    try:
        reference_sim = Simulator(idem_program)
        reference = reference_sim.run(payload["entry"])
        reference_output = list(reference_sim.output)
    except Exception as exc:
        raise PermanentUnitError(
            f"reference run failed for workload {name!r} "
            f"(entry {payload['entry']!r}): {type(exc).__name__}: {exc}"
        ) from exc
    rows = run_section_trials(
        program, reference, reference_output,
        region=payload["region"], indices=payload["indices"],
        span=payload["span"], unit_seed=payload["unit_seed"],
        func=payload["entry"], kind=payload["kind"],
        detection_latency=payload["detection_latency"],
        injector_factory=injector_factory,
    )
    return {
        "workload": name,
        "label": payload["label"],
        "region": payload["region"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Inline driver (serve, recovery compare, bench)
# ----------------------------------------------------------------------
@dataclass
class InlineCampaign:
    """Result + section accounting of one inline incremental campaign."""

    result: CampaignResult
    sections: List[SectionStatus] = field(default_factory=list)
    trials_from_store: int = 0
    trials_injected: int = 0

    @property
    def sections_reinjected(self) -> int:
        return sum(1 for s in self.sections if s.status != SECTION_CACHED)


def incremental_campaign(
    original_program: MachineProgram,
    idempotent_program: MachineProgram,
    reference_result: object,
    reference_output: List[object],
    trials: int,
    func: str = "main",
    kind: str = FAULT_VALUE,
    seed: int = 12345,
    detection_latency: int = 0,
    backend=None,
    flavour: str = "idempotent",
    name: str = "adhoc",
    store: Optional[OutcomeStore] = None,
    per_region: Optional[Dict[str, CampaignResult]] = None,
) -> InlineCampaign:
    """Store-backed campaign of one program, sections run inline.

    The single-process analogue of :func:`run_incremental_fault_campaign`
    — used by the ``serve`` ``faults`` op (incremental by default), the
    ``repro recovery compare --use-store`` join, and the campaign-cache
    bench.  ``seed`` is the *unit* seed (callers derive it exactly as
    their monolithic path would), so the composed result is bit-identical
    to :func:`repro.sim.faults.fault_campaign` (or
    ``backend.campaign(...)``) at the same parameters.

    ``name`` scopes store keys and should be stable across source edits
    (it is provenance, not content — the code content is in the
    per-function fingerprints), so editing one function of a served or
    benched program re-injects only that function's sections.
    """
    store = store or default_store()
    if backend is not None:
        label = backend.name
        program = backend.campaign_program(
            original_program, idempotent_program
        )
        injector_factory = backend.make_injector
    else:
        label = flavour
        program = (
            idempotent_program if flavour == "idempotent"
            else original_program
        )
        injector_factory = None

    trace = trace_eligibility(program, func=func)
    assignment = assign_trials(
        trace, seed, trials, kind=kind, detection_latency=detection_latency
    )
    plans = plan_sections(
        store, name, func, label, kind, detection_latency, seed,
        assignment, program,
    )
    index_entries: Dict[str, dict] = {}
    for plan in plans:
        if plan.missing:
            rows = run_section_trials(
                program, reference_result, reference_output,
                region=plan.status.region, indices=plan.missing,
                span=assignment.span, unit_seed=seed, func=func, kind=kind,
                detection_latency=detection_latency,
                injector_factory=injector_factory,
            )
            merged = merge_section_rows(plan.record, rows)
            plan.record = make_section_record(
                name, func, label, kind, detection_latency, seed,
                plan.status.region, plan.status.fingerprint, merged,
            )
            store.put(plan.status.key, plan.record)
        index_entries[plan.status.identity] = {
            "key": plan.status.key,
            "fingerprint": plan.status.fingerprint,
            "pipeline": PIPELINE_VERSION,
        }
    store.update_index(index_entries)

    result = compose_campaign(
        plans, len(assignment.uninjected), per_region=per_region
    )
    _publish_campaign_metrics(result, kind)
    outcome = InlineCampaign(
        result=result,
        sections=[plan.status for plan in plans],
        trials_from_store=sum(p.status.trials_cached for p in plans),
        trials_injected=sum(len(p.missing) for p in plans),
    )
    observer = get_observer()
    if outcome.trials_from_store:
        observer.counter("campaign.trials").inc(
            outcome.trials_from_store, source="store"
        )
    if outcome.trials_injected:
        observer.counter("campaign.trials").inc(
            outcome.trials_injected, source="injected"
        )
    return outcome


# ----------------------------------------------------------------------
# Suite-wide incremental campaign (the `repro campaign --incremental` path)
# ----------------------------------------------------------------------
@dataclass
class IncrementalCampaignSummary(FaultCampaignSummary):
    """Fault-campaign summary plus per-section cache accounting."""

    sections: List[SectionStatus] = field(default_factory=list)
    store_root: str = ""
    trials_from_store: int = 0
    trials_injected: int = 0
    #: (workload, label) -> region -> measured CampaignResult
    per_region: Dict[Tuple[str, str], Dict[str, CampaignResult]] = field(
        default_factory=dict
    )

    @property
    def sections_total(self) -> int:
        return len(self.sections)

    @property
    def sections_cached(self) -> int:
        return sum(1 for s in self.sections if s.status == SECTION_CACHED)

    @property
    def sections_reinjected(self) -> int:
        return self.sections_total - self.sections_cached


def _section_unit_id(
    workload: str,
    label_tag: str,
    kind: str,
    seed: int,
    latency: int,
    key: str,
    indices: Sequence[int],
) -> str:
    digest = hashlib.sha256(
        ",".join(str(i) for i in indices).encode("ascii")
    ).hexdigest()[:8]
    return (
        f"{workload}:{label_tag}:{kind}:seed{seed}:lat{latency}"
        f":sec{key[:12]}:n{len(indices)}h{digest}"
    )


def run_incremental_fault_campaign(
    names: Optional[Sequence[str]] = None,
    trials: int = 40,
    seed: int = 12345,
    kind: str = FAULT_VALUE,
    detection_latency: int = 0,
    jobs: int = 1,
    manifest_path: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    retry=None,
    unit_timeout: Optional[float] = None,
    chaos=None,
    flavours: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
    store: Optional[OutcomeStore] = None,
) -> IncrementalCampaignSummary:
    """Suite-wide fault campaign, sectioned and backed by the outcome store.

    The incremental counterpart of
    :func:`repro.harness.campaign.run_fault_campaign`: same workload ×
    label grid, same spawn-key seeds, but each landing region is one
    work unit and previously stored sections are composed instead of
    re-injected.  Composed results are bit-identical to the monolithic
    campaign at equal budgets.
    """
    from repro.experiments.common import prebuild_pairs, resolve_workloads
    from repro.recovery.backends import get_backend

    telemetry = telemetry or Telemetry(label="incremental campaign")
    observer = get_observer()
    if manifest_path:
        observer.log(f"campaign manifest: {manifest_path}")
    store = store or default_store()
    flavour_list, backend_list = campaign_labels(flavours, backends)
    workloads = resolve_workloads(names)
    prebuild_pairs([w.name for w in workloads], jobs=jobs, telemetry=telemetry)

    # ------------------------------------------------------------------
    # Plan: one eligibility trace per workload × label, then store probes
    # ------------------------------------------------------------------
    label_specs: List[Tuple[str, str, Optional[str], str]] = []
    for flavour in flavour_list:
        label_specs.append((flavour, flavour, None, flavour))
    for backend_name in backend_list:
        backend = get_backend(backend_name)
        label_specs.append(
            (backend_name, backend.flavour, backend_name, backend.seed_key)
        )

    campaign_plans: Dict[Tuple[str, str], List[_SectionPlan]] = {}
    uninjected: Dict[Tuple[str, str], int] = {}
    units: List[Tuple[str, dict]] = []
    provenance: Dict[str, dict] = {}
    unit_meta: Dict[str, Tuple[Tuple[str, str], int]] = {}
    with telemetry.phase(
        "plan", units=len(workloads) * max(1, len(label_specs))
    ):
        for workload in workloads:
            for label, flavour, backend_name, seed_key in label_specs:
                _idem, program, _factory = _resolve_campaign_program(
                    workload.name, flavour, backend_name
                )
                unit_seed = derive_seed(seed, workload.name, seed_key)
                trace = trace_eligibility(program, func=workload.entry)
                assignment = assign_trials(
                    trace, unit_seed, trials, kind=kind,
                    detection_latency=detection_latency,
                )
                plans = plan_sections(
                    store, workload.name, workload.entry, label, kind,
                    detection_latency, unit_seed, assignment, program,
                )
                campaign_plans[(workload.name, label)] = plans
                uninjected[(workload.name, label)] = len(
                    assignment.uninjected
                )
                label_tag = (
                    f"backend-{backend_name}" if backend_name else flavour
                )
                for plan_index, plan in enumerate(plans):
                    if not plan.missing:
                        continue
                    unit_id = _section_unit_id(
                        workload.name, label_tag, kind, seed,
                        detection_latency, plan.status.key, plan.missing,
                    )
                    units.append((unit_id, {
                        "workload": workload.name,
                        "flavour": flavour,
                        "backend": backend_name,
                        "label": label,
                        "entry": workload.entry,
                        "region": plan.status.region,
                        "indices": plan.missing,
                        "span": assignment.span,
                        "unit_seed": unit_seed,
                        "kind": kind,
                        "detection_latency": detection_latency,
                    }))
                    provenance[unit_id] = {
                        "pipeline": PIPELINE_VERSION,
                        "schema": STORE_SCHEMA,
                        "label": label_tag,
                        "cfg": plan.status.fingerprint,
                    }
                    unit_meta[unit_id] = (
                        (workload.name, label), plan_index,
                    )

    # ------------------------------------------------------------------
    # Inject the missing sections on the shared runner stack
    # ------------------------------------------------------------------
    manifest = RunManifest(manifest_path) if manifest_path else None
    runner = CampaignRunner(
        manifest=manifest, jobs=jobs, telemetry=telemetry,
        retry=retry, unit_timeout=unit_timeout, chaos=chaos,
    )
    records = runner.run(
        _section_unit, units, phase="inject", provenance=provenance
    )

    # ------------------------------------------------------------------
    # Merge executed sections into the store, then compose
    # ------------------------------------------------------------------
    summary = IncrementalCampaignSummary(
        trials=trials, seed=seed, kind=kind,
        labels=tuple(label for label, _f, _b, _s in label_specs),
        executed_units=runner.executed,
        skipped_units=runner.skipped,
        failed_units=runner.failed,
        quarantined_units=runner.quarantined + runner.quarantine_skipped,
        telemetry=telemetry,
        store_root=store.root,
    )
    index_entries: Dict[str, dict] = {}
    for unit_id, _payload in units:
        record = records.get(unit_id)
        if record is None:
            continue
        campaign_key, plan_index = unit_meta[unit_id]
        plan = campaign_plans[campaign_key][plan_index]
        if record.quarantined:
            summary.errors.append(
                f"{unit_id}: quarantined after {record.attempts} attempts "
                f"[{record.data.get('category', UNIT_ERROR)}]: "
                f"{record.data.get('error')}"
            )
            summary.quarantined.append(
                (unit_id, record.data.get("category", UNIT_ERROR))
            )
            continue
        if not record.ok:
            summary.errors.append(f"{unit_id}: {record.data.get('error')}")
            continue
        rows = record.data.get("rows", [])
        merged = merge_section_rows(plan.record, rows)
        workload_name, label = campaign_key
        plan.record = make_section_record(
            workload_name, _payload["entry"], label, kind,
            detection_latency, _payload["unit_seed"],
            plan.status.region, plan.status.fingerprint, merged,
        )
        store.put(plan.status.key, plan.record)

    for (workload_name, label), plans in campaign_plans.items():
        for plan in plans:
            summary.sections.append(plan.status)
            index_entries[plan.status.identity] = {
                "key": plan.status.key,
                "fingerprint": plan.status.fingerprint,
                "pipeline": PIPELINE_VERSION,
            }
        per_region: Dict[str, CampaignResult] = {}
        composed = compose_campaign(
            plans, uninjected[(workload_name, label)], per_region=per_region
        )
        summary.results[(workload_name, label)] = composed
        summary.per_region[(workload_name, label)] = per_region
        _publish_campaign_metrics(composed, kind)
    store.update_index(index_entries)
    summary.trials_from_store = sum(
        s.trials_cached for s in summary.sections
    )
    summary.trials_injected = sum(s.trials_run for s in summary.sections)
    if summary.trials_from_store:
        observer.counter("campaign.trials").inc(
            summary.trials_from_store, source="store"
        )
    if summary.trials_injected:
        observer.counter("campaign.trials").inc(
            summary.trials_injected, source="injected"
        )
    return summary


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def format_incremental_report(summary: IncrementalCampaignSummary) -> str:
    """The composed campaign tables (stdout).

    Deliberately omits unit/section accounting — that goes to stderr via
    :func:`format_section_accounting` — so a warm re-run's stdout is
    byte-identical to the cold run that populated the store.
    """
    from repro.experiments.common import format_table

    headers = ["workload", "flavour", "trials", "injected", "recovered",
               "wrong", "crashed", "recovery"]
    rows = []
    for (name, label), result in summary.results.items():
        rows.append([
            name, label, result.trials, result.injected,
            result.recovered_correctly, result.wrong_result, result.crashed,
            format_rate(result),
        ])
    lines = [format_table(headers, rows), ""]
    for label in summary.labels:
        total = summary.flavour_totals(label)
        undetected = (
            f" undetected={total.undetected}" if total.undetected else ""
        )
        lines.append(
            f"{label:10s}: injected={total.injected} "
            f"recovered={total.recovered_correctly} "
            f"wrong={total.wrong_result} crashed={total.crashed}"
            f"{undetected} "
            f"({format_rate(total)} recovery)"
        )
    for error in summary.errors:
        lines.append(f"  ! {error}")
    return "\n".join(lines)


def format_section_accounting(summary: IncrementalCampaignSummary) -> str:
    """One-line section/trial cache accounting (stderr)."""
    return (
        f"sections: {summary.sections_total} total, "
        f"{summary.sections_cached} cached, "
        f"{summary.sections_reinjected} re-injected "
        f"({summary.trials_from_store} trials from store, "
        f"{summary.trials_injected} injected); "
        f"store: {summary.store_root}"
    )


def format_stale_report(summary: IncrementalCampaignSummary) -> str:
    """The ``--explain-stale`` view: which sections re-ran, and why."""
    lines = [format_section_accounting(summary)]
    stale = [s for s in summary.sections if s.status != SECTION_CACHED]
    if not stale:
        lines.append("stale sections: none (every section composed "
                     "from the store)")
        return "\n".join(lines)
    lines.append("stale sections:")
    for status in stale:
        lines.append(
            f"  {status.workload}:{status.label} {status.region} "
            f"[{status.trials_run} trials]: {status.reason}"
        )
    return "\n".join(lines)
