"""Run telemetry: wall time, per-phase breakdown, cache effectiveness.

Every harness entry point builds a :class:`Telemetry`, times its phases
with :meth:`Telemetry.phase`, attaches cache statistics, and prints
:meth:`Telemetry.format_summary` — the human-readable accounting of
where a run's time went and how much work the artifact cache avoided.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.cache import ArtifactCache, CacheStats


@dataclass
class PhaseStat:
    """Accumulated wall time and unit count for one named phase."""

    name: str
    seconds: float = 0.0
    units: int = 0


@dataclass
class Telemetry:
    """Wall-clock accounting for one harness run."""

    label: str = "run"
    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    cache_stats: Optional[CacheStats] = None
    _started: float = field(default_factory=time.perf_counter)
    _finished: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str, units: int = 0):
        """Time a phase; re-entering the same name accumulates."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - started, units)

    def add_phase(self, name: str, seconds: float, units: int = 0) -> None:
        stat = self.phases.setdefault(name, PhaseStat(name))
        stat.seconds += seconds
        stat.units += units

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_cache(self, cache: ArtifactCache) -> None:
        """Snapshot a cache's counters into the summary."""
        if self.cache_stats is None:
            self.cache_stats = CacheStats()
        self.cache_stats.merge(cache.stats)

    def finish(self) -> float:
        """Freeze total wall time; returns it in seconds."""
        if self._finished is None:
            self._finished = time.perf_counter()
        return self.wall_seconds

    @property
    def wall_seconds(self) -> float:
        end = self._finished if self._finished is not None else time.perf_counter()
        return end - self._started

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def format_summary(self) -> str:
        lines = [f"[harness] {self.label}: {self.wall_seconds:.2f}s wall"]
        for stat in self.phases.values():
            detail = f"  phase {stat.name:<12s} {stat.seconds:8.2f}s"
            if stat.units:
                detail += f"  ({stat.units} units)"
            lines.append(detail)
        if self.cache_stats is not None:
            lines.append(f"  cache: {self.cache_stats.summary()}")
        for text in self.notes:
            lines.append(f"  {text}")
        return "\n".join(lines)
