"""Run telemetry: wall time, per-phase breakdown, cache effectiveness.

Every harness entry point builds a :class:`Telemetry`, times its phases
with :meth:`Telemetry.phase`, attaches the caches it used, and prints
:meth:`Telemetry.format_summary` — the human-readable accounting of
where a run's time went and how much work the artifact cache avoided.

Telemetry is a *run-scoped view over* :mod:`repro.obs`, not a separate
counter store: ``phase`` records a ``harness.<name>`` span and
accumulates ``harness.phase.seconds`` / ``harness.phase.units``
counters on the global metrics registry, and the summary is computed
from the registry's delta since the Telemetry was constructed.  That
delta includes whatever :class:`~repro.harness.executor.TaskExecutor`
workers shipped back, so cache effectiveness is accounted across the
whole process tree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import List, Optional, Tuple

from repro.harness.cache import ArtifactCache, CacheStats
from repro.obs.context import Observer, get_observer
from repro.obs.metrics import counter_values, diff_snapshots


class Telemetry:
    """Wall-clock and metrics accounting for one harness run."""

    def __init__(self, label: str = "run", observer: Optional[Observer] = None) -> None:
        self.label = label
        self.observer = observer or get_observer()
        self.notes: List[str] = []
        self._cache_labels: List[str] = []
        self._phase_order: List[str] = []
        self._baseline = self.observer.metrics.snapshot()
        self._started = time.perf_counter()
        self._finished: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str, units: int = 0):
        """Time a phase; re-entering the same name accumulates."""
        started = time.perf_counter()
        with self.observer.span(f"harness.{name}", run=self.label):
            try:
                yield
            finally:
                self.add_phase(name, time.perf_counter() - started, units)

    def add_phase(self, name: str, seconds: float, units: int = 0) -> None:
        if name not in self._phase_order:
            self._phase_order.append(name)
        metrics = self.observer.metrics
        metrics.counter("harness.phase.seconds").inc(
            seconds, run=self.label, phase=name
        )
        if units:
            metrics.counter("harness.phase.units").inc(
                units, run=self.label, phase=name
            )

    def note(self, text: str) -> None:
        self.notes.append(text)

    def attach_cache(self, cache: ArtifactCache) -> None:
        """Include a cache's counters (since this run began) in the summary."""
        label = getattr(cache, "obs_label", None)
        if label is not None and label not in self._cache_labels:
            self._cache_labels.append(label)

    def finish(self) -> float:
        """Freeze total wall time; returns it in seconds."""
        if self._finished is None:
            self._finished = time.perf_counter()
        return self.wall_seconds

    @property
    def wall_seconds(self) -> float:
        end = self._finished if self._finished is not None else time.perf_counter()
        return end - self._started

    # ------------------------------------------------------------------
    # Reporting (computed from the registry delta since construction)
    # ------------------------------------------------------------------
    def _delta(self) -> dict:
        return diff_snapshots(self._baseline, self.observer.metrics.snapshot())

    def phase_stats(self) -> List[Tuple[str, float, int]]:
        """(name, seconds, units) per phase of *this* run, in first-use order."""
        delta = self._delta()
        seconds = {
            labels.get("phase"): value
            for labels, value in counter_values(delta, "harness.phase.seconds")
            if labels.get("run") == self.label
        }
        units = {
            labels.get("phase"): value
            for labels, value in counter_values(delta, "harness.phase.units")
            if labels.get("run") == self.label
        }
        names = list(self._phase_order)
        names += [n for n in seconds if n not in names]
        return [
            (name, seconds.get(name, 0.0), int(units.get(name, 0)))
            for name in names
        ]

    def cache_stats(self) -> Optional[CacheStats]:
        """Summed counters of every attached cache since this run began."""
        if not self._cache_labels:
            return None
        delta = self._delta()
        total = CacheStats()
        for label in self._cache_labels:
            total.merge(CacheStats.from_snapshot(delta, cache_label=label))
        return total

    def format_summary(self) -> str:
        lines = [f"[harness] {self.label}: {self.wall_seconds:.2f}s wall"]
        for name, seconds, units in self.phase_stats():
            detail = f"  phase {name:<12s} {seconds:8.2f}s"
            if units:
                detail += f"  ({units} units)"
            lines.append(detail)
        cache_stats = self.cache_stats()
        if cache_stats is not None:
            lines.append(f"  cache: {cache_stats.summary()}")
        for text in self.notes:
            lines.append(f"  {text}")
        return "\n".join(lines)
