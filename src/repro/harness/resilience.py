"""Resilient execution policies: retries, timeouts, quarantine, chaos.

The paper's thesis is that an idempotent region can recover from a
failure by jumping back to its entry and re-executing.  Harness work
units have exactly that property — a fault-trial shard is a pure
function of its payload (spawn-key seeds, content-addressed builds) —
so the orchestration layer can apply the same recovery idea to itself:
a unit whose *worker* fails (killed by a signal, hung, pool torn down)
is simply re-executed from its entry on a fresh worker, and the merged
campaign result is unchanged.

Three pieces live here:

- an **error taxonomy** separating *transient* failures (worker lost,
  wall-clock timeout, corrupted cache entry) — where re-execution is
  sound and likely to succeed — from *permanent* ones (the unit's own
  code raised), where re-execution would deterministically fail again;
- :class:`RetryPolicy` — how many attempts a unit gets and how long to
  back off between them, with *deterministic* jitter (spawn-key style,
  like :func:`repro.harness.executor.derive_seed`) so two runs of the
  same campaign schedule identically;
- :class:`ChaosPolicy` — a test hook that makes pool workers crash,
  hang, or raise on chosen units, deterministically, so the recovery
  machinery is provable under test and in CI smoke runs.

Quarantine (recording a unit that exhausted its budget so resume skips
it) is implemented by :class:`repro.harness.campaign.CampaignRunner` on
top of the attempt/category accounting these policies produce.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
#: The worker process died or the pool could not transport the result:
#: a killed worker, ``BrokenProcessPool``, an unpicklable result.  The
#: unit itself may never have run — re-execution is sound.
WORKER_LOST = "worker-lost"
#: The unit exceeded its wall-clock budget and its worker was killed.
TIMEOUT = "timeout"
#: The unit raised an exception whose type is known to be retryable
#: (e.g. a corrupted cache entry that the next attempt rebuilds).
TRANSIENT_ERROR = "transient-error"
#: The unit's own code raised: deterministic, re-execution would fail
#: again.  Never retried; quarantined when a retry policy is active.
UNIT_ERROR = "unit-error"

TRANSIENT_CATEGORIES = frozenset({WORKER_LOST, TIMEOUT, TRANSIENT_ERROR})


def is_transient(category: Optional[str]) -> bool:
    """Whether re-executing a unit that failed this way is worthwhile."""
    return category in TRANSIENT_CATEGORIES


class ChaosError(RuntimeError):
    """Raised inside a work unit by :class:`ChaosPolicy` ``raise`` mode."""


class PermanentUnitError(RuntimeError):
    """A unit failure known to be deterministic (never retried).

    Work functions raise this to assert "retrying cannot help" — e.g.
    a fault-campaign unit whose *reference* run crashes, which means the
    build itself is broken for every future attempt too.
    """


def _unit_interval(*path: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from a derivation path.

    The same spawn-key idea as :func:`repro.harness.executor.derive_seed`
    (SHA-256 over the ``repr`` of each path component), kept local so the
    policy layer has no import cycle with the executor.
    """
    digest = hashlib.sha256()
    for part in path:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return int.from_bytes(digest.digest()[:8], "big") / 2.0 ** 64


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff schedule for transient unit failures.

    ``max_attempts`` counts *total* executions: 1 means no retries.
    Backoff for the retry after attempt ``n`` is
    ``min(backoff_base * backoff_factor**(n-1), backoff_max)`` scaled by
    ``1 + jitter * u`` where ``u`` is a deterministic uniform draw from
    ``(seed, key, n)`` — so a re-run of the same campaign backs off by
    the same amounts, yet distinct units never thundering-herd.
    """

    max_attempts: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    #: Exception type names (the leading ``TypeName:`` of a unit error)
    #: classified transient even though the unit itself raised them.
    transient_exceptions: FrozenSet[str] = frozenset({"CacheCorruptionError"})

    def should_retry(self, category: Optional[str], attempt: int) -> bool:
        """Whether a unit failing this way on this attempt gets another."""
        return is_transient(category) and attempt < self.max_attempts

    def delay(self, key: object, attempt: int) -> float:
        """Seconds to back off before re-submitting after ``attempt``."""
        base = min(
            self.backoff_base * self.backoff_factor ** max(attempt - 1, 0),
            self.backoff_max,
        )
        return base * (1.0 + self.jitter * _unit_interval(
            self.seed, "retry", repr(key), attempt
        ))

    def classify_unit_error(self, error: Optional[str]) -> str:
        """Category of an exception a unit raised (``"TypeName: msg"``)."""
        if not error:
            return UNIT_ERROR
        type_name = error.split(":", 1)[0].strip()
        if type_name in self.transient_exceptions:
            return TRANSIENT_ERROR
        return UNIT_ERROR


#: Executor default when no policy is given: one free re-execution for
#: pool-level failures (worker lost, timeout) and none for unit errors.
#: Invisible unless a worker actually dies.
DEFAULT_RETRY = RetryPolicy(max_attempts=2)


# ----------------------------------------------------------------------
# Chaos policy (test hook)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosPolicy:
    """Deterministic worker-failure injection for pool work units.

    Only applies on the process-pool path (never inline — a chaos crash
    inline would kill the orchestrating process) and only to the first
    ``affect_attempts`` attempts of a unit, so retried units recover and
    a chaotic campaign converges to the undisturbed result.

    Units are chosen either explicitly (``crash_units`` /
    ``hang_units`` / ``raise_units`` match ``str(key)``) or by seeded
    rates: a deterministic uniform draw from ``(seed, key, attempt)``
    falls into the ``crash`` / ``hang`` / ``raise`` bands.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    hang_seconds: float = 3600.0
    affect_attempts: int = 1
    crash_units: Tuple[str, ...] = ()
    hang_units: Tuple[str, ...] = ()
    raise_units: Tuple[str, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Build a policy from a CLI spec.

        Either a bare integer seed (``--chaos 7`` — crash rate defaults
        to 0.25) or comma-separated ``key=value`` pairs::

            --chaos seed=7,crash=0.3,hang=0.1,raise=0,hang-seconds=30
        """
        spec = spec.strip()
        try:
            return cls(seed=int(spec), crash_rate=0.25)
        except ValueError:
            pass
        fields = {
            "seed": ("seed", int),
            "crash": ("crash_rate", float),
            "hang": ("hang_rate", float),
            "raise": ("raise_rate", float),
            "hang-seconds": ("hang_seconds", float),
            "hang_seconds": ("hang_seconds", float),
            "attempts": ("affect_attempts", int),
        }
        kwargs = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, value = part.partition("=")
            try:
                attr, cast = fields[name.strip()]
                kwargs[attr] = cast(value.strip())
            except (KeyError, ValueError):
                raise ValueError(
                    f"bad chaos spec component {part!r}; expected "
                    f"seed=N,crash=R,hang=R,raise=R,hang-seconds=S"
                ) from None
        return cls(**kwargs)

    def mode(self, key: object, attempt: int) -> Optional[str]:
        """``"crash"`` | ``"hang"`` | ``"raise"`` | None for this attempt."""
        if attempt > self.affect_attempts:
            return None
        name = str(key)
        if name in self.crash_units:
            return "crash"
        if name in self.hang_units:
            return "hang"
        if name in self.raise_units:
            return "raise"
        draw = _unit_interval(self.seed, "chaos", name, attempt)
        if draw < self.crash_rate:
            return "crash"
        if draw < self.crash_rate + self.hang_rate:
            return "hang"
        if draw < self.crash_rate + self.hang_rate + self.raise_rate:
            return "raise"
        return None

    def apply(self, key: object, attempt: int) -> None:
        """Worker-side: fault this attempt according to :meth:`mode`."""
        mode = self.mode(key, attempt)
        if mode is None:
            return
        if mode == "crash":
            print(f"[chaos] crashing worker on unit {key} "
                  f"(attempt {attempt})", file=sys.stderr, flush=True)
            os._exit(86)
        if mode == "hang":
            print(f"[chaos] hanging unit {key} (attempt {attempt})",
                  file=sys.stderr, flush=True)
            time.sleep(self.hang_seconds)
            return
        raise ChaosError(f"chaos raise on unit {key} (attempt {attempt})")
