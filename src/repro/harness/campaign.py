"""Resumable campaign orchestration.

A *campaign* is a set of independent work units (e.g. every
workload × binary-flavour × trial-shard of a fault-injection study).
:class:`CampaignRunner` executes units through a
:class:`~repro.harness.executor.TaskExecutor` and records each completed
unit as one JSON line in a :class:`RunManifest`.  Because rows are
appended the moment a unit finishes, killing a campaign loses at most
the in-flight units: re-invoking it with the same manifest skips every
recorded unit and executes only the remainder.

The concrete campaign shipped here is the paper's fault-injection study
(§6.3) scaled to the whole benchmark suite: :func:`run_fault_campaign`
shards trials spawn-key style (see
:func:`repro.sim.faults.trial_plan`), so the merged result of any
sharding — across processes or across resumed invocations — is
bit-identical to one serial run.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import build_pair, format_table, prebuild_pairs, resolve_workloads
from repro.harness.executor import TaskExecutor, derive_seed
from repro.harness.report import Telemetry
from repro.harness.resilience import (
    UNIT_ERROR,
    ChaosPolicy,
    PermanentUnitError,
    RetryPolicy,
)
from repro.obs.context import get_observer
from repro.sim.faults import (
    FAULT_VALUE,
    CampaignResult,
    fault_campaign,
    format_rate,
)
from repro.sim.simulator import Simulator

FLAVOURS = ("original", "idempotent")


def parse_label_subset(
    names: Optional[Sequence[str]],
    valid: Sequence[str],
    what: str,
) -> Tuple[str, ...]:
    """Validate a ``--flavours``/``--backends`` subset.

    Unknown names are a hard error listing the valid choices; ``None``
    (flag not passed) returns the empty tuple so callers can apply their
    own default.
    """
    if names is None:
        return ()
    unknown = [name for name in names if name not in valid]
    if unknown:
        raise ValueError(
            f"unknown {what}(s) {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(valid)})"
        )
    return tuple(names)

#: Manifest row statuses.  ``done`` resumes as complete, ``failed`` is
#: retried on resume, ``quarantined`` (retry budget exhausted under a
#: resilience policy) is *skipped* on resume with a visible warning.
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_QUARANTINED = "quarantined"


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclass
class UnitRecord:
    """One manifest row: a completed (or failed) work unit."""

    unit_id: str
    status: str  # "done" | "failed" | "quarantined"
    seconds: float = 0.0
    data: dict = field(default_factory=dict)
    #: Executions this unit took (retries included); old manifests
    #: without the field load as 1.
    attempts: int = 1
    #: Compiler/scheme provenance stamped when the unit ran (pipeline
    #: version, flavour/backend, cfg checksum of the campaigned code).
    #: Old manifests load as ``{}`` and resume unconditionally; rows
    #: with provenance are re-run when it no longer matches, so a
    #: resumed campaign never silently mixes outcomes across compiler
    #: versions.
    provenance: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_DONE

    @property
    def quarantined(self) -> bool:
        return self.status == STATUS_QUARANTINED


class RunManifest:
    """Append-only JSON-lines record of completed campaign units.

    Rows are flushed and fsync'd per unit; a torn final line (killed
    mid-write, power loss) is skipped on load, so the unit simply
    re-executes on resume.  The last row for a unit id wins, letting a
    failed unit be retried and its later success supersede the failure.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def load(self) -> Dict[str, UnitRecord]:
        records: Dict[str, UnitRecord] = {}
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except FileNotFoundError:
            return records
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                    record = UnitRecord(
                        unit_id=row["unit_id"],
                        status=row["status"],
                        seconds=float(row.get("seconds", 0.0)),
                        data=row.get("data", {}),
                        attempts=int(row.get("attempts", 1)),
                        provenance=row.get("provenance", {}),
                    )
                except (ValueError, KeyError, TypeError):
                    continue  # torn or foreign line: unit will re-run
                records[record.unit_id] = record
        return records

    def append(self, record: UnitRecord) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(asdict(record), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())  # crash-consistent: row survives power loss


# ----------------------------------------------------------------------
# Generic runner
# ----------------------------------------------------------------------
class CampaignRunner:
    """Executes (unit_id, payload) units with skip-completed semantics.

    With a resilience policy active (any of ``retry`` / ``unit_timeout``
    / ``chaos``), a unit that still fails after the executor's retry
    machinery is *quarantined*: recorded with its attempt count and
    error category, skipped on resume with a visible warning, and
    surfaced in the campaign report.  Without one, failures keep the
    legacy ``failed`` status and are retried on the next invocation.
    """

    def __init__(
        self,
        manifest: Optional[RunManifest] = None,
        jobs: int = 1,
        telemetry: Optional[Telemetry] = None,
        retry: Optional[RetryPolicy] = None,
        unit_timeout: Optional[float] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        self.manifest = manifest
        self.jobs = jobs
        self.telemetry = telemetry or Telemetry(label="campaign")
        self.retry = retry
        self.unit_timeout = unit_timeout
        self.chaos = chaos
        self.executed = 0
        self.skipped = 0
        self.failed = 0
        self.quarantined = 0
        self.quarantine_skipped = 0

    @property
    def _resilient(self) -> bool:
        return (
            self.retry is not None
            or self.unit_timeout is not None
            or self.chaos is not None
        )

    def run(
        self,
        worker: Callable[[dict], dict],
        units: Sequence[Tuple[str, dict]],
        phase: str = "campaign",
        provenance: Optional[Dict[str, dict]] = None,
    ) -> Dict[str, UnitRecord]:
        """Run every unit not already recorded as done; returns all records.

        ``worker`` must be a module-level function ``payload -> dict``
        with a JSON-serializable result (it becomes the manifest row).

        ``provenance`` maps unit id -> expected provenance dict (see
        :class:`UnitRecord`).  A done manifest row whose *recorded*
        provenance is non-empty and differs from the expected one is
        stale — written by a different compiler pipeline or against
        different code — and re-runs instead of resuming, with a
        visible warning.  Rows without provenance (old manifests)
        resume unconditionally.
        """
        provenance = provenance or {}
        records = self.manifest.load() if self.manifest else {}
        observer = get_observer()
        stale: set = set()
        for uid, record in records.items():
            if not record.ok or not record.provenance:
                continue
            expected = provenance.get(uid)
            if expected and record.provenance != expected:
                stale.add(uid)
                observer.log(
                    f"stale manifest row re-run: {uid} "
                    f"(recorded provenance {record.provenance} != "
                    f"expected {expected})"
                )
                observer.counter("campaign.stale_units").inc()
        done = {
            uid for uid, record in records.items()
            if record.ok and uid not in stale
        }
        poisoned = {uid for uid, record in records.items() if record.quarantined}
        todo = [
            (uid, payload) for uid, payload in units
            if uid not in done and uid not in poisoned
        ]
        self.skipped = sum(1 for uid, _ in units if uid in done)
        for uid, _ in units:
            if uid not in poisoned:
                continue
            self.quarantine_skipped += 1
            record = records[uid]
            observer.log(
                f"quarantined unit skipped: {uid} "
                f"({record.data.get('category', UNIT_ERROR)} after "
                f"{record.attempts} attempts) — pass --fresh to retry it"
            )
            observer.counter("harness.quarantined").inc(event="skipped")
        if self.manifest is not None:
            observer.log(
                f"campaign resume: {self.skipped} of {len(units)} units "
                f"already in manifest, {len(todo)} to run"
            )
        observer.counter("campaign.units").inc(self.skipped, status="skipped")
        if not todo:
            return records
        executor = TaskExecutor(
            self.jobs, retry=self.retry,
            unit_timeout=self.unit_timeout, chaos=self.chaos,
        )
        with self.telemetry.phase(phase, units=len(todo)):
            for result in executor.imap(
                worker, [payload for _, payload in todo],
                keys=[uid for uid, _ in todo],
            ):
                if result.ok:
                    record = UnitRecord(
                        unit_id=str(result.key), status=STATUS_DONE,
                        seconds=result.seconds, data=result.value,
                        attempts=result.attempts,
                        provenance=provenance.get(str(result.key), {}),
                    )
                    self.executed += 1
                    observer.counter("campaign.units").inc(status="executed")
                elif self._resilient:
                    category = result.category or UNIT_ERROR
                    record = UnitRecord(
                        unit_id=str(result.key), status=STATUS_QUARANTINED,
                        seconds=result.seconds,
                        data={"error": result.error, "category": category},
                        attempts=result.attempts,
                    )
                    self.quarantined += 1
                    observer.counter("harness.quarantined").inc(
                        event="new", category=category
                    )
                    observer.counter("campaign.units").inc(status="quarantined")
                else:
                    record = UnitRecord(
                        unit_id=str(result.key), status=STATUS_FAILED,
                        seconds=result.seconds,
                        data={"error": result.error,
                              "category": result.category or UNIT_ERROR},
                        attempts=result.attempts,
                    )
                    self.failed += 1
                    observer.counter("campaign.units").inc(status="failed")
                records[record.unit_id] = record
                if self.manifest:
                    self.manifest.append(record)
        return records


# ----------------------------------------------------------------------
# Fault-injection campaign over the benchmark suite
# ----------------------------------------------------------------------
@dataclass
class FaultCampaignSummary:
    """Merged per-(workload, label) results plus run accounting.

    A *label* is a binary flavour (``original``/``idempotent``) or a
    recovery backend name (``tmr``/``checkpoint_log``/...) — whatever
    scheme subset the campaign was asked to run. Legacy campaigns (no
    subset flags) keep the two flavour labels, in :data:`FLAVOURS`
    order, so their reports are byte-identical.
    """

    #: (workload, label) -> merged CampaignResult across shards
    results: Dict[Tuple[str, str], CampaignResult] = field(default_factory=dict)
    trials: int = 0
    seed: int = 0
    kind: str = FAULT_VALUE
    #: report/footer order: requested flavours then requested backends
    labels: Tuple[str, ...] = FLAVOURS
    executed_units: int = 0
    skipped_units: int = 0
    failed_units: int = 0
    quarantined_units: int = 0
    errors: List[str] = field(default_factory=list)
    #: (unit_id, error category) for every quarantined unit, so reports
    #: can list *which* units are poisoned, not just how many.
    quarantined: List[Tuple[str, str]] = field(default_factory=list)
    telemetry: Optional[Telemetry] = None

    def flavour_totals(self, label: str) -> CampaignResult:
        total = CampaignResult()
        for (_, unit_label), result in self.results.items():
            if unit_label == label:
                total.merge(result)
        return total


def _fault_unit(payload: dict) -> dict:
    """Worker: one trial-shard of one workload × flavour (or backend)."""
    name = payload["workload"]
    flavour = payload["flavour"]
    backend_name = payload.get("backend")
    original, idempotent = build_pair(name)
    # The recovery target is the idempotent build's fault-free run (the
    # same convention as ``python -m repro faults``); every scheme must
    # reproduce it to count as recovered.  A crashing reference means
    # the *build* is broken — deterministic for every retry — so it is
    # reported as a structured, permanently-classified unit error
    # rather than escaping as a raw exception string.
    try:
        reference_sim = Simulator(idempotent.program)
        reference = reference_sim.run(payload["entry"])
        reference_output = list(reference_sim.output)
    except Exception as exc:
        raise PermanentUnitError(
            f"reference run failed for workload {name!r} "
            f"(flavour {flavour}, entry {payload['entry']!r}): "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if backend_name is not None:
        from repro.recovery.backends import get_backend

        campaign = get_backend(backend_name).campaign(
            original.program,
            idempotent.program,
            reference,
            reference_output,
            trials=payload["trials"],
            func=payload["entry"],
            kind=payload["kind"],
            seed=payload["unit_seed"],
            detection_latency=payload["detection_latency"],
            start_trial=payload["start_trial"],
        )
    else:
        program = idempotent.program if flavour == "idempotent" else original.program
        campaign = fault_campaign(
            program,
            reference,
            reference_output,
            trials=payload["trials"],
            func=payload["entry"],
            kind=payload["kind"],
            seed=payload["unit_seed"],
            detection_latency=payload["detection_latency"],
            start_trial=payload["start_trial"],
        )
    row = asdict(campaign)
    row["workload"] = name
    row["flavour"] = flavour
    if backend_name is not None:
        row["backend"] = backend_name
    return row


def campaign_labels(
    flavours: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Resolve ``--flavours``/``--backends`` into validated work lists.

    Defaults preserve legacy behaviour: with neither flag the campaign
    runs both :data:`FLAVOURS` and no backends; with only ``--backends``
    the flavour units are dropped (the backend rows subsume them).
    Unknown names raise :class:`ValueError` listing the valid choices.
    """
    from repro.recovery.backends import BACKEND_NAMES

    flavour_list = parse_label_subset(flavours, FLAVOURS, "flavour")
    backend_list = parse_label_subset(backends, BACKEND_NAMES, "backend")
    if flavours is None and backends is None:
        flavour_list = FLAVOURS
    return flavour_list, backend_list


def fault_campaign_units(
    names: Optional[Sequence[str]],
    trials: int,
    seed: int,
    kind: str = FAULT_VALUE,
    detection_latency: int = 0,
    shard_trials: Optional[int] = None,
    flavours: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> List[Tuple[str, dict]]:
    """The (unit_id, payload) work list of a suite-wide fault campaign.

    Trials shard into chunks of ``shard_trials`` (default: all trials in
    one unit per workload × flavour).  Unit ids encode every parameter
    that affects the unit's result, so a manifest written with one
    configuration never satisfies another.

    ``flavours``/``backends`` select scheme subsets (see
    :func:`campaign_labels`). Backend units derive their seeds from the
    backend's ``seed_key`` — for the ``idempotent`` backend that is the
    legacy ``"idempotent"`` flavour key, so its units (and therefore
    their results) are bit-identical to flavour campaigns at the same
    parameters.
    """
    from repro.recovery.backends import get_backend

    flavour_list, backend_list = campaign_labels(flavours, backends)
    shard = trials if not shard_trials else max(1, int(shard_trials))
    units: List[Tuple[str, dict]] = []
    for workload in resolve_workloads(names):
        for flavour in flavour_list:
            unit_seed = derive_seed(seed, workload.name, flavour)
            for start in range(0, trials, shard):
                count = min(shard, trials - start)
                unit_id = (
                    f"{workload.name}:{flavour}:{kind}:seed{seed}"
                    f":lat{detection_latency}:t{start}+{count}"
                )
                units.append((
                    unit_id,
                    {
                        "workload": workload.name,
                        "flavour": flavour,
                        "entry": workload.entry,
                        "trials": count,
                        "start_trial": start,
                        "unit_seed": unit_seed,
                        "kind": kind,
                        "detection_latency": detection_latency,
                    },
                ))
        for backend_name in backend_list:
            backend = get_backend(backend_name)
            unit_seed = derive_seed(seed, workload.name, backend.seed_key)
            for start in range(0, trials, shard):
                count = min(shard, trials - start)
                unit_id = (
                    f"{workload.name}:backend-{backend_name}:{kind}:seed{seed}"
                    f":lat{detection_latency}:t{start}+{count}"
                )
                units.append((
                    unit_id,
                    {
                        "workload": workload.name,
                        "flavour": backend.flavour,
                        "backend": backend_name,
                        "entry": workload.entry,
                        "trials": count,
                        "start_trial": start,
                        "unit_seed": unit_seed,
                        "kind": kind,
                        "detection_latency": detection_latency,
                    },
                ))
    return units


def run_fault_campaign(
    names: Optional[Sequence[str]] = None,
    trials: int = 40,
    seed: int = 12345,
    kind: str = FAULT_VALUE,
    detection_latency: int = 0,
    jobs: int = 1,
    manifest_path: Optional[str] = None,
    shard_trials: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    retry: Optional[RetryPolicy] = None,
    unit_timeout: Optional[float] = None,
    chaos: Optional[ChaosPolicy] = None,
    flavours: Optional[Sequence[str]] = None,
    backends: Optional[Sequence[str]] = None,
) -> FaultCampaignSummary:
    """Suite-wide fault-injection campaign, sharded, cached, resumable."""
    telemetry = telemetry or Telemetry(label="fault campaign")
    if manifest_path:
        get_observer().log(f"campaign manifest: {manifest_path}")
    flavour_list, backend_list = campaign_labels(flavours, backends)
    units = fault_campaign_units(
        names, trials, seed, kind=kind,
        detection_latency=detection_latency, shard_trials=shard_trials,
        flavours=flavours, backends=backends,
    )
    # Builds happen in the parent first: workers inherit the memo via
    # fork and warm runs pull artifacts straight from the disk cache.
    prebuild_pairs(names, jobs=jobs, telemetry=telemetry)
    # Stamp every unit with the pipeline version and the checksum of the
    # code it campaigns over: resuming a manifest written by a different
    # compiler (or against edited source) re-runs those units instead of
    # silently mixing outcomes.
    from repro.harness.cache import PIPELINE_VERSION
    from repro.harness.incremental import program_fingerprint

    fingerprints: Dict[Tuple[str, str], str] = {}
    provenance: Dict[str, dict] = {}
    for unit_id, payload in units:
        fp_key = (payload["workload"], payload["flavour"])
        if fp_key not in fingerprints:
            original, idempotent = build_pair(payload["workload"])
            program = (
                idempotent.program if payload["flavour"] == "idempotent"
                else original.program
            )
            fingerprints[fp_key] = program_fingerprint(program)
        provenance[unit_id] = {
            "pipeline": PIPELINE_VERSION,
            "label": payload.get("backend") or payload["flavour"],
            "cfg": fingerprints[fp_key],
        }
    manifest = RunManifest(manifest_path) if manifest_path else None
    runner = CampaignRunner(
        manifest=manifest, jobs=jobs, telemetry=telemetry,
        retry=retry, unit_timeout=unit_timeout, chaos=chaos,
    )
    records = runner.run(_fault_unit, units, phase="inject", provenance=provenance)

    summary = FaultCampaignSummary(
        trials=trials, seed=seed, kind=kind,
        labels=flavour_list + backend_list,
        executed_units=runner.executed,
        skipped_units=runner.skipped,
        failed_units=runner.failed,
        quarantined_units=runner.quarantined + runner.quarantine_skipped,
        telemetry=telemetry,
    )
    for unit_id, _ in units:
        record = records.get(unit_id)
        if record is None:
            continue
        if record.quarantined:
            category = record.data.get("category", UNIT_ERROR)
            summary.quarantined.append((unit_id, category))
            summary.errors.append(
                f"{unit_id}: quarantined after {record.attempts} attempts "
                f"[{category}]: "
                f"{record.data.get('error')}"
            )
            continue
        if not record.ok:
            summary.errors.append(f"{unit_id}: {record.data.get('error')}")
            continue
        data = record.data
        key = (data["workload"], data.get("backend") or data["flavour"])
        # ``.get`` keeps manifests written before the ``undetected``
        # bucket existed loadable (they recorded no such faults).
        shard_result = CampaignResult(**{
            f: data.get(f, 0)
            for f in ("trials", "injected", "detected",
                      "recovered_correctly", "wrong_result", "crashed",
                      "undetected")
        })
        summary.results.setdefault(key, CampaignResult()).merge(shard_result)
    return summary


def format_campaign_report(summary: FaultCampaignSummary) -> str:
    headers = ["workload", "flavour", "trials", "injected", "recovered",
               "wrong", "crashed", "recovery"]
    rows = []
    for (name, flavour), result in summary.results.items():
        rows.append([
            name, flavour, result.trials, result.injected,
            result.recovered_correctly, result.wrong_result, result.crashed,
            format_rate(result),
        ])
    lines = [format_table(headers, rows), ""]
    for flavour in summary.labels:
        total = summary.flavour_totals(flavour)
        undetected = (
            f" undetected={total.undetected}" if total.undetected else ""
        )
        lines.append(
            f"{flavour:10s}: injected={total.injected} "
            f"recovered={total.recovered_correctly} "
            f"wrong={total.wrong_result} crashed={total.crashed}"
            f"{undetected} "
            f"({format_rate(total)} recovery)"
        )
    units_line = (
        f"units: {summary.executed_units} executed, "
        f"{summary.skipped_units} resumed from manifest, "
        f"{summary.failed_units} failed"
    )
    if summary.quarantined_units:
        units_line += f", {summary.quarantined_units} quarantined"
    lines.append(units_line)
    if summary.quarantined:
        lines.append("quarantined units (pass --fresh to retry):")
        for unit_id, category in summary.quarantined:
            lines.append(f"  - {unit_id} [{category}]")
    for error in summary.errors:
        lines.append(f"  ! {error}")
    return "\n".join(lines)
