"""Table 2 companion: antidependence classification per workload.

The paper's Table 2 defines the semantic/artificial split by storage
resource: artificial antidependences act on compiler-controlled
pseudoregister state (registers, local stack), semantic ones on heap,
global, and non-local stack memory. This driver quantifies the split on
our workloads' *unoptimized* IR (clang -O0 shape) and shows that SSA
conversion eliminates the artificial ones entirely (paper §4.1) while the
semantic ones remain for the region construction to cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.antideps import AntiDepAnalysis
from repro.experiments.common import format_table, map_workloads
from repro.transforms.pipeline import optimize_function
from repro.workloads import get_workload


def _count(module) -> Dict[str, int]:
    counts = {"total": 0, "artificial": 0, "semantic": 0, "clobber": 0}
    for func in module.defined_functions:
        analysis = AntiDepAnalysis(func)
        for antidep in analysis.antideps:
            counts["total"] += 1
            if antidep.is_artificial:
                counts["artificial"] += 1
            else:
                counts["semantic"] += 1
            if antidep.is_clobber:
                counts["clobber"] += 1
    return counts


@dataclass
class Table2Result:
    #: workload -> {"before": counts, "after": counts}
    counts: Dict[str, Dict[str, Dict[str, int]]] = field(default_factory=dict)


def measure(name: str) -> Dict[str, Dict[str, int]]:
    workload = get_workload(name)
    module = workload.compile_ir()
    before = _count(module)
    for func in module.defined_functions:
        optimize_function(func)
    after = _count(module)
    return {"before": before, "after": after}


def run(names: Optional[List[str]] = None, jobs: Optional[int] = None,
        telemetry=None) -> Table2Result:
    result = Table2Result()
    # Table 2 classifies unoptimized IR, so it never touches build_pair
    # artifacts — no prebuild needed.
    for workload, counts in map_workloads(measure, names, jobs=jobs, prebuild=False,
                                          telemetry=telemetry):
        result.counts[workload.name] = counts
    return result


def format_report(result: Table2Result) -> str:
    headers = [
        "workload",
        "pre-SSA total",
        "  artificial",
        "  semantic",
        "post-SSA total",
        "  artificial",
        "  semantic",
    ]
    rows = []
    for name, counts in result.counts.items():
        before = counts["before"]
        after = counts["after"]
        rows.append([
            name,
            before["total"],
            before["artificial"],
            before["semantic"],
            after["total"],
            after["artificial"],
            after["semantic"],
        ])
    table = format_table(headers, rows)
    art_before = sum(c["before"]["artificial"] for c in result.counts.values())
    art_after = sum(c["after"]["artificial"] for c in result.counts.values())
    return (
        f"{table}\n"
        f"artificial (pseudoregister) antidependences: {art_before} before SSA "
        f"conversion, {art_after} after — Table 2: registers and local stack "
        f"are compiler-controlled and renamable; memory antidependences remain "
        f"for the region construction to cut"
    )


def main(names: Optional[List[str]] = None) -> None:
    print(format_report(run(names)))


if __name__ == "__main__":
    main()
