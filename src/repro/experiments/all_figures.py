"""Run every experiment driver and emit one combined report.

``python -m repro.experiments.all_figures [workload ...] [-o FILE]``

This is what produced ``experiments_full_output.txt`` — the full-suite
regeneration of every table and figure recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, TextIO

from repro.experiments import (
    fig4_limit_study,
    fig8_path_cdf,
    fig9_avg_paths,
    fig10_overheads,
    fig12_recovery,
    table2_classification,
)

DRIVERS = [
    ("TABLE 2 — antidependence classification", table2_classification),
    ("FIGURE 4 — limit study", fig4_limit_study),
    ("FIGURE 8 — path length CDF", fig8_path_cdf),
    ("FIGURE 9 — constructed vs ideal", fig9_avg_paths),
    ("FIGURE 10 — runtime overheads", fig10_overheads),
    ("FIGURE 12 — recovery schemes", fig12_recovery),
]


def run_all(names: Optional[List[str]] = None, stream: TextIO = sys.stdout) -> None:
    """Run every driver on ``names`` (None = full suite), writing reports."""

    def emit(text: str) -> None:
        stream.write(text + "\n")
        stream.flush()

    for title, driver in DRIVERS:
        started = time.time()
        emit("=" * 78)
        emit(title)
        emit("=" * 78)
        emit(driver.format_report(driver.run(names)))
        emit(f"[{time.time() - started:.0f}s]")
        emit("")
    emit("DONE")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workloads", nargs="*", help="subset (default: all 19)")
    parser.add_argument("-o", "--output", help="also write the report to a file")
    args = parser.parse_args(argv)
    names = args.workloads or None
    if args.output:
        with open(args.output, "w") as handle:
            class _Tee:
                def write(self, text):
                    handle.write(text)
                    sys.stdout.write(text)

                def flush(self):
                    handle.flush()
                    sys.stdout.flush()

            run_all(names, stream=_Tee())
    else:
        run_all(names)
    return 0


if __name__ == "__main__":
    sys.exit(main())
