"""Run every experiment driver and emit one combined report.

``python -m repro.experiments.all_figures [workload ...] [-o FILE]
[--jobs N] [--no-cache]``

This is what produced ``experiments_full_output.txt`` — the full-suite
regeneration of every table and figure recorded in EXPERIMENTS.md.  All
builds flow through :mod:`repro.harness`: workloads are prebuilt once up
front (``--jobs N`` shards compiles and per-workload measurements over N
processes, and warm runs reuse the persistent ``.repro-cache/``), then
every driver shares the same in-memory artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, TextIO

from repro.experiments import (
    fig4_limit_study,
    fig8_path_cdf,
    fig9_avg_paths,
    fig10_overheads,
    fig12_recovery,
    table2_classification,
)
from repro import obs
from repro.experiments.common import configure, prebuild_pairs
from repro.harness.cache import default_cache
from repro.harness.report import Telemetry

DRIVERS = [
    ("TABLE 2 — antidependence classification", table2_classification),
    ("FIGURE 4 — limit study", fig4_limit_study),
    ("FIGURE 8 — path length CDF", fig8_path_cdf),
    ("FIGURE 9 — constructed vs ideal", fig9_avg_paths),
    ("FIGURE 10 — runtime overheads", fig10_overheads),
    ("FIGURE 12 — recovery schemes", fig12_recovery),
]


def run_all(
    names: Optional[List[str]] = None,
    stream: Optional[TextIO] = None,
    jobs: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> None:
    """Run every driver on ``names`` (None = full suite), writing reports."""
    if stream is None:
        stream = sys.stdout  # resolved at call time, not import time

    def emit(text: str) -> None:
        stream.write(text + "\n")
        stream.flush()

    telemetry = telemetry or Telemetry(label="all figures")
    prebuild_pairs(names, jobs=jobs, telemetry=telemetry)
    for title, driver in DRIVERS:
        started = time.time()
        emit("=" * 78)
        emit(title)
        emit("=" * 78)
        driver_name = driver.__name__.rsplit(".", 1)[-1]
        with obs.span(f"experiment.{driver_name}"):
            report = driver.format_report(
                driver.run(names, jobs=jobs, telemetry=telemetry)
            )
        emit(report)
        emit(f"[{time.time() - started:.0f}s]")
        emit("")
    emit("DONE")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workloads", nargs="*", help="subset (default: all 19)")
    parser.add_argument("-o", "--output", help="also write the report to a file")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="shard builds and measurements over N processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent artifact cache")
    args = parser.parse_args(argv)
    names = args.workloads or None
    configure(jobs=args.jobs, use_cache=not args.no_cache)
    telemetry = Telemetry(label="all figures")
    if args.output:
        with open(args.output, "w") as handle:
            class _Tee:
                def write(self, text):
                    handle.write(text)
                    sys.stdout.write(text)

                def flush(self):
                    handle.flush()
                    sys.stdout.flush()

            run_all(names, stream=_Tee(), jobs=args.jobs, telemetry=telemetry)
    else:
        run_all(names, jobs=args.jobs, telemetry=telemetry)
    telemetry.finish()
    telemetry.attach_cache(default_cache())
    print(telemetry.format_summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
