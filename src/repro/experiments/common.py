"""Shared infrastructure for the experiment drivers.

Each ``figN_*`` module exposes ``run(names=None)`` returning a result
object and ``format_report(result)`` producing the text table the paper's
figure corresponds to. ``python -m repro.experiments.figN_...`` prints it.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.compiler import CompileResult, compile_minic
from repro.workloads import SUITES, Workload, all_workloads, get_workload


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; zero/negative entries are clamped to a small epsilon."""
    cleaned = [max(v, 1e-9) for v in values]
    if not cleaned:
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


@lru_cache(maxsize=64)
def build_pair(name: str) -> Tuple[CompileResult, CompileResult]:
    """(original, idempotent) builds of a workload, cached per process."""
    workload = get_workload(name)
    original = compile_minic(workload.source, idempotent=False, name=name)
    idempotent = compile_minic(workload.source, idempotent=True, name=name)
    return original, idempotent


def resolve_workloads(names: Optional[Iterable[str]] = None) -> List[Workload]:
    if names is None:
        return all_workloads()
    return [get_workload(name) for name in names]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def suite_of(name: str) -> str:
    return get_workload(name).suite


def group_by_suite(per_workload: Dict[str, float]) -> Dict[str, float]:
    """Geomean of a per-workload metric within each suite plus overall."""
    grouped: Dict[str, List[float]] = {suite: [] for suite in SUITES}
    for name, value in per_workload.items():
        grouped[suite_of(name)].append(value)
    summary = {
        suite: geomean(values) for suite, values in grouped.items() if values
    }
    if per_workload:
        summary["all"] = geomean(list(per_workload.values()))
    return summary
