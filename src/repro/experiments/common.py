"""Shared infrastructure for the experiment drivers.

Each ``figN_*`` module exposes ``run(names=None, jobs=None)`` returning a
result object and ``format_report(result)`` producing the text table the
paper's figure corresponds to. ``python -m repro.experiments.figN_...``
prints it.

Builds go through :mod:`repro.harness`: an in-process memo keeps object
identity within one run (so every driver measuring ``bzip2`` shares the
same :class:`CompileResult`), backed by the persistent content-addressed
artifact cache in ``.repro-cache/`` shared across processes and runs.
Per-workload work units fan out over a process pool via
:func:`map_workloads` when ``jobs > 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.compiler import CompileResult, compile_minic
from repro.harness.cache import cache_key, cached_compile, default_cache
from repro.harness.executor import TaskExecutor
from repro.harness.report import Telemetry
from repro.harness.resilience import ChaosPolicy, RetryPolicy
from repro.workloads import SUITES, Workload, all_workloads, get_workload


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; zero/negative entries are clamped to a small epsilon."""
    cleaned = [max(v, 1e-9) for v in values]
    if not cleaned:
        return 0.0
    return math.exp(sum(math.log(v) for v in cleaned) / len(cleaned))


# ----------------------------------------------------------------------
# Build orchestration (repro.harness)
# ----------------------------------------------------------------------
@dataclass
class HarnessOptions:
    """Process-wide defaults threaded down from the CLI."""

    jobs: int = 1
    use_cache: bool = True
    retry: Optional[RetryPolicy] = None
    unit_timeout: Optional[float] = None
    chaos: Optional[ChaosPolicy] = None


_options = HarnessOptions()

#: name -> (original, idempotent); preserves object identity per process.
_pair_memo: Dict[str, Tuple[CompileResult, CompileResult]] = {}

_UNSET = object()


def configure(
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    retry: object = _UNSET,
    unit_timeout: object = _UNSET,
    chaos: object = _UNSET,
) -> HarnessOptions:
    """Set the default parallelism / caching / resilience for driver runs.

    ``retry`` / ``unit_timeout`` / ``chaos`` accept ``None`` to clear an
    earlier setting; omit them to leave the current value unchanged.
    """
    if jobs is not None:
        _options.jobs = max(1, int(jobs))
    if use_cache is not None:
        _options.use_cache = bool(use_cache)
    if retry is not _UNSET:
        _options.retry = retry
    if unit_timeout is not _UNSET:
        _options.unit_timeout = unit_timeout
    if chaos is not _UNSET:
        _options.chaos = chaos
    return _options


def current_options() -> HarnessOptions:
    return _options


def make_executor(jobs: Optional[int] = None) -> TaskExecutor:
    """A :class:`TaskExecutor` honouring the configured resilience options."""
    jobs = _options.jobs if jobs is None else max(1, int(jobs))
    return TaskExecutor(
        jobs,
        retry=_options.retry,
        unit_timeout=_options.unit_timeout,
        chaos=_options.chaos,
    )


def clear_build_memo() -> None:
    """Forget in-process builds (tests; the disk cache is unaffected)."""
    _pair_memo.clear()


def build_pair(name: str) -> Tuple[CompileResult, CompileResult]:
    """(original, idempotent) builds of a workload.

    Memoised per process for identity, persisted through the artifact
    cache so later processes and runs skip the compile entirely.
    """
    pair = _pair_memo.get(name)
    if pair is not None:
        return pair
    workload = get_workload(name)
    if _options.use_cache:
        original = cached_compile(workload.source, idempotent=False, name=name)
        idempotent = cached_compile(workload.source, idempotent=True, name=name)
    else:
        original = compile_minic(workload.source, idempotent=False, name=name)
        idempotent = compile_minic(workload.source, idempotent=True, name=name)
    pair = (original, idempotent)
    _pair_memo[name] = pair
    return pair


def _compile_pair_unit(name: str) -> Tuple[CompileResult, CompileResult]:
    """Worker-side pure compile of both flavours (no cache I/O)."""
    workload = get_workload(name)
    return (
        compile_minic(workload.source, idempotent=False, name=name),
        compile_minic(workload.source, idempotent=True, name=name),
    )


def prebuild_pairs(
    names: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> int:
    """Populate the build memo for the given workloads; returns #compiled.

    Cache lookups and stores happen in the parent process — workers only
    run the pure compile — so hit/miss counters are accurate and workers
    never contend on the object store.  Compiles of cache misses are
    sharded ``jobs``-wide.
    """
    workloads = resolve_workloads(names)
    jobs = _options.jobs if jobs is None else max(1, int(jobs))
    cache = default_cache()
    missing: List[Workload] = []
    compiled = 0
    telemetry = telemetry or Telemetry()
    with telemetry.phase("build", units=len(workloads)):
        for workload in workloads:
            if workload.name in _pair_memo:
                continue
            if _options.use_cache:
                original = cache.get(
                    cache_key(workload.source, idempotent=False, name=workload.name)
                )
                idempotent = cache.get(
                    cache_key(workload.source, idempotent=True, name=workload.name)
                )
                if isinstance(original, CompileResult) and isinstance(
                    idempotent, CompileResult
                ):
                    _pair_memo[workload.name] = (original, idempotent)
                    continue
            missing.append(workload)
        if missing:
            executor = make_executor(jobs)
            results = executor.map(_compile_pair_unit, [w.name for w in missing])
            for workload, result in zip(missing, results):
                pair = result.value
                _pair_memo[workload.name] = pair
                compiled += 1
                obs.counter("harness.builds").inc(workload=workload.name)
                if _options.use_cache:
                    cache.put(
                        cache_key(workload.source, idempotent=False, name=workload.name),
                        pair[0],
                    )
                    cache.put(
                        cache_key(workload.source, idempotent=True, name=workload.name),
                        pair[1],
                    )
    return compiled


def map_workloads(
    fn: Callable[[str], object],
    names: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    prebuild: bool = True,
    telemetry: Optional[Telemetry] = None,
) -> List[Tuple[Workload, object]]:
    """Apply a module-level ``fn(name)`` per workload, in workload order.

    With ``jobs > 1`` the per-workload measurements shard across a
    process pool; builds are prebuilt in the parent first so forked
    workers inherit the memo and never recompile.  Results are returned
    in workload order regardless of completion order, so reports are
    byte-identical to a serial run.
    """
    workloads = resolve_workloads(names)
    jobs = _options.jobs if jobs is None else max(1, int(jobs))
    telemetry = telemetry or Telemetry()
    if prebuild:
        prebuild_pairs([w.name for w in workloads], jobs=jobs, telemetry=telemetry)
    ordered = [w.name for w in workloads]
    with telemetry.phase("measure", units=len(ordered)):
        if jobs <= 1 or len(ordered) <= 1:
            values = [fn(name) for name in ordered]
        else:
            executor = make_executor(jobs)
            values = [result.value for result in executor.map(fn, ordered)]
    return list(zip(workloads, values))


def resolve_workloads(names: Optional[Iterable[str]] = None) -> List[Workload]:
    if names is None:
        return all_workloads()
    return [get_workload(name) for name in names]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def suite_of(name: str) -> str:
    return get_workload(name).suite


def group_by_suite(per_workload: Dict[str, float]) -> Dict[str, float]:
    """Geomean of a per-workload metric within each suite plus overall."""
    grouped: Dict[str, List[float]] = {suite: [] for suite in SUITES}
    for name, value in per_workload.items():
        grouped[suite_of(name)].append(value)
    summary = {
        suite: geomean(values) for suite, values in grouped.items() if values
    }
    if per_workload:
        summary["all"] = geomean(list(per_workload.values()))
    return summary
