"""Figure 4: average dynamic idempotent path lengths in the limit.

Runs the conventional ("original") binary of each workload under the
dynamic clobber-antidependence detector in three categories (paper §3):
inter-procedural semantic, intra-procedural semantic (split at calls), and
semantic + artificial. Paper headline: geomeans ≈1300 / ≈110 / ≈10.8 —
artificial clobbers shrink paths by ~10×, call-splitting costs another
order of magnitude on some workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import (
    build_pair,
    format_table,
    geomean,
    group_by_suite,
    map_workloads,
)
from repro.sim.limit_study import (
    CATEGORIES,
    CATEGORY_ARTIFICIAL,
    CATEGORY_SEMANTIC,
    CATEGORY_SEMANTIC_CALLS,
    PathStats,
    run_limit_study,
)


@dataclass
class Fig4Result:
    #: workload -> category -> PathStats
    stats: Dict[str, Dict[str, PathStats]] = field(default_factory=dict)

    def averages(self, category: str) -> Dict[str, float]:
        return {name: s[category].average for name, s in self.stats.items()}

    def geomeans(self) -> Dict[str, float]:
        return {c: geomean(list(self.averages(c).values())) for c in CATEGORIES}


def measure(name: str) -> Dict[str, PathStats]:
    original, _ = build_pair(name)
    return run_limit_study(original.program)


def run(names: Optional[List[str]] = None, jobs: Optional[int] = None,
        telemetry=None) -> Fig4Result:
    result = Fig4Result()
    for workload, stats in map_workloads(measure, names, jobs=jobs,
                                         telemetry=telemetry):
        result.stats[workload.name] = stats
    return result


def format_report(result: Fig4Result) -> str:
    headers = ["workload", "semantic(inter)", "semantic+calls", "sem+artificial",
               "inter/art", "intra/art"]
    rows = []
    for name, stats in result.stats.items():
        semantic = stats[CATEGORY_SEMANTIC].average
        calls = stats[CATEGORY_SEMANTIC_CALLS].average
        artificial = stats[CATEGORY_ARTIFICIAL].average
        rows.append([
            name,
            semantic,
            calls,
            artificial,
            semantic / artificial if artificial else 0.0,
            calls / artificial if artificial else 0.0,
        ])
    table = format_table(headers, rows)

    gm = result.geomeans()
    ratio_intra = gm[CATEGORY_SEMANTIC_CALLS] / max(gm[CATEGORY_ARTIFICIAL], 1e-9)
    ratio_inter = gm[CATEGORY_SEMANTIC] / max(gm[CATEGORY_ARTIFICIAL], 1e-9)
    summary = (
        f"\ngeomeans: semantic(inter)={gm[CATEGORY_SEMANTIC]:.1f}  "
        f"semantic+calls={gm[CATEGORY_SEMANTIC_CALLS]:.1f}  "
        f"sem+artificial={gm[CATEGORY_ARTIFICIAL]:.1f}\n"
        f"gains over artificial: intra {ratio_intra:.1f}x, inter {ratio_inter:.1f}x\n"
        f"(paper: 110 vs 10.8 -> ~10x intra; 1300 -> ~120x inter)"
    )
    per_suite = group_by_suite(result.averages(CATEGORY_SEMANTIC_CALLS))
    suites = "  ".join(f"{k}={v:.1f}" for k, v in per_suite.items())
    return f"{table}{summary}\nsemantic+calls suite geomeans: {suites}"


def main(names: Optional[List[str]] = None) -> None:
    print(format_report(run(names)))


if __name__ == "__main__":
    main()
