"""Figure 12: overhead of the three recovery techniques relative to DMR.

Runs every workload under the four configurations of
:mod:`repro.recovery.schemes` and reports cycle overheads relative to the
DMR detection baseline. Paper geomeans: INSTRUCTION-TMR +30.5%,
CHECKPOINT-AND-LOG +24.0%, IDEMPOTENCE +8.2% — idempotence wins by >15%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.common import (
    build_pair,
    format_table,
    group_by_suite,
    map_workloads,
)
from repro.recovery.schemes import (
    SCHEME_CHECKPOINT_LOG,
    SCHEME_DMR,
    SCHEME_IDEMPOTENCE,
    SCHEME_TMR,
    SchemeRun,
    compare_schemes,
)

_REPORTED = (SCHEME_TMR, SCHEME_CHECKPOINT_LOG, SCHEME_IDEMPOTENCE)


@dataclass
class Fig12Result:
    #: workload -> scheme -> SchemeRun
    runs: Dict[str, Dict[str, SchemeRun]] = field(default_factory=dict)

    def overhead(self, name: str, scheme: str) -> float:
        baseline = self.runs[name][SCHEME_DMR]
        return self.runs[name][scheme].overhead_vs(baseline)

    def suite_summary(self) -> Dict[str, Dict[str, float]]:
        summary = {}
        for scheme in _REPORTED:
            relative = {
                name: 1.0 + self.overhead(name, scheme) for name in self.runs
            }
            summary[scheme] = {
                k: v - 1.0 for k, v in group_by_suite(relative).items()
            }
        return summary


def measure(name: str) -> Dict[str, SchemeRun]:
    original, idempotent = build_pair(name)
    return compare_schemes(original.program, idempotent.program)


def run(names: Optional[List[str]] = None, jobs: Optional[int] = None,
        telemetry=None) -> Fig12Result:
    result = Fig12Result()
    for workload, runs in map_workloads(measure, names, jobs=jobs,
                                        telemetry=telemetry):
        result.runs[workload.name] = runs
    return result


def format_report(result: Fig12Result) -> str:
    headers = ["workload", "tmr", "chkpt-log", "idempotence"]
    rows = []
    for name in result.runs:
        rows.append([
            name,
            f"{result.overhead(name, SCHEME_TMR):+.1%}",
            f"{result.overhead(name, SCHEME_CHECKPOINT_LOG):+.1%}",
            f"{result.overhead(name, SCHEME_IDEMPOTENCE):+.1%}",
        ])
    table = format_table(headers, rows)
    summary = result.suite_summary()
    lines = [table, "", "overhead vs DMR baseline (geomeans):"]
    for scheme in _REPORTED:
        parts = "  ".join(
            f"{suite}={ovh:+.1%}" for suite, ovh in summary[scheme].items()
        )
        lines.append(f"  {scheme:18s} {parts}")
    lines.append("(paper: tmr +30.5%, checkpoint-and-log +24.0%, idempotence +8.2%)")
    return "\n".join(lines)


def main(names: Optional[List[str]] = None) -> None:
    print(format_report(run(names)))


if __name__ == "__main__":
    main()
