"""Figure 12: overhead of the three recovery techniques relative to DMR.

Runs every workload under the four configurations of
:mod:`repro.recovery.schemes` and reports cycle overheads relative to the
DMR detection baseline. Paper geomeans: INSTRUCTION-TMR +30.5%,
CHECKPOINT-AND-LOG +24.0%, IDEMPOTENCE +8.2% — idempotence wins by >15%.

Since the recovery zoo (PR 7) the driver also *exercises* each scheme:
every workload runs a fixed-seed fault campaign through the three
:class:`~repro.recovery.backends.RecoveryBackend` implementations, so
the report charts what each scheme's overhead actually buys — the
overhead-vs-recovery trade-off, not just the price column.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    build_pair,
    format_table,
    group_by_suite,
    map_workloads,
)
from repro.harness.executor import derive_seed
from repro.recovery.backends import BACKEND_TYPES, get_backend
from repro.recovery.schemes import (
    SCHEME_CHECKPOINT_LOG,
    SCHEME_DMR,
    SCHEME_IDEMPOTENCE,
    SCHEME_TMR,
    SchemeRun,
    compare_schemes,
)
from repro.sim.faults import CampaignResult, format_rate

_REPORTED = (SCHEME_TMR, SCHEME_CHECKPOINT_LOG, SCHEME_IDEMPOTENCE)

#: backend name -> the Fig. 12 scheme it prices out as.
_BACKEND_SCHEME = {cls.name: cls.scheme for cls in BACKEND_TYPES}

#: Fault trials per workload and backend (small: the campaign column is
#: qualitative; ``repro recovery compare`` is the quantitative driver).
DEFAULT_TRIALS = 6


@dataclass
class Fig12Result:
    #: workload -> scheme -> SchemeRun
    runs: Dict[str, Dict[str, SchemeRun]] = field(default_factory=dict)
    #: workload -> backend name -> fault-campaign buckets
    campaigns: Dict[str, Dict[str, CampaignResult]] = field(default_factory=dict)
    trials: int = DEFAULT_TRIALS
    seed: int = 12345
    latency: int = 0

    def overhead(self, name: str, scheme: str) -> float:
        baseline = self.runs[name][SCHEME_DMR]
        return self.runs[name][scheme].overhead_vs(baseline)

    def suite_summary(self) -> Dict[str, Dict[str, float]]:
        summary = {}
        for scheme in _REPORTED:
            relative = {
                name: 1.0 + self.overhead(name, scheme) for name in self.runs
            }
            summary[scheme] = {
                k: v - 1.0 for k, v in group_by_suite(relative).items()
            }
        return summary


def measure(
    name: str, trials: int = DEFAULT_TRIALS, seed: int = 12345,
    latency: int = 0,
) -> Tuple[Dict[str, SchemeRun], Dict[str, CampaignResult]]:
    original, idempotent = build_pair(name)
    runs = compare_schemes(original.program, idempotent.program)
    # Every scheme computed the same answer (compare_schemes asserts it),
    # so the idempotence run doubles as the campaign reference.
    reference = runs[SCHEME_IDEMPOTENCE]
    campaigns = {}
    for backend_name in _BACKEND_SCHEME:
        backend = get_backend(backend_name)
        campaigns[backend_name] = backend.campaign(
            original.program, idempotent.program,
            reference.result, reference.output,
            trials=trials,
            seed=derive_seed(seed, name, backend.seed_key),
            detection_latency=latency,
        )
    return runs, campaigns


def run(names: Optional[List[str]] = None, jobs: Optional[int] = None,
        telemetry=None, trials: int = DEFAULT_TRIALS, seed: int = 12345,
        latency: int = 0) -> Fig12Result:
    result = Fig12Result(trials=trials, seed=seed, latency=latency)
    worker = functools.partial(measure, trials=trials, seed=seed,
                               latency=latency)
    for workload, (runs, campaigns) in map_workloads(worker, names, jobs=jobs,
                                                     telemetry=telemetry):
        result.runs[workload.name] = runs
        result.campaigns[workload.name] = campaigns
    return result


def format_report(result: Fig12Result) -> str:
    headers = ["workload", "tmr", "chkpt-log", "idempotence"]
    rows = []
    for name in result.runs:
        rows.append([
            name,
            f"{result.overhead(name, SCHEME_TMR):+.1%}",
            f"{result.overhead(name, SCHEME_CHECKPOINT_LOG):+.1%}",
            f"{result.overhead(name, SCHEME_IDEMPOTENCE):+.1%}",
        ])
    table = format_table(headers, rows)
    summary = result.suite_summary()
    lines = [table, "", "overhead vs DMR baseline (geomeans):"]
    for scheme in _REPORTED:
        parts = "  ".join(
            f"{suite}={ovh:+.1%}" for suite, ovh in summary[scheme].items()
        )
        lines.append(f"  {scheme:18s} {parts}")
    lines.append("(paper: tmr +30.5%, checkpoint-and-log +24.0%, idempotence +8.2%)")

    if result.campaigns:
        lines.append("")
        lines.append(
            f"overhead vs recovery (fault campaigns, "
            f"{result.trials} trials/backend, seed={result.seed}, "
            f"latency={result.latency}):"
        )
        campaign_rows = []
        for name, campaigns in result.campaigns.items():
            for backend_name, campaign in campaigns.items():
                campaign_rows.append([
                    name,
                    backend_name,
                    f"{result.overhead(name, _BACKEND_SCHEME[backend_name]):+.1%}",
                    campaign.injected,
                    campaign.recovered_correctly,
                    campaign.wrong_result,
                    campaign.crashed,
                    campaign.undetected,
                    format_rate(campaign),
                ])
        lines.append(format_table(
            ["workload", "backend", "overhead", "injected", "recovered",
             "wrong", "crashed", "undetected", "recovery"],
            campaign_rows,
        ))
    return "\n".join(lines)


def main(names: Optional[List[str]] = None) -> None:
    print(format_report(run(names)))


if __name__ == "__main__":
    main()
