"""Figure 9: constructed vs ideal average idempotent path lengths.

Compares the average dynamic path length through the *constructed*
idempotent regions against the limit-study "ideal" (intra-procedural
semantic clobber antidependences with call splits — the same baseline the
paper uses). Paper headline: geomean 28.1 constructed vs 116 ideal (~4×),
narrowing to ~1.5× without the two aliasing-limited outliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    build_pair,
    format_table,
    geomean,
    map_workloads,
)
from repro.sim.limit_study import CATEGORY_SEMANTIC_CALLS, run_limit_study
from repro.sim.path_trace import trace_paths


@dataclass
class Fig9Result:
    constructed: Dict[str, float] = field(default_factory=dict)
    ideal: Dict[str, float] = field(default_factory=dict)

    def ratio(self, name: str) -> float:
        constructed = self.constructed[name]
        return self.ideal[name] / constructed if constructed else 0.0

    def geomeans(self) -> Dict[str, float]:
        return {
            "constructed": geomean(list(self.constructed.values())),
            "ideal": geomean(list(self.ideal.values())),
        }


def measure(name: str) -> Tuple[float, float]:
    original, idempotent = build_pair(name)
    constructed = trace_paths(idempotent.program).average
    limit = run_limit_study(original.program)
    return constructed, limit[CATEGORY_SEMANTIC_CALLS].average


def run(names: Optional[List[str]] = None, jobs: Optional[int] = None,
        telemetry=None) -> Fig9Result:
    result = Fig9Result()
    for workload, (constructed, ideal) in map_workloads(measure, names, jobs=jobs,
                                                        telemetry=telemetry):
        result.constructed[workload.name] = constructed
        result.ideal[workload.name] = ideal
    return result


def format_report(result: Fig9Result) -> str:
    headers = ["workload", "constructed", "ideal", "ideal/constructed"]
    rows = [
        [name, result.constructed[name], result.ideal[name], result.ratio(name)]
        for name in result.constructed
    ]
    table = format_table(headers, rows)
    gm = result.geomeans()
    gap = gm["ideal"] / max(gm["constructed"], 1e-9)
    return (
        f"{table}\n"
        f"geomeans: constructed={gm['constructed']:.1f} ideal={gm['ideal']:.1f} "
        f"gap={gap:.1f}x (paper: 28.1 vs 116, ~4x)"
    )


def main(names: Optional[List[str]] = None) -> None:
    print(format_report(run(names)))


if __name__ == "__main__":
    main()
