"""Figure 8: cumulative distribution of dynamic idempotent path lengths.

Traces the idempotent binaries and reports, per workload, the
execution-time-weighted CDF of path lengths — e.g. "most applications
spend less than 20% of their execution time executing paths of length 10
instructions or less" (paper §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import build_pair, format_table, map_workloads
from repro.sim.limit_study import PathStats
from repro.sim.path_trace import trace_paths

#: path-length buckets reported in the table (x-axis samples of Fig. 8)
DEFAULT_BUCKETS = (5, 10, 20, 50, 100, 200, 500, 1000)


@dataclass
class Fig8Result:
    stats: Dict[str, PathStats] = field(default_factory=dict)

    def time_fraction_at_or_below(self, name: str, length: int) -> float:
        cdf = self.stats[name].weighted_cdf()
        fraction = 0.0
        for cdf_length, cdf_fraction in cdf:
            if cdf_length > length:
                break
            fraction = cdf_fraction
        return fraction


def measure(name: str) -> PathStats:
    _, idempotent = build_pair(name)
    return trace_paths(idempotent.program)


def run(names: Optional[List[str]] = None, jobs: Optional[int] = None,
        telemetry=None) -> Fig8Result:
    result = Fig8Result()
    for workload, stats in map_workloads(measure, names, jobs=jobs,
                                         telemetry=telemetry):
        result.stats[workload.name] = stats
    return result


def format_report(result: Fig8Result, buckets: Sequence[int] = DEFAULT_BUCKETS) -> str:
    headers = ["workload"] + [f"<= {b}" for b in buckets] + ["avg"]
    rows = []
    for name, stats in result.stats.items():
        row: List[object] = [name]
        for bucket in buckets:
            row.append(f"{result.time_fraction_at_or_below(name, bucket):.0%}")
        row.append(stats.average)
        rows.append(row)
    table = format_table(headers, rows)
    short_fracs = [
        result.time_fraction_at_or_below(name, 10) for name in result.stats
    ]
    most_below = sum(1 for f in short_fracs if f < 0.2)
    note = (
        f"\n{most_below}/{len(short_fracs)} workloads spend <20% of execution "
        f"time in paths of <=10 instructions (paper: 'most applications')"
    )
    return table + note


def main(names: Optional[List[str]] = None) -> None:
    print(format_report(run(names)))


if __name__ == "__main__":
    main()
