"""repro.experiments — drivers regenerating every paper table and figure.

| Module | Paper artifact |
|--------|----------------|
| ``table2_classification`` | Table 2 (clobber classification, quantified) |
| ``fig4_limit_study``      | Figure 4 (limit study, 3 categories) |
| ``fig8_path_cdf``         | Figure 8 (path length CDF) |
| ``fig9_avg_paths``        | Figure 9 (constructed vs ideal averages) |
| ``fig10_overheads``       | Figure 10 (execution time / instruction overheads) |
| ``fig12_recovery``        | Figure 12 (recovery schemes vs DMR baseline) |

Each exposes ``run(names=None)`` and ``format_report(result)``; running a
module as ``__main__`` prints the full-suite report.
"""

from repro.experiments import (
    all_figures,
    fig4_limit_study,
    fig8_path_cdf,
    fig9_avg_paths,
    fig10_overheads,
    fig12_recovery,
    table2_classification,
)
from repro.experiments.common import build_pair, format_table, geomean

__all__ = [
    "all_figures",
    "build_pair",
    "fig4_limit_study",
    "fig8_path_cdf",
    "fig9_avg_paths",
    "fig10_overheads",
    "fig12_recovery",
    "format_table",
    "geomean",
    "table2_classification",
]
