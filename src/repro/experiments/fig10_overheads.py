"""Figure 10: runtime overhead of the idempotent binaries.

Execution-time (cycles) and dynamic-instruction-count overheads of the
idempotent binary relative to the original binary, per workload and as
suite geomeans. Paper: execution time 11.2% SPEC INT / 5.4% SPEC FP /
2.7% PARSEC (7.7% overall); instruction count 8.7% / 8.2% / 4.8%
(7.6% overall) — "typical overheads in the range of just 2-12%".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.common import (
    build_pair,
    format_table,
    group_by_suite,
    map_workloads,
)
from repro.sim.simulator import Simulator


@dataclass
class OverheadRow:
    original_instructions: int
    idempotent_instructions: int
    original_cycles: int
    idempotent_cycles: int
    boundaries: int

    @property
    def instruction_overhead(self) -> float:
        return self.idempotent_instructions / self.original_instructions - 1.0

    @property
    def cycle_overhead(self) -> float:
        return self.idempotent_cycles / self.original_cycles - 1.0


@dataclass
class Fig10Result:
    rows: Dict[str, OverheadRow] = field(default_factory=dict)

    def suite_summary(self) -> Dict[str, Dict[str, float]]:
        cycle = {n: 1.0 + r.cycle_overhead for n, r in self.rows.items()}
        instr = {n: 1.0 + r.instruction_overhead for n, r in self.rows.items()}
        return {
            "cycles": {k: v - 1.0 for k, v in group_by_suite(cycle).items()},
            "instructions": {k: v - 1.0 for k, v in group_by_suite(instr).items()},
        }


def measure_pair(name: str) -> OverheadRow:
    original, idempotent = build_pair(name)
    sim_orig = Simulator(original.program)
    result_orig = sim_orig.run("main")
    sim_idem = Simulator(idempotent.program)
    result_idem = sim_idem.run("main")
    if result_orig != result_idem or sim_orig.output != sim_idem.output:
        raise AssertionError(
            f"{name}: original computed {result_orig!r}, idempotent {result_idem!r}"
        )
    return OverheadRow(
        original_instructions=sim_orig.instructions,
        idempotent_instructions=sim_idem.instructions,
        original_cycles=sim_orig.cycles,
        idempotent_cycles=sim_idem.cycles,
        boundaries=sim_idem.boundaries_crossed,
    )


def run(names: Optional[List[str]] = None, jobs: Optional[int] = None,
        telemetry=None) -> Fig10Result:
    result = Fig10Result()
    for workload, row in map_workloads(measure_pair, names, jobs=jobs,
                                       telemetry=telemetry):
        result.rows[workload.name] = row
    return result


def format_report(result: Fig10Result) -> str:
    headers = ["workload", "exec-time ovh", "instr ovh", "orig cycles", "idem cycles"]
    rows = []
    for name, row in result.rows.items():
        rows.append([
            name,
            f"{row.cycle_overhead:+.1%}",
            f"{row.instruction_overhead:+.1%}",
            row.original_cycles,
            row.idempotent_cycles,
        ])
    table = format_table(headers, rows)
    summary = result.suite_summary()
    lines = [table, ""]
    for metric, per_suite in summary.items():
        parts = "  ".join(f"{suite}={ovh:+.1%}" for suite, ovh in per_suite.items())
        lines.append(f"{metric} overhead geomeans: {parts}")
    lines.append("(paper exec-time: specint +11.2%, specfp +5.4%, parsec +2.7%, all +7.7%)")
    return "\n".join(lines)


def main(names: Optional[List[str]] = None) -> None:
    print(format_report(run(names)))


if __name__ == "__main__":
    main()
