"""Named counters, gauges, and histograms with labeled dimensions.

The registry is the quantitative half of ``repro.obs``: every layer of
the pipeline reports *what it did* (antideps found, cuts placed, cache
hits, simulator cycles) as a named instrument with optional labels::

    registry.counter("construction.cuts").inc(3, kind="hitting")
    registry.histogram("construction.region_size").observe(17)

Instruments are cheap (a dict update under a lock) and always active —
unlike spans they are bounded by label cardinality, not by event count —
so the numbers in ``repro stats`` never depend on whether tracing was
switched on.

Merge semantics are exact and order-independent for counters and
histograms: a parallel run whose workers ship their registries back
through :meth:`MetricsRegistry.merge_snapshot` aggregates to the same
totals as a serial run (histograms bucket observations instead of
keeping raw values, so their memory is constant).  Gauges are
point-in-time samples; merging keeps the last write.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, object], ...]

#: Geometric-ish default histogram bounds: fine at small values (region
#: sizes, path lengths), coarse into the millions (cycles, instructions).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144, 1048576, 16777216,
)


def _key(labels: Dict[str, object]) -> LabelKey:
    if len(labels) < 2:  # the common case needs no sort
        return tuple(labels.items())
    return tuple(sorted(labels.items()))


def _labels_of(key: LabelKey) -> Dict[str, object]:
    return dict(key)


class Counter:
    """Monotonic sum per label combination."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_key(labels), 0)

    def total(self) -> float:
        return sum(self._values.values())

    def _snapshot_values(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": _labels_of(key), "value": value}
                for key, value in self._values.items()
            ]

    def _merge_values(self, values: Iterable[dict]) -> None:
        with self._lock:
            for row in values:
                key = _key(row["labels"])
                self._values[key] = self._values.get(key, 0) + row["value"]


class Gauge:
    """Last-written value per label combination."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_key(labels)] = value

    def value(self, **labels: object) -> float:
        return self._values.get(_key(labels), 0)

    def _snapshot_values(self) -> List[dict]:
        with self._lock:
            return [
                {"labels": _labels_of(key), "value": value}
                for key, value in self._values.items()
            ]

    def _merge_values(self, values: Iterable[dict]) -> None:
        with self._lock:
            for row in values:
                self._values[_key(row["labels"])] = row["value"]


class _HistState:
    __slots__ = ("count", "sum", "min", "max", "buckets")

    def __init__(self, n_buckets: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        # buckets[i] counts observations <= bounds[i]; the final slot is
        # the overflow bucket (> bounds[-1]).
        self.buckets = [0] * (n_buckets + 1)


class Histogram:
    """Bucketed distribution per label combination (constant memory)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(bounds or DEFAULT_BOUNDS)
        self._values: Dict[LabelKey, _HistState] = {}
        self._lock = threading.Lock()

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                return i
        return len(self.bounds)

    def observe(self, value: float, **labels: object) -> None:
        key = _key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = self._values[key] = _HistState(len(self.bounds))
            state.count += 1
            state.sum += value
            state.min = value if state.min is None else min(state.min, value)
            state.max = value if state.max is None else max(state.max, value)
            state.buckets[self._bucket_index(value)] += 1

    def stats(self, **labels: object) -> dict:
        """count/sum/mean/min/max for one label combination."""
        state = self._values.get(_key(labels))
        if state is None:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": None, "max": None}
        return {
            "count": state.count,
            "sum": state.sum,
            "mean": state.sum / state.count if state.count else 0.0,
            "min": state.min,
            "max": state.max,
        }

    def _snapshot_values(self) -> List[dict]:
        with self._lock:
            return [
                {
                    "labels": _labels_of(key),
                    "count": state.count,
                    "sum": state.sum,
                    "min": state.min,
                    "max": state.max,
                    "buckets": list(state.buckets),
                }
                for key, state in self._values.items()
            ]

    def _merge_values(self, values: Iterable[dict]) -> None:
        with self._lock:
            for row in values:
                key = _key(row["labels"])
                state = self._values.get(key)
                if state is None:
                    state = self._values[key] = _HistState(len(self.bounds))
                state.count += row["count"]
                state.sum += row["sum"]
                for bound in (row.get("min"), row.get("max")):
                    if bound is None:
                        continue
                    state.min = bound if state.min is None else min(state.min, bound)
                    state.max = bound if state.max is None else max(state.max, bound)
                incoming = row.get("buckets") or []
                for i, count in enumerate(incoming[: len(state.buckets)]):
                    state.buckets[i] += count


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name → instrument map with snapshot / merge / diff."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Instrument access (create-on-first-use; kind conflicts are bugs)
    # ------------------------------------------------------------------
    def _get(self, name: str, kind: str, factory):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif instrument.kind != kind:
                raise TypeError(
                    f"metric {name!r} is a {instrument.kind}, not a {kind}"
                )
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(name, "histogram", lambda: Histogram(name, help, bounds))

    def names(self) -> List[str]:
        with self._lock:
            return list(self._instruments)

    # ------------------------------------------------------------------
    # Snapshot / merge / diff
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-serializable dump of every instrument."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {
            name: {
                "type": instrument.kind,
                "help": instrument.help,
                "values": instrument._snapshot_values(),
            }
            for name, instrument in instruments
        }

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms add (exact, order-independent); gauges
        take the incoming value.  This is how :class:`TaskExecutor`
        workers ship their per-unit metrics back to the parent.
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            factory = _INSTRUMENTS.get(kind)
            if factory is None:
                continue  # unknown instrument type from a newer writer
            instrument = self._get(
                name, kind, lambda: factory(name, entry.get("help", ""))
            )
            instrument._merge_values(entry.get("values", ()))


def counter_values(snapshot: Dict[str, dict], name: str) -> List[Tuple[dict, float]]:
    """(labels, value) rows of one counter in a snapshot (empty if absent)."""
    entry = snapshot.get(name)
    if not entry or entry.get("type") != "counter":
        return []
    return [(row["labels"], row["value"]) for row in entry.get("values", ())]


def diff_snapshots(before: Dict[str, dict], after: Dict[str, dict]) -> Dict[str, dict]:
    """What changed between two snapshots of the *same* registry.

    Counter and histogram values subtract (rows that did not move are
    dropped); gauges report their current value.  ``min``/``max`` of a
    histogram delta are carried from ``after`` — they bound the delta's
    observations but may be looser.  Run-scoped accounting (one
    :class:`~repro.harness.report.Telemetry`) is built on this.
    """
    delta: Dict[str, dict] = {}
    for name, entry in after.items():
        kind = entry.get("type")
        prior = before.get(name, {})
        prior_rows = {
            _key(row["labels"]): row for row in prior.get("values", ())
        } if prior.get("type") == kind else {}
        rows: List[dict] = []
        for row in entry.get("values", ()):
            key = _key(row["labels"])
            old = prior_rows.get(key)
            if kind == "counter":
                value = row["value"] - (old["value"] if old else 0)
                if value:
                    rows.append({"labels": row["labels"], "value": value})
            elif kind == "gauge":
                rows.append(dict(row))
            elif kind == "histogram":
                count = row["count"] - (old["count"] if old else 0)
                if not count:
                    continue
                old_buckets = (old.get("buckets") or []) if old else []
                buckets = [
                    current - (old_buckets[i] if i < len(old_buckets) else 0)
                    for i, current in enumerate(row.get("buckets") or [])
                ]
                rows.append({
                    "labels": row["labels"],
                    "count": count,
                    "sum": row["sum"] - (old["sum"] if old else 0.0),
                    "min": row.get("min"),
                    "max": row.get("max"),
                    "buckets": buckets,
                })
        if rows:
            delta[name] = {"type": kind, "help": entry.get("help", ""), "values": rows}
    return delta
