"""repro.obs — tracing, metrics, and profiling for the whole pipeline.

The observability subsystem answers "where did the time go, and which
pass/region/run produced this number?" for every layer: frontend,
transform passes, region construction, codegen, the machine simulator,
and the harness (cache + campaigns).

- :mod:`repro.obs.tracer` — hierarchical span tracing with monotonic
  timings and a strict no-op path when disabled.
- :mod:`repro.obs.metrics` — named counters / gauges / histograms with
  labeled dimensions and exact snapshot/merge, so parallel
  ``TaskExecutor`` workers aggregate identically to a serial run.
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto), flat metrics dumps, and the human
  ``--stats`` table.
- :mod:`repro.obs.context` — the process-global :class:`Observer` and
  the call-site helpers (``obs.span(...)``, ``obs.counter(...)``).

Typical use at an instrumentation site::

    from repro import obs

    with obs.span("construction.cuts", func=func.name):
        chosen = solve_hitting_set(...)
    obs.counter("construction.cuts").inc(len(chosen), kind="hitting")

CLI surface: ``repro experiment ... --profile t.json --metrics m.json
--stats`` and ``repro stats FILE`` (validate + summarize emitted files).
See ``docs/observability.md`` for naming conventions.
"""

from repro.obs.context import (
    Observer,
    counter,
    gauge,
    get_observer,
    histogram,
    log,
    set_observer,
    span,
)
from repro.obs.export import (
    METRICS_SCHEMA,
    ObsExportError,
    chrome_trace_events,
    format_stats_table,
    load_metrics_file,
    summarize_file,
    validate_metrics_file,
    validate_trace_file,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_values,
    diff_snapshots,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsExportError",
    "Observer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "counter",
    "counter_values",
    "diff_snapshots",
    "format_stats_table",
    "gauge",
    "get_observer",
    "histogram",
    "load_metrics_file",
    "log",
    "set_observer",
    "span",
    "summarize_file",
    "validate_metrics_file",
    "validate_trace_file",
    "write_chrome_trace",
    "write_metrics_json",
]
