"""The process-global :class:`Observer` — the handle every layer uses.

An ``Observer`` bundles one :class:`~repro.obs.tracer.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry`.  Instrumentation sites
(compiler driver, transform passes, region construction, codegen,
simulator, harness) never construct their own — they call the module
functions :func:`span` / :func:`counter` / :func:`histogram`, which
resolve the global observer *at call time*.  Late resolution is what
lets the harness swap registries around a work unit to capture per-unit
deltas, and lets tests install a throwaway observer.

Cost model: metrics are always on (bounded by label cardinality, cheap
dict updates); tracing is off by default and every ``span()`` call on a
disabled observer is a shared no-op — safe in hot paths.  Enable tracing
with ``get_observer().enable()`` (the CLI's ``--profile`` does this).

Nothing here writes to stdout: report text must stay byte-identical
whether observability is enabled or not.  :meth:`Observer.log` goes to
stderr (and into the trace as an instant event when tracing is on).
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Tracer


class Observer:
    """One tracer plus one metrics registry, usually process-global."""

    def __init__(self, enabled: bool = False) -> None:
        self.tracer = Tracer(enabled=enabled)
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether *tracing* is on (metrics are always active)."""
        return self.tracer.enabled

    def enable(self) -> None:
        self.tracer.enable()

    def disable(self) -> None:
        self.tracer.disable()

    # ------------------------------------------------------------------
    # Delegates
    # ------------------------------------------------------------------
    def span(self, name: str, /, **attrs):
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "", bounds=None) -> Histogram:
        return self.metrics.histogram(name, help, bounds)

    def log(self, message: str, /, **attrs) -> None:
        """Observability log line: stderr + an instant trace event."""
        print(f"[obs] {message}", file=sys.stderr)
        self.tracer.instant("log", message=message, **attrs)


# ----------------------------------------------------------------------
# Process-global observer
# ----------------------------------------------------------------------
_observer: Optional[Observer] = None


def get_observer() -> Observer:
    """The process-wide observer (created disabled on first use)."""
    global _observer
    if _observer is None:
        _observer = Observer()
    return _observer


def set_observer(observer: Optional[Observer]) -> Optional[Observer]:
    """Swap the process-wide observer (None resets to a lazy default).

    Returns the previous observer so tests can restore it.
    """
    global _observer
    previous = _observer
    _observer = observer
    return previous


# ----------------------------------------------------------------------
# Call-site conveniences (resolve the observer at call time)
# ----------------------------------------------------------------------
def span(name: str, /, **attrs):
    """``with obs.span("codegen.isel", func=name):`` — no-op when disabled."""
    return get_observer().span(name, **attrs)


def counter(name: str, help: str = "") -> Counter:
    return get_observer().counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return get_observer().gauge(name, help)


def histogram(name: str, help: str = "", bounds=None) -> Histogram:
    return get_observer().histogram(name, help, bounds)


def log(message: str, /, **attrs) -> None:
    get_observer().log(message, **attrs)
