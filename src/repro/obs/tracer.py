"""Hierarchical span tracing with a strict no-op path when disabled.

A *span* is one timed, named interval — a compiler pass over one
function, a region-construction phase, a simulator run.  Spans nest:
entering a span inside another records the parent/child relationship
(per thread), which is what lets the Chrome ``trace_event`` export show
the pipeline as a flame graph.

Design constraints, in order:

1. **Zero cost when disabled.**  ``Tracer.span`` on a disabled tracer
   returns a shared no-op context manager without allocating a span or
   touching the buffer; the only work is one attribute check.  Hot paths
   may therefore call it unconditionally.
2. **Thread-safe buffer.**  Finished spans append to one in-memory list
   under a lock; the per-thread open-span stack lives in a
   ``threading.local`` so nesting is tracked per thread.
3. **Process mergeable.**  Spans record their ``pid``/``tid``; a parent
   process adopts spans shipped back from :class:`TaskExecutor` workers
   with :meth:`Tracer.adopt` (see ``repro.harness.executor``).

Timing uses ``time.perf_counter_ns`` — monotonic, unaffected by clock
steps.  Timestamps are comparable only within one process; the exporter
normalizes per pid.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Span:
    """One finished (or instant) trace interval."""

    name: str
    start_ns: int
    dur_ns: int
    pid: int
    tid: int
    span_id: int
    parent_id: Optional[int] = None
    depth: int = 0
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """Chrome-trace category: the first dotted component of the name."""
        return self.name.split(".", 1)[0]


class _NullSpan:
    """Shared, reusable no-op context manager (disabled-tracer path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager recording one span on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id",
                 "depth", "start_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        tracer = self.tracer
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        self.depth = len(stack)
        self.span_id = tracer._next_id()
        stack.append(self.span_id)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self.tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        tracer._record(Span(
            name=self.name,
            start_ns=self.start_ns,
            dur_ns=end_ns - self.start_ns,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=self.span_id,
            parent_id=self.parent_id,
            depth=self.depth,
            attrs=self.attrs,
        ))
        return False


class Tracer:
    """Span recorder: a lock-protected buffer plus per-thread nesting."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._buffer: List[Span] = []
        self._local = threading.local()
        # itertools.count.__next__ is a single C call — atomic under the
        # GIL, so span-id allocation needs no lock on the hot path.
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, /, **attrs):
        """Context manager timing one interval; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _OpenSpan(self, name, attrs)

    def instant(self, name: str, /, **attrs) -> None:
        """Record a zero-duration marker (log lines, resume events)."""
        if not self.enabled:
            return
        stack = self._stack()
        self._record(Span(
            name=name,
            start_ns=time.perf_counter_ns(),
            dur_ns=0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            span_id=self._next_id(),
            parent_id=stack[-1] if stack else None,
            depth=len(stack),
            attrs=attrs,
        ))

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        return next(self._ids)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)

    # ------------------------------------------------------------------
    # Buffer access / cross-process merge
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of every recorded span (buffer order = finish order)."""
        with self._lock:
            return list(self._buffer)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    def mark(self) -> int:
        """Position marker for :meth:`spans_since` (worker deltas)."""
        with self._lock:
            return len(self._buffer)

    def spans_since(self, mark: int) -> List[Span]:
        with self._lock:
            return list(self._buffer[mark:])

    def adopt(self, spans: List[Span]) -> None:
        """Append spans recorded by another tracer (e.g. a worker process)."""
        if not spans:
            return
        with self._lock:
            self._buffer.extend(spans)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
