"""Exporters: Chrome ``trace_event`` JSON, metrics dumps, stats tables.

Three output shapes:

- :func:`write_chrome_trace` — the span buffer as Chrome's JSON Object
  Format (``{"traceEvents": [...]}``), loadable in ``chrome://tracing``
  or https://ui.perfetto.dev.  Spans become complete ("X") events;
  instant markers become "i" events; per-pid metadata names the tracks.
- :func:`write_metrics_json` — a flat, schema-tagged dump of a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot.
- :func:`format_stats_table` — the human ``--stats`` rendering of a
  snapshot.

The ``validate_*`` functions re-read an emitted file and check its
schema; ``repro stats FILE`` (and the CI trace-validity step) are built
on them.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.tracer import Span

#: Schema tag stamped into metrics dumps (bump on breaking layout change).
METRICS_SCHEMA = "repro.obs.metrics/1"

_VALID_TYPES = ("counter", "gauge", "histogram")


class ObsExportError(ValueError):
    """An emitted trace/metrics file failed schema validation."""


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace_events(spans: Sequence[Span]) -> List[dict]:
    """Spans → trace_event dicts (timestamps normalized per process).

    ``perf_counter_ns`` origins differ between processes, so each pid's
    events are rebased to that pid's earliest span.  Tracks from worker
    processes therefore all start near zero rather than at meaningless
    absolute offsets.
    """
    base_ns: Dict[int, int] = {}
    for span in spans:
        base = base_ns.get(span.pid)
        if base is None or span.start_ns < base:
            base_ns[span.pid] = span.start_ns

    events: List[dict] = []
    for pid in sorted(base_ns):
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": "repro" if len(base_ns) == 1 or pid == min(base_ns)
                     else f"repro worker {pid}"},
        })
    for span in spans:
        event = {
            "name": span.name,
            "cat": span.category,
            "ph": "i" if span.dur_ns == 0 else "X",
            "ts": (span.start_ns - base_ns[span.pid]) / 1000.0,
            "pid": span.pid,
            "tid": span.tid,
        }
        if event["ph"] == "X":
            event["dur"] = span.dur_ns / 1000.0
        else:
            event["s"] = "t"  # thread-scoped instant
        if span.attrs:
            event["args"] = {k: _jsonable(v) for k, v in span.attrs.items()}
        events.append(event)
    return events


def _jsonable(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def write_chrome_trace(path: str, spans: Sequence[Span]) -> int:
    """Write the Chrome JSON Object Format file; returns the event count."""
    events = chrome_trace_events(spans)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs"},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return len(events)


def validate_trace_file(path: str) -> int:
    """Schema-check an emitted trace; returns its event count.

    Raises :class:`ObsExportError` on malformed JSON or events missing
    the fields Chrome/Perfetto require.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObsExportError(f"{path}: unreadable trace ({exc})") from exc
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise ObsExportError(f"{path}: missing traceEvents list")
    for i, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            raise ObsExportError(f"{path}: event {i} is not an object")
        if not isinstance(event.get("name"), str) or "ph" not in event:
            raise ObsExportError(f"{path}: event {i} lacks name/ph")
        if event["ph"] == "M":
            continue
        for field in ("ts", "pid", "tid"):
            if not isinstance(event.get(field), (int, float)):
                raise ObsExportError(
                    f"{path}: event {i} ({event['name']!r}) lacks numeric {field}"
                )
        if event["ph"] == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ObsExportError(
                f"{path}: complete event {i} ({event['name']!r}) lacks dur"
            )
    return len(payload["traceEvents"])


# ----------------------------------------------------------------------
# Metrics dump
# ----------------------------------------------------------------------
def write_metrics_json(path: str, snapshot: Dict[str, dict]) -> int:
    """Write a schema-tagged metrics dump; returns the instrument count."""
    payload = {"schema": METRICS_SCHEMA, "metrics": snapshot}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(snapshot)


def load_metrics_file(path: str) -> Dict[str, dict]:
    """Read and validate a metrics dump; returns the snapshot."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObsExportError(f"{path}: unreadable metrics dump ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("schema") != METRICS_SCHEMA:
        raise ObsExportError(
            f"{path}: not a {METRICS_SCHEMA} dump "
            f"(schema={payload.get('schema')!r})"
            if isinstance(payload, dict)
            else f"{path}: not a metrics dump"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ObsExportError(f"{path}: metrics section is not an object")
    for name, entry in metrics.items():
        if not isinstance(entry, dict) or entry.get("type") not in _VALID_TYPES:
            raise ObsExportError(f"{path}: metric {name!r} has invalid type")
        values = entry.get("values")
        if not isinstance(values, list):
            raise ObsExportError(f"{path}: metric {name!r} lacks a values list")
        for row in values:
            if not isinstance(row, dict) or not isinstance(row.get("labels"), dict):
                raise ObsExportError(f"{path}: metric {name!r} has a malformed row")
            if entry["type"] in ("counter", "gauge"):
                if not isinstance(row.get("value"), (int, float)):
                    raise ObsExportError(
                        f"{path}: metric {name!r} row lacks numeric value"
                    )
            else:
                if not isinstance(row.get("count"), int):
                    raise ObsExportError(
                        f"{path}: histogram {name!r} row lacks integer count"
                    )
    return metrics


def validate_metrics_file(path: str) -> int:
    """Schema-check a metrics dump; returns its instrument count."""
    return len(load_metrics_file(path))


# ----------------------------------------------------------------------
# Human table
# ----------------------------------------------------------------------
def _format_labels(labels: Dict[str, object]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _format_number(value: object) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(int(value))


def format_stats_table(snapshot: Dict[str, dict], prefix: str = "") -> str:
    """Render a snapshot as a plain-text table (the ``--stats`` view)."""
    headers = ["metric", "labels", "value", "count", "mean", "min", "max"]
    rows: List[List[str]] = []
    for name in sorted(snapshot):
        if prefix and not name.startswith(prefix):
            continue
        entry = snapshot[name]
        kind = entry.get("type")
        for row in entry.get("values", ()):
            labels = _format_labels(row.get("labels", {}))
            if kind in ("counter", "gauge"):
                rows.append([name, labels, _format_number(row.get("value")),
                             "", "", "", ""])
            else:
                count = row.get("count", 0)
                mean = (row.get("sum", 0.0) / count) if count else 0.0
                rows.append([
                    name, labels, "", str(count), f"{mean:.2f}",
                    _format_number(row.get("min")), _format_number(row.get("max")),
                ])
    if not rows:
        return "(no metrics recorded)"
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i < 2 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        ))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# File summaries (the ``repro stats`` subcommand)
# ----------------------------------------------------------------------
def summarize_file(path: str) -> str:
    """Validate ``path`` as a trace, metrics, or bench dump and describe it.

    The file kind is sniffed from its JSON top level.  Raises
    :class:`ObsExportError` if the file is none of the three.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ObsExportError(f"{path}: unreadable ({exc})") from exc
    if isinstance(payload, dict) and isinstance(payload.get("schema"), str) \
            and payload["schema"].startswith("repro.serve.bench/"):
        # Lazy import: repro.bench itself builds on repro.obs.
        from repro.bench import BenchError, load_serve_bench_file
        from repro.bench import summarize_serve_bench

        try:
            bench = load_serve_bench_file(path)
        except BenchError as exc:
            raise ObsExportError(str(exc)) from exc
        header = (
            f"{path}: valid serve bench dump, "
            f"{bench['completed']} completed requests"
        )
        return header + "\n" + summarize_serve_bench(bench)
    if isinstance(payload, dict) and isinstance(payload.get("schema"), str) \
            and payload["schema"].startswith("repro.recovery.bench/"):
        # Lazy import: repro.bench itself builds on repro.obs.
        from repro.bench import BenchError, load_recovery_bench_file
        from repro.bench import summarize_recovery_bench

        try:
            bench = load_recovery_bench_file(path)
        except BenchError as exc:
            raise ObsExportError(str(exc)) from exc
        header = (
            f"{path}: valid recovery bench dump, "
            f"{len(bench['backends'])} backends"
        )
        return header + "\n" + summarize_recovery_bench(bench)
    if isinstance(payload, dict) and isinstance(payload.get("schema"), str) \
            and payload["schema"].startswith("repro.campaign.cache/"):
        # Lazy import: repro.bench itself builds on repro.obs.
        from repro.bench import BenchError, load_campaign_cache_file
        from repro.bench import summarize_campaign_cache

        try:
            bench = load_campaign_cache_file(path)
        except BenchError as exc:
            raise ObsExportError(str(exc)) from exc
        header = (
            f"{path}: valid campaign-cache bench dump, "
            f"{len(bench['scenarios'])} scenarios"
        )
        return header + "\n" + summarize_campaign_cache(bench)
    if isinstance(payload, dict) and isinstance(payload.get("schema"), str) \
            and payload["schema"].startswith("repro.bench/"):
        # Lazy import: repro.bench itself builds on repro.obs.
        from repro.bench import BenchError, load_bench_file, summarize_bench

        try:
            bench = load_bench_file(path)
        except BenchError as exc:
            raise ObsExportError(str(exc)) from exc
        header = f"{path}: valid bench dump, {len(bench['phases'])} phases"
        return header + "\n" + summarize_bench(bench)
    if isinstance(payload, dict) and "traceEvents" in payload:
        count = validate_trace_file(path)
        names = sorted({
            e.get("cat", "?") for e in payload["traceEvents"]
            if isinstance(e, dict) and e.get("ph") != "M"
        })
        return (
            f"{path}: valid Chrome trace, {count} events, "
            f"categories: {', '.join(names) if names else '(none)'}"
        )
    if isinstance(payload, dict) and "metrics" in payload:
        metrics = load_metrics_file(path)
        header = f"{path}: valid metrics dump, {len(metrics)} instruments"
        return header + "\n" + format_stats_table(metrics)
    raise ObsExportError(f"{path}: neither a Chrome trace nor a metrics dump")
