"""Top-level compilation driver: MiniC source → executable machine code.

Two build flavours, matching the paper's §6.1 methodology:

- ``compile_minic(src, idempotent=False)`` — the **original binary**: the
  standard optimization pipeline and an unconstrained register allocator.
- ``compile_minic(src, idempotent=True)`` — the **idempotent binary**:
  region construction (§4) plus the idempotence-preserving allocator
  (§4.4), with ``rcb`` boundary markers in the emitted code.

Both flavours run on :class:`repro.sim.Simulator`; the Fig. 10 overheads
are the ratio of their cycle/instruction counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import obs
from repro.codegen.isel import select_module
from repro.codegen.machine import MachineProgram
from repro.codegen.mverify import verify_machine_program
from repro.codegen.regalloc import AllocationStats, allocate_program
from repro.core.construction import (
    ConstructionConfig,
    ConstructionResult,
    construct_module_regions,
)
from repro.frontend import compile_source
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.transforms.pipeline import optimize_module


class CompilationError(RuntimeError):
    pass


@dataclass
class CompileResult:
    """Everything a caller may want to inspect about one build."""

    module: Module
    program: MachineProgram
    idempotent: bool
    construction: Dict[str, ConstructionResult] = field(default_factory=dict)
    alloc_stats: Dict[str, AllocationStats] = field(default_factory=dict)

    @property
    def static_instruction_count(self) -> int:
        return sum(f.instruction_count() for f in self.program.functions.values())


def compile_ir_module(
    module: Module,
    idempotent: bool = True,
    config: Optional[ConstructionConfig] = None,
    verify: bool = True,
    analysis_cache: bool = True,
    manager=None,
) -> CompileResult:
    """Compile an IR module (mutated in place) down to machine code.

    ``analysis_cache=False`` disables the per-function
    :class:`~repro.analysis.manager.AnalysisManager` during region
    construction (every phase recomputes its graph analyses from
    scratch); output is bit-identical either way — the switch exists
    for the ``repro bench`` cached-vs-fresh comparison and for tests.
    """
    flavour = "idempotent" if idempotent else "original"
    construction: Dict[str, ConstructionResult] = {}
    if idempotent:
        with obs.span("construction.module", module=module.name, flavour=flavour):
            construction = construct_module_regions(
                module, config, analysis_cache=analysis_cache,
                manager=manager,
            )
    else:
        with obs.span("transforms.module", module=module.name, flavour=flavour):
            optimize_module(module)
    if verify:
        with obs.span("verify.ir", module=module.name):
            verify_module(module, ssa=True)

    program = select_module(module)
    alloc_stats = allocate_program(program, idempotent=idempotent)

    if verify and idempotent:
        with obs.span("verify.machine", module=module.name):
            violations = verify_machine_program(program)
        if violations:
            details = "\n".join(repr(v) for v in violations)
            raise CompilationError(
                f"machine idempotence verification failed:\n{details}"
            )
    obs.counter("compile.modules").inc(flavour=flavour)
    return CompileResult(
        module=module,
        program=program,
        idempotent=idempotent,
        construction=construction,
        alloc_stats=alloc_stats,
    )


def compile_minic(
    source: str,
    idempotent: bool = True,
    config: Optional[ConstructionConfig] = None,
    verify: bool = True,
    name: str = "minic",
    analysis_cache: bool = True,
    manager=None,
) -> CompileResult:
    """Compile MiniC source text to machine code.

    ``manager`` optionally supplies a shared
    :class:`~repro.analysis.manager.AnalysisManager` (see
    :func:`repro.core.construction.construct_module_regions`).
    """
    flavour = "idempotent" if idempotent else "original"
    with obs.span("compile.minic", name=name, flavour=flavour):
        with obs.span("frontend.compile", name=name):
            module = compile_source(source, name)
        return compile_ir_module(
            module, idempotent=idempotent, config=config, verify=verify,
            analysis_cache=analysis_cache, manager=manager,
        )


def format_asm_listing(result: CompileResult) -> str:
    """The canonical machine-code listing of a build.

    One block per function: the formatted machine code followed by its
    allocator statistics line.  This is exactly what ``repro compile``
    prints, factored out so the serve protocol can return byte-identical
    text (the loadgen ``--check`` contract).
    """
    from repro.codegen import format_machine_function

    blocks = []
    for mfunc in result.program.functions.values():
        stats = result.alloc_stats[mfunc.name]
        blocks.append(
            format_machine_function(mfunc)
            + f"\n  ; vregs={stats.vregs} spilled={stats.spilled} "
              f"extended={stats.extended}\n\n"
        )
    return "".join(blocks)
