"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``compile FILE``    — compile MiniC and dump IR or machine code
- ``run FILE``        — compile and execute on the machine simulator
- ``regions FILE``    — region construction report for each function
- ``faults FILE``     — fault-injection campaign against both binaries
- ``experiment NAME`` — regenerate a paper figure/table (fig4, fig8,
  fig9, fig10, fig12, table2, or ``all``), with ``--jobs N`` sharding
  and the persistent artifact cache (``--no-cache`` to bypass)
- ``campaign``        — suite-wide fault-injection campaign: sharded,
  resumable via a JSON-lines manifest, deterministic under any sharding;
  ``--flavours``/``--backends`` select which binaries and recovery
  backends to campaign
- ``recovery``        — recovery-strategy zoo: idempotence vs TMR vs
  checkpoint-and-log under one interface — per-backend dynamic overhead
  and fault-campaign buckets, per-region predicted-vs-measured recovery
  from the static outcome predictor, schema-tagged
  ``BENCH_recovery.json`` dumps, and ``--hunt`` for minimized
  predictor-divergence reproducers (``docs/recovery.md``)
- ``fuzz``            — differential fuzzing: seeded program generation,
  interpreter/simulator differential + exhaustive re-execution +
  multi-fault oracles, delta-debugged reproducers (``docs/fuzzing.md``)
- ``bench``           — time compile/construction/sim phases per workload,
  emit schema-tagged ``BENCH_*.json``, and optionally gate against a
  baseline (``--baseline FILE --max-regression PCT``; see
  ``docs/performance.md``)
- ``serve``           — long-lived async compile/run/faults service over
  newline-delimited JSON, with admission control, request batching onto
  one persistent worker pool, shared build/analysis caches, and graceful
  drain (``docs/serving.md``); ``--load`` runs a self-contained
  server+loadgen benchmark
- ``loadgen``         — deterministic seeded load generator against a
  running ``repro serve``; emits a ``BENCH_serve.json`` (requests/sec,
  p50/p99 latency) that ``repro stats`` validates
- ``stats``           — validate and summarize emitted trace/metrics/bench
  files
- ``workloads``       — list the benchmark suite

``repro --version`` prints the package version (also stamped into the
serve handshake and every ``BENCH_serve.json``).

The ``experiment`` and ``campaign`` commands print a telemetry summary
(wall time, per-phase breakdown, cache effectiveness) to stderr, so
stdout stays byte-identical across serial, parallel, and warm-cache
invocations.  They also take resilience flags — ``--retries N``
(re-execute transiently failed units with deterministic backoff),
``--unit-timeout SECONDS`` (kill hung units and rebuild the pool), and
``--chaos SPEC`` (seeded worker crash/hang/raise injection for testing
the recovery machinery; see ``docs/harness.md``).  They also take the observability flags ``--profile
out.trace.json`` (Chrome ``trace_event`` profile of the whole pipeline —
open in chrome://tracing or Perfetto), ``--metrics out.metrics.json``
(flat dump of every counter/gauge/histogram), and ``--stats`` (human
metrics table on stderr); none of these change stdout by a single byte.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import repro_version
from repro.compiler import compile_minic, format_asm_listing
from repro.core import ConstructionConfig, construct_module_regions
from repro.frontend import compile_source
from repro.ir import format_module
from repro.sim import Simulator
from repro.transforms import optimize_module


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _config_from_args(args) -> ConstructionConfig:
    return ConstructionConfig(
        heuristic=args.heuristic,
        unroll_self_dep=not args.no_unroll,
        max_region_size=args.max_region_size,
        trust_argument_noalias=args.trust_noalias,
    )


def _split_names(value: Optional[str]) -> Optional[List[str]]:
    """Comma-separated CLI list → name list (None when empty/absent)."""
    if value is None:
        return None
    names = [name.strip() for name in value.split(",") if name.strip()]
    return names or None


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="write a Chrome trace_event profile "
                             "(open in chrome://tracing or Perfetto)")
    parser.add_argument("--metrics", metavar="FILE", default=None,
                        help="write a JSON dump of every recorded metric")
    parser.add_argument("--stats", action="store_true",
                        help="print the metrics table to stderr at exit")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-execute transiently failed work units "
                             "(worker killed, timeout) up to N extra times "
                             "with deterministic exponential backoff; "
                             "exhausted units are quarantined in the manifest")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill work units running longer than this; the "
                             "pool is rebuilt and surviving units resubmitted")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="chaos test hook: deterministically crash/hang/"
                             "raise workers on seeded units, e.g. "
                             "'seed=7,crash=0.3,hang=0.05' or a bare seed "
                             "(crash=0.25); combine with --retries")


def _resilience_from_args(args):
    """(retry, unit_timeout, chaos) from the CLI flags (all may be None)."""
    from repro.harness.resilience import ChaosPolicy, RetryPolicy

    retry = None
    if getattr(args, "retries", None) is not None:
        retry = RetryPolicy(max_attempts=max(1, args.retries + 1))
    chaos = None
    if getattr(args, "chaos", None):
        chaos = ChaosPolicy.parse(args.chaos)
    return retry, getattr(args, "unit_timeout", None), chaos


def _setup_obs(args) -> None:
    """Enable tracing before any work if a profile was requested."""
    if getattr(args, "profile", None):
        from repro.obs import get_observer

        get_observer().enable()


def _finalize_obs(args) -> None:
    """Write the requested trace/metrics artifacts (stderr notes only)."""
    from repro.obs import (
        format_stats_table,
        get_observer,
        write_chrome_trace,
        write_metrics_json,
    )

    observer = get_observer()
    if getattr(args, "profile", None):
        count = write_chrome_trace(args.profile, observer.tracer.spans())
        print(f"[obs] trace: {args.profile} ({count} events)", file=sys.stderr)
    if getattr(args, "metrics", None):
        count = write_metrics_json(args.metrics, observer.metrics.snapshot())
        print(f"[obs] metrics: {args.metrics} ({count} instruments)",
              file=sys.stderr)
    if getattr(args, "stats", False):
        print(format_stats_table(observer.metrics.snapshot()), file=sys.stderr)


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--heuristic", choices=["loop", "coverage"], default="loop",
                        help="cut selection policy (paper §4.3)")
    parser.add_argument("--no-unroll", action="store_true",
                        help="disable the unroll-by-one enhancement (§5)")
    parser.add_argument("--max-region-size", type=int, default=None,
                        help="bound boundary-free path length (§6.2)")
    parser.add_argument("--trust-noalias", action="store_true",
                        help="assume distinct pointer args never alias (§8)")


def cmd_compile(args) -> int:
    source = _read_source(args.file)
    if args.emit == "ir":
        module = compile_source(source)
        if args.original:
            optimize_module(module)
        else:
            construct_module_regions(module, _config_from_args(args))
        print(format_module(module))
        return 0
    result = compile_minic(
        source,
        idempotent=not args.original,
        config=_config_from_args(args),
    )
    # The serve front-end's --check contract compares its responses
    # byte-for-byte against this output, so both must go through
    # format_asm_listing.
    sys.stdout.write(format_asm_listing(result))
    return 0


def cmd_run(args) -> int:
    source = _read_source(args.file)
    result = compile_minic(
        source,
        idempotent=not args.original,
        config=_config_from_args(args),
    )
    sim = Simulator(result.program)
    value = sim.run(args.entry)
    for item in sim.output:
        print(item)
    print(f"; result={value} instructions={sim.instructions} "
          f"cycles={sim.cycles} boundaries={sim.boundaries_crossed}",
          file=sys.stderr)
    return 0


def cmd_regions(args) -> int:
    source = _read_source(args.file)
    module = compile_source(source)
    results = construct_module_regions(module, _config_from_args(args))
    for name, result in results.items():
        print(f"@{name}:")
        print(f"  antidependences:   {result.antidep_count}")
        print(f"  hitting-set cuts:  {result.hitting_set_cut_count}")
        print(f"  call cuts:         {result.mandatory_cut_count}")
        if result.loop_report:
            print(f"  loop fixups:       {result.loop_report.forced_cuts} cuts, "
                  f"{result.loop_report.loops_unrolled} loops unrolled")
        print(f"  size-bound cuts:   {result.size_bound_cuts}")
        print(f"  regions:           {result.region_count} "
              f"(sizes {result.static_region_sizes})")
    return 0


def cmd_faults(args) -> int:
    from repro.sim.faults import fault_campaign, format_rate

    source = _read_source(args.file)
    idem = compile_minic(source, idempotent=True, config=_config_from_args(args))
    orig = compile_minic(source, idempotent=False)
    reference_sim = Simulator(idem.program)
    reference = reference_sim.run(args.entry)
    reference_output = list(reference_sim.output)
    print(f"fault-free result: {reference}")
    for label, program in (("idempotent", idem.program), ("original", orig.program)):
        campaign = fault_campaign(
            program, reference, reference_output,
            trials=args.trials, func=args.entry, kind=args.kind,
        )
        print(f"{label:10s}: injected={campaign.injected} "
              f"recovered={campaign.recovered_correctly} "
              f"wrong={campaign.wrong_result} crashed={campaign.crashed} "
              f"({format_rate(campaign)} recovery)")
    return 0


def cmd_fuzz(args) -> int:
    from repro.fuzz import GEN_VERSION, format_fuzz_report, run_fuzz_campaign
    from repro.harness.report import Telemetry

    _setup_obs(args)
    retry, unit_timeout, chaos = _resilience_from_args(args)
    manifest_path = args.manifest
    if manifest_path is None and not args.no_manifest:
        tag = f"fuzz-g{GEN_VERSION}-seed{args.seed}-t{args.trials}"
        manifest_path = os.path.join(".repro-cache", "campaigns", f"{tag}.jsonl")
    if args.fresh and manifest_path and os.path.exists(manifest_path):
        os.unlink(manifest_path)
    telemetry = Telemetry(label="fuzz campaign")
    summary = run_fuzz_campaign(
        trials=args.trials,
        seed=args.seed,
        jobs=args.jobs,
        shrink=args.shrink,
        time_budget=args.time_budget,
        manifest_path=manifest_path,
        out_dir=args.out,
        multi_fault=not args.no_multi_fault,
        max_forced=args.max_forced,
        retry=retry,
        unit_timeout=unit_timeout,
        chaos=chaos,
        telemetry=telemetry,
    )
    print(format_fuzz_report(summary))
    telemetry.finish()
    if manifest_path:
        telemetry.note(f"manifest: {manifest_path}")
    print(telemetry.format_summary(), file=sys.stderr)
    _finalize_obs(args)
    return 0 if summary.ok else 1


def cmd_experiment(args) -> int:
    from repro import experiments
    from repro.experiments.common import configure
    from repro.harness.cache import default_cache
    from repro.harness.report import Telemetry

    _setup_obs(args)
    retry, unit_timeout, chaos = _resilience_from_args(args)
    configure(jobs=args.jobs, use_cache=not args.no_cache,
              retry=retry, unit_timeout=unit_timeout, chaos=chaos)
    telemetry = Telemetry(label=f"experiment {args.name}")
    names = args.workloads or None
    if args.name == "all":
        from repro.experiments.all_figures import run_all

        run_all(names, jobs=args.jobs, telemetry=telemetry)
    else:
        drivers = {
            "table2": experiments.table2_classification,
            "fig4": experiments.fig4_limit_study,
            "fig8": experiments.fig8_path_cdf,
            "fig9": experiments.fig9_avg_paths,
            "fig10": experiments.fig10_overheads,
            "fig12": experiments.fig12_recovery,
        }
        driver = drivers[args.name]
        print(driver.format_report(
            driver.run(names, jobs=args.jobs, telemetry=telemetry)
        ))
    telemetry.finish()
    telemetry.attach_cache(default_cache())
    print(telemetry.format_summary(), file=sys.stderr)
    _finalize_obs(args)
    return 0


def cmd_campaign(args) -> int:
    from repro.experiments.common import configure
    from repro.harness.cache import default_cache
    from repro.harness.campaign import format_campaign_report, run_fault_campaign
    from repro.harness.report import Telemetry

    if args.explain_stale and not args.incremental:
        print("campaign error: --explain-stale requires --incremental",
              file=sys.stderr)
        return 2
    if args.incremental and args.shard_trials is not None:
        print("campaign error: --incremental sections replace --shard-trials "
              "sharding (sections are the resume granularity)",
              file=sys.stderr)
        return 2
    _setup_obs(args)
    retry, unit_timeout, chaos = _resilience_from_args(args)
    configure(jobs=args.jobs, use_cache=not args.no_cache,
              retry=retry, unit_timeout=unit_timeout, chaos=chaos)
    flavours = _split_names(args.flavours)
    backends = _split_names(args.backends)
    manifest_path = args.manifest
    if manifest_path is None and not args.no_manifest:
        tag = (
            f"{args.kind}-seed{args.seed}-t{args.trials}-lat{args.latency}"
        )
        # Selection flags extend the tag so different subsets never share
        # a manifest; the no-flag tag stays byte-identical to before.
        if flavours:
            tag += "-fl" + "+".join(flavours)
        if backends:
            tag += "-be" + "+".join(backends)
        if args.incremental:
            tag += "-incr"
        manifest_path = os.path.join(".repro-cache", "campaigns", f"{tag}.jsonl")
    if args.fresh and manifest_path and os.path.exists(manifest_path):
        os.unlink(manifest_path)
    telemetry = Telemetry(label="fault campaign")
    try:
        if args.incremental:
            from repro.harness.incremental import (
                format_incremental_report,
                format_section_accounting,
                format_stale_report,
                run_incremental_fault_campaign,
            )

            summary = run_incremental_fault_campaign(
                names=args.workloads or None,
                trials=args.trials,
                seed=args.seed,
                kind=args.kind,
                detection_latency=args.latency,
                jobs=args.jobs,
                manifest_path=manifest_path,
                telemetry=telemetry,
                retry=retry,
                unit_timeout=unit_timeout,
                chaos=chaos,
                flavours=flavours,
                backends=backends,
            )
        else:
            summary = run_fault_campaign(
                names=args.workloads or None,
                trials=args.trials,
                seed=args.seed,
                kind=args.kind,
                detection_latency=args.latency,
                jobs=args.jobs,
                manifest_path=manifest_path,
                shard_trials=args.shard_trials,
                telemetry=telemetry,
                retry=retry,
                unit_timeout=unit_timeout,
                chaos=chaos,
                flavours=flavours,
                backends=backends,
            )
    except ValueError as exc:
        print(f"campaign error: {exc}", file=sys.stderr)
        return 2
    if args.incremental:
        # Section/unit accounting goes to stderr so a warm re-run's
        # stdout is byte-identical to the cold run that filled the store.
        print(format_incremental_report(summary))
        if args.explain_stale:
            print(format_stale_report(summary), file=sys.stderr)
        else:
            print(format_section_accounting(summary), file=sys.stderr)
    else:
        print(format_campaign_report(summary))
    telemetry.finish()
    telemetry.attach_cache(default_cache())
    if manifest_path:
        telemetry.note(f"manifest: {manifest_path}")
    print(telemetry.format_summary(), file=sys.stderr)
    _finalize_obs(args)
    return 1 if summary.failed_units or summary.quarantined_units else 0


def cmd_recovery(args) -> int:
    from repro.bench import validate_recovery_bench_file, write_recovery_bench_json
    from repro.recovery import format_compare_report, run_compare
    from repro.recovery.compare import bench_payload, hunt_divergence

    _setup_obs(args)
    backends = _split_names(args.backends)
    try:
        report = run_compare(
            names=args.workloads or None,
            backends=backends,
            trials=args.trials,
            seed=args.seed,
            kind=args.kind,
            latency=args.latency,
            threshold=args.threshold,
            use_store=args.use_store,
        )
    except (KeyError, ValueError) as exc:
        print(f"recovery error: {exc}", file=sys.stderr)
        return 2
    print(format_compare_report(report))
    if args.out:
        write_recovery_bench_json(
            args.out,
            bench_payload(report, label=args.label, version=repro_version()),
        )
        count = validate_recovery_bench_file(args.out)
        print(f"[recovery] bench: {args.out} ({count} backends)",
              file=sys.stderr)
    if args.hunt:
        hunt = hunt_divergence(
            args.hunt,
            hunt_seed=args.hunt_seed,
            backend_name=report.backends[0],
            trials=args.trials,
            kind=args.kind,
            latency=args.latency,
            threshold=args.threshold,
            out_dir=args.hunt_out,
        )
        print()
        print(f"hunt: worst divergence {hunt.worst_divergence:.3f} "
              f"(gen seed {hunt.worst_seed}) over {hunt.programs} programs")
        if hunt.reduced_path:
            print(f"hunt: minimized reproducer {hunt.reduced_path} "
                  f"({hunt.reduce_steps} reduction steps)")
        else:
            print(f"hunt: below threshold {args.threshold:.2f}; "
                  f"no reproducer written")
    _finalize_obs(args)
    return 0


def cmd_bench(args) -> int:
    from repro.bench import (
        BenchError,
        FAST_SUBSET,
        compare_bench,
        default_workloads,
        format_comparison,
        load_bench_file,
        run_bench,
        summarize_bench,
        validate_bench_file,
        write_bench_json,
    )

    if args.campaign_cache:
        from repro.bench import (
            run_campaign_cache_bench,
            summarize_campaign_cache,
            validate_campaign_cache_file,
            write_campaign_cache_json,
        )

        try:
            payload = run_campaign_cache_bench(label=args.label)
        except BenchError as exc:
            print(f"bench error: {exc}", file=sys.stderr)
            return 2
        if args.out:
            write_campaign_cache_json(args.out, payload)
            count = validate_campaign_cache_file(args.out)
            print(f"[bench] wrote {args.out} ({count} scenarios)",
                  file=sys.stderr)
        print(summarize_campaign_cache(payload))
        return 0

    if args.workloads:
        names = args.workloads
    elif args.quick:
        names = list(FAST_SUBSET)
    else:
        names = default_workloads()
    repeats = 1 if args.quick else args.repeats
    try:
        payload = run_bench(
            names,
            repeats=repeats,
            label=args.label,
            analysis_cache=not args.no_analysis_cache,
        )
    except BenchError as exc:
        print(f"bench error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        write_bench_json(args.out, payload)
        count = validate_bench_file(args.out)
        print(f"[bench] wrote {args.out} ({count} phases)", file=sys.stderr)
    print(summarize_bench(payload))
    if args.baseline:
        try:
            baseline = load_bench_file(args.baseline)
        except BenchError as exc:
            print(f"bench error: {exc}", file=sys.stderr)
            return 2
        print()
        print(format_comparison(payload, baseline))
        regressions = compare_bench(payload, baseline, args.max_regression)
        if regressions:
            print(f"\n{len(regressions)} regression(s) past "
                  f"{args.max_regression:.0f}%:", file=sys.stderr)
            for regression in regressions:
                print(f"  {regression}", file=sys.stderr)
            return 1
    return 0


def _serve_config_from_args(args):
    from repro.serve import ServeConfig

    return ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_depth=args.queue_depth,
        max_inflight_bytes=args.max_inflight_bytes,
        batch_window_s=args.batch_window,
        batch_max=args.batch_max,
        retries=args.retries,
        unit_timeout=args.unit_timeout,
    )


def _run_load(host: str, port: int, args) -> int:
    """Shared loadgen driver for ``loadgen`` and ``serve --load``."""
    from repro.bench import validate_serve_bench_file, write_serve_bench_json
    from repro.serve import LoadConfig, format_load_report, run_loadgen

    config = LoadConfig(
        trials=args.trials,
        seed=args.seed,
        concurrency=args.concurrency,
        flavour=args.flavour,
        emit=args.emit,
        check=args.check,
        rps=args.rps,
    )
    report = run_loadgen(host, port, config)
    print(format_load_report(report))
    if args.out:
        write_serve_bench_json(args.out, report.bench_payload())
        count = validate_serve_bench_file(args.out)
        print(f"[serve] bench: {args.out} ({count} completed requests)",
              file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    from repro.serve import ServerThread, run_server

    _setup_obs(args)
    config = _serve_config_from_args(args)
    if args.load:
        thread = ServerThread(config)
        host, port = thread.start()
        print(f"[serve] listening on {host}:{port} "
              f"(jobs={config.jobs}, load mode)", file=sys.stderr)
        try:
            status = _run_load(host, port, args)
        finally:
            thread.stop()
        _finalize_obs(args)
        return status

    def announce(server) -> None:
        print(f"[serve] listening on {server.host}:{server.port} "
              f"(jobs={config.jobs})", file=sys.stderr)

    status = run_server(config, drain_after=args.drain_after,
                        announce=announce)
    _finalize_obs(args)
    return status


def cmd_loadgen(args) -> int:
    from repro.obs import write_metrics_json
    from repro.serve import ProtocolError, ServeClient

    status = _run_load(args.host, args.port, args)
    if args.fetch_metrics or args.stop_server:
        try:
            with ServeClient(args.host, args.port) as client:
                if args.fetch_metrics:
                    payload = client.metrics()
                    count = write_metrics_json(
                        args.fetch_metrics, payload["metrics"]
                    )
                    print(f"[serve] metrics: {args.fetch_metrics} "
                          f"({count} instruments)", file=sys.stderr)
                if args.stop_server:
                    client.shutdown()
        except (OSError, ProtocolError) as exc:
            print(f"[serve] post-run request failed: {exc}", file=sys.stderr)
            return 1
    return status


def cmd_stats(args) -> int:
    from repro.obs import ObsExportError, summarize_file

    status = 0
    for path in args.files:
        try:
            print(summarize_file(path))
        except ObsExportError as exc:
            print(f"invalid: {exc}", file=sys.stderr)
            status = 1
    return status


def cmd_workloads(args) -> int:
    from repro.workloads import all_workloads

    for workload in all_workloads():
        lines = len(workload.source.splitlines())
        print(f"{workload.suite:8s} {workload.name:14s} {lines:4d} lines")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Idempotent processing: compiler, simulator, experiments.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {repro_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile MiniC; dump IR or machine code")
    p.add_argument("file", help="MiniC source file, or - for stdin")
    p.add_argument("--emit", choices=["ir", "asm"], default="asm")
    p.add_argument("--original", action="store_true",
                   help="conventional binary (no region construction)")
    _add_config_flags(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile and execute")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--original", action="store_true")
    _add_config_flags(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("regions", help="region construction report")
    p.add_argument("file")
    _add_config_flags(p)
    p.set_defaults(func=cmd_regions)

    p = sub.add_parser("faults", help="fault injection campaign")
    p.add_argument("file")
    p.add_argument("--entry", default="main")
    p.add_argument("--trials", type=int, default=30)
    p.add_argument("--kind", choices=["value", "control"], default="value")
    _add_config_flags(p)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p.add_argument("name", choices=["table2", "fig4", "fig8", "fig9", "fig10",
                                    "fig12", "all"])
    p.add_argument("workloads", nargs="*", help="workload subset (default: all)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="shard builds and measurements over N processes")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent artifact cache")
    _add_resilience_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser(
        "campaign",
        help="suite-wide fault-injection campaign (sharded, resumable)",
    )
    p.add_argument("workloads", nargs="*", help="workload subset (default: all)")
    p.add_argument("--trials", type=int, default=40,
                   help="fault trials per workload and flavour")
    p.add_argument("--seed", type=int, default=12345,
                   help="campaign seed; per-trial seeds derive from it")
    p.add_argument("--kind", choices=["value", "control"], default="value")
    p.add_argument("--latency", type=int, default=0,
                   help="detection latency in dynamic instructions")
    p.add_argument("--flavours", default=None, metavar="NAMES",
                   help="comma-separated flavour subset (original, "
                        "idempotent; default: both)")
    p.add_argument("--backends", default=None, metavar="NAMES",
                   help="also campaign these recovery backends "
                        "(idempotent, checkpoint_log, tmr; see "
                        "docs/recovery.md)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="shard work units over N processes")
    p.add_argument("--shard-trials", type=int, default=None,
                   help="trials per work unit (finer resume granularity)")
    p.add_argument("--manifest", default=None,
                   help="JSON-lines run manifest (default: derived path "
                        "under .repro-cache/campaigns/)")
    p.add_argument("--no-manifest", action="store_true",
                   help="do not record or resume from a manifest")
    p.add_argument("--fresh", action="store_true",
                   help="discard any existing manifest before running")
    p.add_argument("--incremental", action="store_true",
                   help="compositional campaign: split each workload into "
                        "per-region sections, compose previously stored "
                        "section outcomes from the content-addressed store "
                        "under .repro-cache/outcomes/, and re-inject only "
                        "sections whose code changed (docs/campaigns.md); "
                        "results are bit-identical to the monolithic "
                        "campaign at equal budgets")
    p.add_argument("--explain-stale", action="store_true",
                   help="with --incremental: report on stderr which "
                        "sections re-injected and why (new-section, "
                        "code-changed, pipeline-changed, evicted, top-up)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent artifact cache")
    _add_resilience_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "recovery",
        help="recovery-strategy zoo: overhead vs measured recovery, "
             "with the static outcome predictor (docs/recovery.md)",
    )
    p.add_argument("mode", choices=["compare"],
                   help="comparison driver (predicted vs measured outcomes)")
    p.add_argument("workloads", nargs="*", help="workload subset (default: all)")
    p.add_argument("--backends", default=None, metavar="NAMES",
                   help="comma-separated backend subset (idempotent, "
                        "checkpoint_log, tmr; default: all three)")
    p.add_argument("--trials", type=int, default=24,
                   help="fault trials per workload and backend")
    p.add_argument("--seed", type=int, default=12345,
                   help="campaign seed; per-backend seeds derive from it "
                        "spawn-key style (idempotent rows are bit-identical "
                        "to repro campaign at the same parameters)")
    p.add_argument("--kind", choices=["value", "control"], default="value")
    p.add_argument("--latency", type=int, default=0,
                   help="detection latency in dynamic instructions")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="flag regions where |predicted - measured| recovery "
                        "exceeds this")
    p.add_argument("--use-store", action="store_true",
                   help="run campaigns through the incremental harness: "
                        "compose cached per-region sections from the "
                        "content-addressed outcome store and inject only "
                        "missing ones (bit-identical results; "
                        "docs/campaigns.md)")
    p.add_argument("--label", default="recovery",
                   help="label stamped into the bench dump")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write a BENCH_recovery.json dump (repro stats "
                        "validates it)")
    p.add_argument("--hunt", type=int, default=None, metavar="N",
                   help="scan N fuzz-generated programs for the worst "
                        "predictor divergence; at/above --threshold the "
                        "reducer minimizes it")
    p.add_argument("--hunt-seed", type=int, default=0,
                   help="seed for the hunt's generated-program stream")
    p.add_argument("--hunt-out", default=os.path.join("examples", "regressions"),
                   help="directory for minimized divergence reproducers")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_recovery)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing campaign against the oracle stack",
    )
    p.add_argument("--trials", type=int, default=50,
                   help="fuzz trials (one generated program each)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; per-trial generator seeds derive "
                        "from it spawn-key style")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="shard trials over N processes")
    p.add_argument("--shrink", action="store_true", default=True,
                   help="minimize failing programs with the delta-debugging "
                        "reducer (default: on)")
    p.add_argument("--no-shrink", dest="shrink", action="store_false",
                   help="write raw failing programs without reduction")
    p.add_argument("--time-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="stop launching new trials once this much wall "
                        "clock has elapsed (completed trials stay in the "
                        "manifest; resume to continue)")
    p.add_argument("--max-forced", type=int, default=None, metavar="N",
                   help="cap forced-recovery points per oracle mode "
                        "(evenly spaced; default: exhaustive — every "
                        "dynamic check point)")
    p.add_argument("--no-multi-fault", action="store_true",
                   help="skip the fault-during-recovery oracle")
    p.add_argument("--out", default=os.path.join("examples", "regressions"),
                   help="directory for (minimized) reproducer sources")
    p.add_argument("--manifest", default=None,
                   help="JSON-lines run manifest (default: derived path "
                        "under .repro-cache/campaigns/)")
    p.add_argument("--no-manifest", action="store_true",
                   help="do not record or resume from a manifest")
    p.add_argument("--fresh", action="store_true",
                   help="discard any existing manifest before running")
    _add_resilience_flags(p)
    _add_obs_flags(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "bench",
        help="time compile/construction/sim phases per workload",
    )
    p.add_argument("workloads", nargs="*",
                   help="workload subset (default: the fast subset, or the "
                        "full suite with REPRO_BENCH_FULL=1)")
    p.add_argument("--label", default="local",
                   help="label stamped into the bench dump")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write a schema-tagged BENCH_*.json dump")
    p.add_argument("--repeats", type=int, default=3,
                   help="measurements per workload; the per-phase minimum "
                        "is kept (noise filter)")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="compare against a previous BENCH_*.json dump")
    p.add_argument("--max-regression", type=float, default=10.0, metavar="PCT",
                   help="with --baseline: exit nonzero if any gated phase "
                        "is more than PCT%% slower (default 10)")
    p.add_argument("--quick", action="store_true",
                   help="one repeat over the fast subset (the CI setting)")
    p.add_argument("--no-analysis-cache", action="store_true",
                   help="disable the AnalysisManager cache (measures the "
                        "recompute-everything pipeline; output IR is "
                        "bit-identical either way)")
    p.add_argument("--campaign-cache", action="store_true",
                   help="benchmark the incremental fault-campaign store "
                        "instead: monolithic vs cold/warm/one-function-"
                        "edited wall-times with self-verified bit-identity "
                        "(writes a BENCH_campaign_cache.json with --out; "
                        "docs/campaigns.md)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve",
        help="long-lived NDJSON compile/run/faults service "
             "(docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0: pick a free port; the bound "
                        "address is printed to stderr)")
    p.add_argument("-j", "--jobs", type=int, default=1,
                   help="worker processes in the persistent compile pool")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission control: max queued work requests "
                        "before rejection with retry_after")
    p.add_argument("--max-inflight-bytes", type=int, default=8 * 1024 * 1024,
                   help="admission control: max total bytes of queued "
                        "request sources")
    p.add_argument("--batch-window", type=float, default=0.005,
                   metavar="SECONDS",
                   help="coalescing window before a batch is dispatched")
    p.add_argument("--batch-max", type=int, default=16,
                   help="max requests dispatched per batch")
    p.add_argument("--drain-after", type=float, default=None,
                   metavar="SECONDS",
                   help="gracefully drain and exit after this long "
                        "(default: run until SIGINT/SIGTERM)")
    p.add_argument("--load", action="store_true",
                   help="self-contained benchmark: start the server, run "
                        "the seeded load generator against it, drain, exit")
    p.add_argument("--trials", type=int, default=20,
                   help="with --load: requests in the synthetic stream")
    p.add_argument("--seed", type=int, default=0,
                   help="with --load: stream seed (programs + pacing)")
    p.add_argument("--concurrency", type=int, default=2,
                   help="with --load: client connections")
    p.add_argument("--flavour", choices=["idempotent", "original"],
                   default="idempotent",
                   help="with --load: compile flavour requested")
    p.add_argument("--emit", choices=["ir", "asm"], default="asm",
                   help="with --load: compile output requested")
    p.add_argument("--check", action="store_true",
                   help="with --load: byte-compare every response against "
                        "a one-shot in-process compile")
    p.add_argument("--rps", type=float, default=None,
                   help="with --load: target arrival rate (default: "
                        "closed-loop, no pacing)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="with --load: write a BENCH_serve.json dump")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="re-execute transiently failed work units up to "
                        "N extra times (same semantics as campaign)")
    p.add_argument("--unit-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill work units running longer than this; the "
                        "pool is rebuilt and surviving units resubmitted")
    _add_obs_flags(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="seeded load generator against a running repro serve",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="server host (default 127.0.0.1)")
    p.add_argument("--port", type=int, required=True,
                   help="server port (from the serve stderr banner)")
    p.add_argument("--trials", type=int, default=20,
                   help="requests in the synthetic stream")
    p.add_argument("--seed", type=int, default=0,
                   help="stream seed; programs and pacing derive from it "
                        "spawn-key style (no wall clock in the stream)")
    p.add_argument("--concurrency", type=int, default=2,
                   help="client connections (worker threads)")
    p.add_argument("--flavour", choices=["idempotent", "original"],
                   default="idempotent",
                   help="compile flavour requested")
    p.add_argument("--emit", choices=["ir", "asm"], default="asm",
                   help="compile output requested")
    p.add_argument("--check", action="store_true",
                   help="byte-compare every response against a one-shot "
                        "in-process compile")
    p.add_argument("--rps", type=float, default=None,
                   help="target arrival rate (default: closed-loop)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write a BENCH_serve.json dump (repro stats "
                        "validates it)")
    p.add_argument("--fetch-metrics", metavar="FILE", default=None,
                   help="after the run, dump the server's metrics "
                        "snapshot to FILE (repro stats validates it)")
    p.add_argument("--stop-server", action="store_true",
                   help="after the run, ask the server to drain and exit")
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "stats",
        help="validate and summarize emitted trace/metrics/bench files",
    )
    p.add_argument("files", nargs="+",
                   help="files written by --profile / --metrics / bench --out")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("workloads", help="list the benchmark suite")
    p.set_defaults(func=cmd_workloads)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `| head`): not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
