"""repro.frontend — the MiniC language frontend.

MiniC is a C subset used to author the workload suite: ``int``/``float``
scalars, single-level pointers, fixed-size arrays, full expression and
control-flow syntax, and the builtin functions of the runtime
(``malloc``, ``print_int``, ``sqrt``, ...).

One-call compilation::

    from repro.frontend import compile_source
    module = compile_source("int main() { return 42; }")
"""

from repro.frontend.ctypes_ import (
    CArrayType,
    CFLOAT,
    CINT,
    CPtrType,
    CType,
    CVOID,
    words_of,
)
from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.lower import LowerError, lower_program
from repro.frontend.parser import ParseError, parse_source
from repro.frontend.sema import SemaError, analyze
from repro.ir.module import Module


def compile_source(source: str, name: str = "minic") -> Module:
    """Compile MiniC source text to an (unoptimized) IR module."""
    program = parse_source(source)
    analyze(program)
    return lower_program(program, name)


__all__ = [
    "CArrayType",
    "CFLOAT",
    "CINT",
    "CPtrType",
    "CType",
    "CVOID",
    "LexError",
    "LowerError",
    "ParseError",
    "SemaError",
    "Token",
    "analyze",
    "compile_source",
    "lower_program",
    "parse_source",
    "tokenize",
    "words_of",
]
