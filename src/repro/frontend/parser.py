"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.ctypes_ import (
    CArrayType,
    CFLOAT,
    CINT,
    CPtrType,
    CType,
    CVOID,
)
from repro.frontend.lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tok
        self.pos += 1
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self.tok
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            wanted = text if text is not None else kind
            raise ParseError(f"expected {wanted!r}, got {self.tok.text!r}", self.tok.line)
        return token

    def at_type_keyword(self, offset: int = 0) -> bool:
        token = self.tokens[min(self.pos + offset, len(self.tokens) - 1)]
        return token.kind == "kw" and token.text in ("int", "float", "void")

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def parse_type_spec(self) -> CType:
        token = self.expect("kw")
        if token.text == "int":
            base: CType = CINT
        elif token.text == "float":
            base = CFLOAT
        elif token.text == "void":
            base = CVOID
        else:
            raise ParseError(f"expected a type, got {token.text!r}", token.line)
        while self.accept("op", "*"):
            if base.is_void:
                raise ParseError("void* is not supported", token.line)
            base = CPtrType(base)
        return base

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.FunctionDef] = []
        while self.tok.kind != "eof":
            if not self.at_type_keyword():
                raise ParseError(
                    f"expected declaration, got {self.tok.text!r}", self.tok.line
                )
            start = self.pos
            ctype = self.parse_type_spec()
            name_token = self.expect("ident")
            if self.tok.kind == "punct" and self.tok.text == "(":
                self.pos = start
                functions.append(self.parse_function())
            else:
                self.pos = start
                globals_.append(self.parse_global())
        return ast.Program(globals_, functions)

    def parse_global(self) -> ast.GlobalDecl:
        line = self.tok.line
        ctype = self.parse_type_spec()
        if ctype.is_void:
            raise ParseError("global variables cannot be void", line)
        name = self.expect("ident").text
        if self.accept("punct", "["):
            size = int(self.expect("int").text, 0)
            self.expect("punct", "]")
            if ctype.is_ptr:
                raise ParseError("arrays of pointers are not supported", line)
            ctype = CArrayType(ctype, size)
        init = None
        if self.accept("op", "="):
            init = self.parse_global_initializer(ctype)
        self.expect("punct", ";")
        return ast.GlobalDecl(name, ctype, init, line)

    def parse_global_initializer(self, ctype: CType) -> List[object]:
        if self.accept("punct", "{"):
            values: List[object] = []
            if not self.accept("punct", "}"):
                while True:
                    values.append(self._parse_literal_number())
                    if self.accept("punct", "}"):
                        break
                    self.expect("punct", ",")
            return values
        return [self._parse_literal_number()]

    def _parse_literal_number(self) -> object:
        negative = bool(self.accept("op", "-"))
        token = self.tok
        if token.kind == "int":
            self.advance()
            value: object = int(token.text, 0)
        elif token.kind == "float":
            self.advance()
            value = float(token.text)
        else:
            raise ParseError(
                f"expected numeric literal, got {token.text!r}", token.line
            )
        return -value if negative else value

    def parse_function(self) -> ast.FunctionDef:
        line = self.tok.line
        return_type = self.parse_type_spec()
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: List[ast.Param] = []
        if not self.accept("punct", ")"):
            while True:
                ptype = self.parse_type_spec()
                if ptype.is_void:
                    raise ParseError("parameters cannot be void", self.tok.line)
                pname = self.expect("ident").text
                params.append(ast.Param(pname, ptype, self.tok.line))
                if self.accept("punct", ")"):
                    break
                self.expect("punct", ",")
        body = self.parse_block()
        return ast.FunctionDef(name, return_type, params, body, line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def parse_block(self) -> ast.Block:
        line = self.expect("punct", "{").line
        statements: List[ast.Stmt] = []
        while not self.accept("punct", "}"):
            statements.append(self.parse_statement())
        return ast.Block(statements, line)

    def parse_statement(self) -> ast.Stmt:
        token = self.tok
        if token.kind == "punct" and token.text == "{":
            return self.parse_block()
        if token.kind == "kw":
            if token.text == "if":
                return self.parse_if()
            if token.text == "while":
                return self.parse_while()
            if token.text == "for":
                return self.parse_for()
            if token.text == "return":
                self.advance()
                value = None
                if not (self.tok.kind == "punct" and self.tok.text == ";"):
                    value = self.parse_expression()
                self.expect("punct", ";")
                return ast.Return(value, token.line)
            if token.text == "break":
                self.advance()
                self.expect("punct", ";")
                return ast.Break(token.line)
            if token.text == "continue":
                self.advance()
                self.expect("punct", ";")
                return ast.Continue(token.line)
            if token.text in ("int", "float"):
                return self.parse_declaration()
            raise ParseError(f"unexpected keyword {token.text!r}", token.line)
        expr = self.parse_expression()
        self.expect("punct", ";")
        return ast.ExprStmt(expr, token.line)

    def parse_declaration(self) -> ast.DeclStmt:
        line = self.tok.line
        ctype = self.parse_type_spec()
        name = self.expect("ident").text
        if self.accept("punct", "["):
            size = int(self.expect("int").text, 0)
            self.expect("punct", "]")
            if ctype.is_ptr:
                raise ParseError("arrays of pointers are not supported", line)
            ctype = CArrayType(ctype, size)
        init = None
        if self.accept("op", "="):
            if ctype.is_array:
                raise ParseError("local arrays cannot have initializers", line)
            init = self.parse_expression()
        self.expect("punct", ";")
        return ast.DeclStmt(name, ctype, init, line)

    def parse_if(self) -> ast.If:
        line = self.expect("kw", "if").line
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        then_body = self.parse_statement()
        else_body = None
        if self.accept("kw", "else"):
            else_body = self.parse_statement()
        return ast.If(cond, then_body, else_body, line)

    def parse_while(self) -> ast.While:
        line = self.expect("kw", "while").line
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.While(cond, body, line)

    def parse_for(self) -> ast.For:
        line = self.expect("kw", "for").line
        self.expect("punct", "(")
        init: Optional[ast.Stmt] = None
        if self.at_type_keyword():
            init = self.parse_declaration()  # consumes ';'
        elif not (self.tok.kind == "punct" and self.tok.text == ";"):
            init = ast.ExprStmt(self.parse_expression(), line)
            self.expect("punct", ";")
        else:
            self.expect("punct", ";")
        cond = None
        if not (self.tok.kind == "punct" and self.tok.text == ";"):
            cond = self.parse_expression()
        self.expect("punct", ";")
        step = None
        if not (self.tok.kind == "punct" and self.tok.text == ")"):
            step = self.parse_expression()
        self.expect("punct", ")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def parse_expression(self) -> ast.Expr:
        return self.parse_assignment()

    _COMPOUND_OPS = {
        "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
        "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
    }

    def parse_assignment(self) -> ast.Expr:
        lhs = self.parse_conditional()
        token = self.tok
        if token.kind == "op" and token.text == "=":
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(lhs, value, token.line)
        if token.kind == "op" and token.text in self._COMPOUND_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.CompoundAssign(
                self._COMPOUND_OPS[token.text], lhs, value, token.line
            )
        return lhs

    def parse_conditional(self) -> ast.Expr:
        cond = self.parse_binary(0)
        token = self.tok
        if token.kind == "op" and token.text == "?":
            self.advance()
            then_expr = self.parse_expression()
            self.expect("op", ":")
            else_expr = self.parse_assignment()
            return ast.Conditional(cond, then_expr, else_expr, token.line)
        return cond

    _PRECEDENCE = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        lhs = self.parse_binary(level + 1)
        ops = self._PRECEDENCE[level]
        while self.tok.kind == "op" and self.tok.text in ops:
            token = self.advance()
            rhs = self.parse_binary(level + 1)
            lhs = ast.Binary(token.text, lhs, rhs, token.line)
        return lhs

    def parse_unary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "op" and token.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.IncDec(token.text[0], operand, prefix=True, line=token.line)
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(token.text, operand, token.line)
        # Cast: '(' type-keyword ... ')'
        if token.kind == "punct" and token.text == "(" and self.at_type_keyword(1):
            self.advance()
            target = self.parse_type_spec()
            self.expect("punct", ")")
            operand = self.parse_unary()
            return ast.Cast(target, operand, token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.tok
            if token.kind == "punct" and token.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("punct", "]")
                expr = ast.Index(expr, index, token.line)
            elif token.kind == "op" and token.text in ("++", "--"):
                self.advance()
                expr = ast.IncDec(token.text[0], expr, prefix=False, line=token.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.tok
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(int(token.text, 0), token.line)
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(float(token.text), token.line)
        if token.kind == "ident":
            self.advance()
            if self.tok.kind == "punct" and self.tok.text == "(":
                self.advance()
                args: List[ast.Expr] = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if self.accept("punct", ")"):
                            break
                        self.expect("punct", ",")
                return ast.CallExpr(token.text, args, token.line)
            return ast.NameRef(token.text, token.line)
        if token.kind == "punct" and token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        raise ParseError(f"unexpected token {token.text!r}", token.line)


def parse_source(source: str) -> ast.Program:
    """Parse MiniC source text into an AST."""
    return Parser(source).parse_program()
