"""MiniC's source-level type system.

Word-sized scalars only: ``int`` (64-bit), ``float`` (double), pointers to
either, and fixed-size one-dimensional arrays (which decay to pointers in
expression contexts, as in C).
"""

from __future__ import annotations

from typing import Optional


class CType:
    """Base class for MiniC types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "ctype"

    @property
    def is_int(self) -> bool:
        return isinstance(self, CIntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, CFloatType)

    @property
    def is_ptr(self) -> bool:
        return isinstance(self, CPtrType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, CArrayType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, CVoidType)

    @property
    def is_arith(self) -> bool:
        return self.is_int or self.is_float

    @property
    def is_scalar(self) -> bool:
        return self.is_arith or self.is_ptr

    def decayed(self) -> "CType":
        """Array-to-pointer decay; identity for other types."""
        if isinstance(self, CArrayType):
            return CPtrType(self.element)
        return self


class CIntType(CType):
    def __str__(self) -> str:
        return "int"

    def __eq__(self, other) -> bool:
        return isinstance(other, CIntType)

    def __hash__(self) -> int:
        return hash("int")


class CFloatType(CType):
    def __str__(self) -> str:
        return "float"

    def __eq__(self, other) -> bool:
        return isinstance(other, CFloatType)

    def __hash__(self) -> int:
        return hash("float")


class CVoidType(CType):
    def __str__(self) -> str:
        return "void"

    def __eq__(self, other) -> bool:
        return isinstance(other, CVoidType)

    def __hash__(self) -> int:
        return hash("void")


class CPtrType(CType):
    def __init__(self, element: CType) -> None:
        if element.is_void or element.is_array:
            raise ValueError(f"cannot form pointer to {element}")
        self.element = element

    def __str__(self) -> str:
        return f"{self.element}*"

    def __eq__(self, other) -> bool:
        return isinstance(other, CPtrType) and other.element == self.element

    def __hash__(self) -> int:
        return hash(("ptr", self.element))


class CArrayType(CType):
    def __init__(self, element: CType, size: int) -> None:
        if not element.is_arith:
            raise ValueError(f"array elements must be arithmetic, got {element}")
        if size <= 0:
            raise ValueError(f"array size must be positive, got {size}")
        self.element = element
        self.size = size

    def __str__(self) -> str:
        return f"{self.element}[{self.size}]"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CArrayType)
            and other.element == self.element
            and other.size == self.size
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.size))


CINT = CIntType()
CFLOAT = CFloatType()
CVOID = CVoidType()


def words_of(ctype: CType) -> int:
    """Storage size in words."""
    if isinstance(ctype, CArrayType):
        return ctype.size
    if ctype.is_void:
        raise ValueError("void has no size")
    return 1
