"""Lexer for MiniC, the C subset used to author workloads.

Token kinds: keywords, identifiers, int/float literals, operators,
punctuation. Comments (``//`` and ``/* */``) and whitespace are skipped.
"""

from __future__ import annotations

import re
from typing import Iterator, List, NamedTuple

KEYWORDS = {
    "int",
    "float",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^", "?", ":",
]

PUNCTUATION = ["(", ")", "{", "}", "[", "]", ";", ","]


class Token(NamedTuple):
    kind: str  # 'kw', 'ident', 'int', 'float', 'op', 'punct', 'eof'
    text: str
    line: int


class LexError(ValueError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<float>(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<op>%s)
  | (?P<punct>%s)
    """
    % (
        "|".join(re.escape(op) for op in OPERATORS),
        "|".join(re.escape(p) for p in PUNCTUATION),
    ),
    re.VERBOSE | re.DOTALL,
)


def tokenize(source: str) -> List[Token]:
    """Lex ``source`` into tokens, ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LexError(f"unexpected character {source[pos]!r}", line)
        kind = match.lastgroup
        text = match.group()
        if kind == "ident" and text in KEYWORDS:
            tokens.append(Token("kw", text, line))
        elif kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    tokens.append(Token("eof", "", line))
    return tokens
