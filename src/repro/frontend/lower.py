"""AST → IR lowering for MiniC.

Deliberately unoptimized, clang ``-O0`` style: every variable lives in an
``alloca`` slot accessed through loads and stores. This is what gives the
IR its *artificial clobber antidependences* — pseudoregister state that a
conventional compiler would freely overwrite — which the paper's SSA
transformation then eliminates (§4.1). Short-circuit operators and the
ternary operator lower through temporary slots and control flow, exactly
like a textbook C frontend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import ast_nodes as ast
from repro.frontend.ctypes_ import CType, words_of
from repro.frontend.sema import Symbol
from repro.ir.block import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import Alloca
from repro.ir.module import Module
from repro.ir.types import FLOAT, INT, PTR, Type, VOID
from repro.ir.values import Value, const_float, const_int


class LowerError(ValueError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


def ir_type_of(ctype: CType) -> Type:
    if ctype.is_int:
        return INT
    if ctype.is_float:
        return FLOAT
    if ctype.is_ptr or ctype.is_array:
        return PTR
    if ctype.is_void:
        return VOID
    raise ValueError(f"no IR type for {ctype}")


class _LoopContext:
    """Branch targets for break/continue inside one loop."""

    def __init__(self, break_block: BasicBlock, continue_block: BasicBlock) -> None:
        self.break_block = break_block
        self.continue_block = continue_block


class FunctionLowering:
    """Lowers one function definition."""

    def __init__(self, module: Module, func_ast: ast.FunctionDef) -> None:
        self.module = module
        self.func_ast = func_ast
        params = [(p.name, ir_type_of(p.ctype)) for p in func_ast.params]
        self.func = module.add_function(
            func_ast.name, params, ir_type_of(func_ast.return_type)
        )
        self.builder = IRBuilder(self.func)
        self.storage: Dict[Symbol, Value] = {}
        self.loop_stack: List[_LoopContext] = []
        self.terminated = False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _entry_alloca(self, size: int, name: str) -> Alloca:
        """Allocas live in the entry block regardless of insertion point."""
        alloca = Alloca(size, self.func.unique_value_name(name))
        entry = self.func.entry
        index = 0
        while index < len(entry.instructions) and isinstance(
            entry.instructions[index], Alloca
        ):
            index += 1
        entry.insert(index, alloca)
        return alloca

    def _start_block(self, name: str) -> BasicBlock:
        block = self.builder.new_block(name)
        self.builder.set_block(block)
        self.terminated = False
        return block

    def _branch_to(self, target: BasicBlock) -> None:
        if not self.terminated:
            self.builder.jmp(target)
            self.terminated = True

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def lower(self) -> Function:
        entry = self.builder.new_block("entry")
        self.builder.set_block(entry)
        # Parameters become mutable slots, like clang -O0.
        for param_ast, arg in zip(self.func_ast.params, self.func.args):
            slot = self._entry_alloca(1, f"{param_ast.name}.addr")
            self.builder.store(arg, slot)
            symbol = self._param_symbol(param_ast)
            self.storage[symbol] = slot
        self.lower_block(self.func_ast.body)
        if not self.terminated:
            if self.func.return_type.is_void:
                self.builder.ret()
            elif self.func.return_type.is_float:
                self.builder.ret(const_float(0.0))
            else:
                self.builder.ret(const_int(0))
        return self.func

    def _param_symbol(self, param_ast: ast.Param) -> Symbol:
        # Sema declared the params in the function scope; retrieve the
        # symbol through the body's NameRefs lazily. To avoid carrying the
        # scope out of sema, we match by identity stored on first use:
        # simplest is to key storage by (name, kind) for params.
        # Instead, sema attaches symbols to NameRefs; we register aliases
        # on demand (see _storage_for).
        return Symbol(param_ast.name, param_ast.ctype, Symbol.KIND_PARAM)

    def _storage_for(self, symbol: Symbol, line: int) -> Value:
        found = self.storage.get(symbol)
        if found is not None:
            return found
        if symbol.kind == Symbol.KIND_GLOBAL:
            var = self.module.globals.get(symbol.name)
            if var is None:
                raise LowerError(f"missing global @{symbol.name}", line)
            self.storage[symbol] = var
            return var
        if symbol.kind == Symbol.KIND_PARAM:
            # Match the slot registered in lower() by name.
            for registered, value in self.storage.items():
                if (
                    registered.kind == Symbol.KIND_PARAM
                    and registered.name == symbol.name
                ):
                    self.storage[symbol] = value
                    return value
        raise LowerError(f"no storage for {symbol!r}", line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            if self.terminated:
                # Unreachable code after return/break: park it in a fresh
                # dead block (removed later by the unreachable-block pass).
                self._start_block("dead")
            self.lower_statement(stmt)

    def lower_statement(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.rvalue(stmt.expr)
        elif isinstance(stmt, ast.DeclStmt):
            slot = self._entry_alloca(words_of(stmt.ctype), stmt.name)
            self.storage[stmt.symbol] = slot
            if stmt.init is not None:
                self.builder.store(self.rvalue(stmt.init), slot)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = self.rvalue(stmt.value) if stmt.value is not None else None
            self.builder.ret(value)
            self.terminated = True
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LowerError("break outside loop", stmt.line)
            self.builder.jmp(self.loop_stack[-1].break_block)
            self.terminated = True
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LowerError("continue outside loop", stmt.line)
            self.builder.jmp(self.loop_stack[-1].continue_block)
            self.terminated = True
        else:
            raise LowerError(f"cannot lower {type(stmt).__name__}", stmt.line)

    def lower_if(self, stmt: ast.If) -> None:
        cond = self.truth_value(stmt.cond)
        then_block = self.builder.new_block("if.then")
        end_block = self.builder.new_block("if.end")
        else_block = (
            self.builder.new_block("if.else") if stmt.else_body is not None else end_block
        )
        self.builder.br(cond, then_block, else_block)

        self.builder.set_block(then_block)
        self.terminated = False
        self.lower_statement(stmt.then_body)
        self._branch_to(end_block)

        if stmt.else_body is not None:
            self.builder.set_block(else_block)
            self.terminated = False
            self.lower_statement(stmt.else_body)
            self._branch_to(end_block)

        self.builder.set_block(end_block)
        self.terminated = False

    def lower_while(self, stmt: ast.While) -> None:
        cond_block = self.builder.new_block("while.cond")
        body_block = self.builder.new_block("while.body")
        end_block = self.builder.new_block("while.end")
        self._branch_to(cond_block)

        self.builder.set_block(cond_block)
        self.terminated = False
        cond = self.truth_value(stmt.cond)
        self.builder.br(cond, body_block, end_block)

        self.builder.set_block(body_block)
        self.terminated = False
        self.loop_stack.append(_LoopContext(end_block, cond_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        self._branch_to(cond_block)

        self.builder.set_block(end_block)
        self.terminated = False

    def lower_for(self, stmt: ast.For) -> None:
        if stmt.init is not None:
            self.lower_statement(stmt.init)
        cond_block = self.builder.new_block("for.cond")
        body_block = self.builder.new_block("for.body")
        step_block = self.builder.new_block("for.step")
        end_block = self.builder.new_block("for.end")
        self._branch_to(cond_block)

        self.builder.set_block(cond_block)
        self.terminated = False
        if stmt.cond is not None:
            cond = self.truth_value(stmt.cond)
            self.builder.br(cond, body_block, end_block)
        else:
            self.builder.jmp(body_block)

        self.builder.set_block(body_block)
        self.terminated = False
        self.loop_stack.append(_LoopContext(end_block, step_block))
        self.lower_statement(stmt.body)
        self.loop_stack.pop()
        self._branch_to(step_block)

        self.builder.set_block(step_block)
        self.terminated = False
        if stmt.step is not None:
            self.rvalue(stmt.step)
        self._branch_to(cond_block)

        self.builder.set_block(end_block)
        self.terminated = False

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def truth_value(self, expr: ast.Expr) -> Value:
        """Lower ``expr`` and compare against zero (an i1-like 0/1 int)."""
        value = self.rvalue(expr)
        if value.type.is_float:
            return self.builder.fcmp("ne", value, const_float(0.0))
        return self.builder.icmp("ne", value, const_int(0))

    def lvalue_address(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.NameRef):
            return self._storage_for(expr.symbol, expr.line)
        if isinstance(expr, ast.Index):
            base = self.rvalue(expr.base)
            index = self.rvalue(expr.index)
            return self.builder.gep(base, index)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.rvalue(expr.operand)
        raise LowerError(f"not an lvalue: {type(expr).__name__}", expr.line)

    def rvalue(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLiteral):
            return const_int(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return const_float(expr.value)
        if isinstance(expr, ast.NameRef):
            storage = self._storage_for(expr.symbol, expr.line)
            if expr.ctype.is_array:
                return storage  # arrays evaluate to their address
            return self.builder.load(ir_type_of(expr.ctype), storage, expr.name)
        if isinstance(expr, ast.Assign):
            value = self.rvalue(expr.value)
            addr = self.lvalue_address(expr.target)
            self.builder.store(value, addr)
            return value
        if isinstance(expr, ast.CompoundAssign):
            return self.lower_compound_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.lower_incdec(expr)
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Conditional):
            return self.lower_conditional(expr)
        if isinstance(expr, ast.Index):
            addr = self.lvalue_address(expr)
            return self.builder.load(ir_type_of(expr.ctype), addr)
        if isinstance(expr, ast.CallExpr):
            return self.lower_call(expr)
        if isinstance(expr, ast.Cast):
            return self.lower_cast(expr)
        raise LowerError(f"cannot lower {type(expr).__name__}", expr.line)

    def lower_compound_assign(self, expr: ast.CompoundAssign) -> Value:
        """``x op= e``: the lvalue address is computed exactly once."""
        addr = self.lvalue_address(expr.target)
        target_type = expr.target.ctype
        old = self.builder.load(ir_type_of(target_type), addr)
        value = self.rvalue(expr.value)
        op = expr.op

        if target_type.is_ptr:
            offset = value
            if op == "-":
                offset = self.builder.sub(const_int(0), offset)
            new = self.builder.gep(old, offset)
        elif expr.common_ctype is not None and expr.common_ctype.is_float:
            lhs = self.builder.itof(old) if target_type.is_int else old
            new = self.builder.binop(self._FLOAT_OPS[op], lhs, value)
            if target_type.is_int:
                new = self.builder.ftoi(new)
        else:
            lhs = self.builder.ftoi(old) if target_type.is_float else old
            new = self.builder.binop(self._INT_OPS[op], lhs, value)
            if target_type.is_float:
                new = self.builder.itof(new)
        self.builder.store(new, addr)
        return new

    def lower_incdec(self, expr: ast.IncDec) -> Value:
        addr = self.lvalue_address(expr.target)
        target_type = expr.target.ctype
        old = self.builder.load(ir_type_of(target_type), addr)
        if target_type.is_ptr:
            step = const_int(1 if expr.op == "+" else -1)
            new = self.builder.gep(old, step)
        elif target_type.is_float:
            opcode = "fadd" if expr.op == "+" else "fsub"
            new = self.builder.binop(opcode, old, const_float(1.0))
        else:
            opcode = "add" if expr.op == "+" else "sub"
            new = self.builder.binop(opcode, old, const_int(1))
        self.builder.store(new, addr)
        return new if expr.prefix else old

    def lower_unary(self, expr: ast.Unary) -> Value:
        if expr.op == "&":
            return self.lvalue_address(expr.operand)
        if expr.op == "*":
            addr = self.rvalue(expr.operand)
            return self.builder.load(ir_type_of(expr.ctype), addr)
        value = self.rvalue(expr.operand)
        if expr.op == "-":
            if value.type.is_float:
                return self.builder.fsub(const_float(0.0), value)
            return self.builder.sub(const_int(0), value)
        if expr.op == "!":
            if value.type.is_float:
                return self.builder.fcmp("eq", value, const_float(0.0))
            return self.builder.icmp("eq", value, const_int(0))
        if expr.op == "~":
            return self.builder.xor(value, const_int(-1))
        raise LowerError(f"unknown unary {expr.op!r}", expr.line)

    _INT_OPS = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
        "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    }
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    _CMP = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}

    def lower_binary(self, expr: ast.Binary) -> Value:
        op = expr.op
        if op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        lhs_type = expr.lhs.ctype.decayed()
        if op in self._CMP:
            lhs = self.rvalue(expr.lhs)
            rhs = self.rvalue(expr.rhs)
            if lhs_type.is_float:
                return self.builder.fcmp(self._CMP[op], lhs, rhs)
            return self.builder.icmp(self._CMP[op], lhs, rhs)
        # Pointer arithmetic (sema normalized to ptr-first).
        if lhs_type.is_ptr and op in ("+", "-"):
            base = self.rvalue(expr.lhs)
            offset = self.rvalue(expr.rhs)
            if op == "-":
                offset = self.builder.sub(const_int(0), offset)
            return self.builder.gep(base, offset)
        lhs = self.rvalue(expr.lhs)
        rhs = self.rvalue(expr.rhs)
        if expr.ctype.is_float:
            return self.builder.binop(self._FLOAT_OPS[op], lhs, rhs)
        return self.builder.binop(self._INT_OPS[op], lhs, rhs)

    def lower_short_circuit(self, expr: ast.Binary) -> Value:
        """``&&``/``||`` via a temporary slot and control flow (C semantics)."""
        slot = self._entry_alloca(1, "sc")
        lhs = self.truth_value(expr.lhs)
        self.builder.store(lhs, slot)
        rhs_block = self.builder.new_block("sc.rhs")
        end_block = self.builder.new_block("sc.end")
        if expr.op == "&&":
            self.builder.br(lhs, rhs_block, end_block)
        else:
            self.builder.br(lhs, end_block, rhs_block)
        self.builder.set_block(rhs_block)
        self.terminated = False
        rhs = self.truth_value(expr.rhs)
        self.builder.store(rhs, slot)
        self.builder.jmp(end_block)
        self.builder.set_block(end_block)
        self.terminated = False
        return self.builder.load(INT, slot)

    def lower_conditional(self, expr: ast.Conditional) -> Value:
        slot = self._entry_alloca(1, "cond")
        cond = self.truth_value(expr.cond)
        then_block = self.builder.new_block("cond.then")
        else_block = self.builder.new_block("cond.else")
        end_block = self.builder.new_block("cond.end")
        self.builder.br(cond, then_block, else_block)

        self.builder.set_block(then_block)
        self.terminated = False
        self.builder.store(self.rvalue(expr.then_expr), slot)
        self.builder.jmp(end_block)

        self.builder.set_block(else_block)
        self.terminated = False
        self.builder.store(self.rvalue(expr.else_expr), slot)
        self.builder.jmp(end_block)

        self.builder.set_block(end_block)
        self.terminated = False
        return self.builder.load(ir_type_of(expr.ctype), slot)

    def lower_call(self, expr: ast.CallExpr) -> Value:
        args = [self.rvalue(arg) for arg in expr.args]
        result_type = ir_type_of(expr.ctype)
        return self.builder.call(result_type, expr.name, args, expr.name)

    def lower_cast(self, expr: ast.Cast) -> Value:
        value = self.rvalue(expr.operand)
        source = expr.operand.ctype.decayed()
        target = expr.ctype
        if source.is_int and target.is_float:
            return self.builder.itof(value)
        if source.is_float and target.is_int:
            return self.builder.ftoi(value)
        return value  # ptr↔ptr, same-type, array decay: representation-identical


def lower_program(program: ast.Program, name: str = "minic") -> Module:
    """Lower an analyzed AST to an IR module."""
    module = Module(name)
    for decl in program.globals:
        init = decl.init
        module.add_global(decl.name, words_of(decl.ctype), init)
    for func_ast in program.functions:
        FunctionLowering(module, func_ast).lower()
    return module
